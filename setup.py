"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so the package can be installed in environments without the ``wheel``
package (legacy ``pip install -e .`` / ``python setup.py develop``).
"""

from setuptools import setup

setup()
