"""Ablation bench: pre- vs. post-padding of the training windows (§III-D5).

The paper argues for pre-padding so the objective item occupies a fixed final
position of every training window; with post-padding the PIM's objective
column points at padding for short sequences and the objective signal is
diluted.  The bench trains both variants and reports the Table III metrics.
"""

from repro.experiments import ablations
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_ablation_padding_scheme(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr, ioi = f"SR{max_length}", f"IoI{max_length}"

    rows = benchmark.pedantic(
        ablations.ablation_padding_scheme, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Ablation - padding scheme", format_table(rows))
    assert [row["variant"] for row in rows] == ["pre-padding", "post-padding"]
    by_variant = {row["variant"]: row for row in rows}

    if fast_mode:
        return

    # Pre-padding keeps the objective visible during training, so it should
    # not influence worse than post-padding (up to noise at this scale).
    assert by_variant["pre-padding"][sr] >= by_variant["post-padding"][sr] - 0.05
    assert by_variant["pre-padding"][ioi] >= by_variant["post-padding"][ioi] - 0.2
