"""Benchmark: regenerate Figure 8 (distribution of the impressionability factor).

Paper reference (Figure 8): the learned r_u is roughly normally distributed
across users — users genuinely differ in how receptive they are to
influence.  The synthetic corpora additionally provide the *ground-truth*
latent impressionability used by the generator, so this bench also reports
the correlation between learned and true impressionability (a check the
paper could not run on real data).
"""

import numpy as np

from repro.experiments import figures
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_figure8_impressionability_distribution(benchmark, pipeline, fast_mode):
    data = benchmark.pedantic(
        figures.figure8_impressionability_distribution, args=(pipeline,), rounds=1, iterations=1
    )

    rows = [
        {"bin_left": round(left, 3), "bin_right": round(right, 3), "count": int(count)}
        for left, right, count in zip(
            data["histogram_edges"][:-1], data["histogram_edges"][1:], data["histogram_counts"]
        )
    ]
    summary = f"mean={data['mean']:.3f} std={data['std']:.3f}"
    if "correlation_with_ground_truth" in data:
        summary += f" corr={data['correlation_with_ground_truth']:.3f}"
    print_report(f"Figure 8 - impressionability distribution ({summary})", format_table(rows))

    factors = np.asarray(data["factors"])
    assert factors.shape[0] == pipeline.split.corpus.num_users
    assert np.isfinite(factors).all()
    assert sum(data["histogram_counts"]) == factors.shape[0]
    # Users differ (non-degenerate distribution) but the factors stay in a
    # sane range around the initialisation (no divergence).
    assert data["std"] >= 0.0
    assert -5.0 < data["mean"] < 5.0
    if not fast_mode:
        assert data["std"] > 1e-4
        # the bulk of the mass is unimodal: the most populated bin is interior
        counts = data["histogram_counts"]
        assert max(counts) >= counts[0] and max(counts) >= counts[-1]
