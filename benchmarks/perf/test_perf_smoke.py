"""Tier-2 perf smoke test (``pytest -m perf``).

Runs the :mod:`repro.perf.bench` harness in its seconds-scale smoke profile
and asserts the batched inference engine's contract: fewer module forwards
(counted via a wrapper, not wall-clock, so CI stays deterministic) with
unchanged plans and ranks.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import run_benchmarks

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    output = tmp_path_factory.mktemp("perf") / "BENCH_path_planning.json"
    report = run_benchmarks(profile="smoke", output=str(output))
    # The artefact must be valid JSON with both throughput series.
    written = json.loads(output.read_text())
    assert written["beam_planning"]["scalar"]["paths_per_sec"] > 0
    assert written["beam_planning"]["batched"]["forwards_per_sec"] > 0
    return report


def test_tensor_ops_contract_bits(smoke_report):
    """Tensor-engine PR acceptance: the fused attention kernel matches the
    graph implementation, decode-step K/V appends never copy the prefix,
    float32 inference stays inside its documented tolerance, and the
    in-place ops refuse to run under grad."""
    section = smoke_report["tensor_ops"]
    assert section["attention"]["fused_parity"]
    assert section["attention"]["max_abs_diff"] <= 1e-9
    assert section["decode_allocation"]["no_prefix_copy"]
    arena = section["decode_allocation"]["arena"]
    # Steady-state decode appends copy only the new token columns — the
    # concatenate-equivalent byte count must dwarf what the arena copied.
    assert arena["copied_bytes"] < arena["concat_equivalent_bytes"]
    assert section["float32"]["within_tolerance"]
    assert section["inplace_guard_raises"]


def test_batched_beam_planner_uses_4x_fewer_forwards(smoke_report):
    beam = smoke_report["beam_planning"]
    assert beam["beam_width"] == 4
    # Acceptance criterion: >= 4x fewer module forwards at beam_width=4.
    assert beam["batched"]["forwards"] * 4 <= beam["scalar"]["forwards"]


def test_batched_beam_planner_matches_scalar_plans(smoke_report):
    assert smoke_report["beam_planning"]["plans_equal"]


def test_batched_greedy_rollout_reduces_forwards_and_matches(smoke_report):
    greedy = smoke_report["greedy_planning"]
    assert greedy["batched"]["forwards"] < greedy["scalar"]["forwards"]
    assert greedy["plans_equal"]


def test_batched_nextitem_evaluation_reduces_forwards_and_matches(smoke_report):
    nextitem = smoke_report["nextitem_evaluation"]
    assert nextitem["batched"]["forwards"] < nextitem["scalar"]["forwards"]
    assert nextitem["ranks_equal"]


def test_stepwise_replanning_token_work_reduction(smoke_report):
    """Cache-PR acceptance: >= 2x less transformer token-work for the
    ``next_step``-driven IRS evaluation versus the PR 1 baseline, with the
    cached paths matching dedicated-planner (isolated) serving semantics."""
    stepwise = smoke_report["irs_stepwise_replanning"]
    assert stepwise["token_work_reduction"] >= 2.0
    assert stepwise["cached_paths_match_isolated"]
    counters = stepwise["cache_counters"]
    assert counters["serving"]["served_from_plan"] > 0
    assert counters["serving"]["replans"] == stepwise["num_instances"]
    assert counters["step_cache"]["hit_rate"] > 0


def test_incremental_decoding_reduces_token_work_with_identical_plans(smoke_report):
    incremental = smoke_report["incremental_decoding"]
    assert incremental["plans_equal"]
    assert incremental["token_work_reduction"] >= 2.0
    assert incremental["incremental"]["tokens_incremental"] > 0
    assert incremental["incremental"]["tokens_fallback"] == 0


def test_sharded_evaluation_plans_bit_identical_at_every_worker_count(smoke_report):
    """Sharding-PR acceptance: worker-partitioned planning must produce the
    serial plans bit-identically at 1, 2 and 4 workers."""
    sharded = smoke_report["sharded_evaluation"]
    assert [row["num_workers"] for row in sharded["workers"]] == [1, 2, 4]
    assert all(row["plans_equal_serial"] for row in sharded["workers"])


def test_sharded_evaluation_process_and_serial_backends_agree(smoke_report):
    """Satellite: process-pool and serial backends produce identical
    BENCH-section plan paths (fork platforms; None means no fork)."""
    from repro.shard.config import fork_available

    parity = smoke_report["sharded_evaluation"]["process_parity"]
    if fork_available():
        assert parity is True
    else:
        assert parity is None


def test_sharded_evaluation_records_scaling_and_machine_context(smoke_report):
    sharded = smoke_report["sharded_evaluation"]
    assert sharded["cpu_count"] >= 1
    assert sharded["backend"] in {"serial", "thread", "process"}
    assert sharded["serial"]["paths_per_sec"] > 0
    for row in sharded["workers"]:
        assert row["paths_per_sec"] > 0
        assert row["scaling_efficiency"] > 0


def test_async_serving_responses_bit_identical_at_every_worker_count(smoke_report):
    """Async-serving PR acceptance: for the fixed lockstep trace, ServingLoop
    responses equal sequential next_step serving at 1, 2 and 4 workers."""
    serving = smoke_report["async_serving"]
    assert [row["num_workers"] for row in serving["workers"]] == [1, 2, 4]
    assert all(row["responses_match_sequential"] for row in serving["workers"])


def test_async_serving_records_latency_and_queue_stats(smoke_report):
    """Acceptance: the async_serving section carries throughput, p50/p95/p99
    latency and queue-depth stats for the open-loop Poisson run."""
    serving = smoke_report["async_serving"]
    assert serving["arrival_rate"] > 0
    for row in serving["workers"]:
        open_loop = row["open_loop"]
        assert open_loop["throughput_rps"] > 0
        latency = open_loop["latency_ms"]
        assert latency["count"] == open_loop["admitted_requests"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        assert open_loop["queue_depth"]["max"] >= 1
        assert open_loop["micro_batches"]["count"] >= 1
        assert open_loop["admission"]["policy"] in ("block", "reject")


def test_replicated_serving_parity_at_shared_generation(smoke_report):
    """Replication-PR acceptance: with all replicas at one generation, the
    lockstep responses are bit-identical to single-replica serving."""
    replicated = smoke_report["replicated_serving"]
    assert replicated["num_replicas"] == 2
    assert replicated["parity"]["responses_match_single_replica"]
    assert replicated["parity"]["served"] > 0


def test_replicated_hot_refit_never_pauses_serving(smoke_report):
    """Replication-PR acceptance: the hot refit drops/errors zero admitted
    requests, rejects nothing under the block policy, and flips exactly one
    generation forward (the same bits repro.perf.gate enforces in CI)."""
    refit_run = smoke_report["replicated_serving"]["hot_refit"]
    assert refit_run["errored_requests"] == 0
    assert refit_run["rejected_requests"] == 0
    assert refit_run["no_pause"] is True
    refit = refit_run["refit"]
    assert refit["generation_to"] == refit["generation_from"] + 1
    assert refit["flip_seconds"] < 0.5  # pointer swaps, not training
    assert refit_run["admitted_requests"] == sum(
        refit_run["generations_served"].values()
    )


def test_distributed_serving_parity_and_chaos_bits(smoke_report):
    """Distributed-PR acceptance: multi-process responses bit-identical to
    sequential serving at every worker count, codec timed per envelope, and
    the SIGKILL chaos run dropped nothing and detected the dead worker
    inside the missed-heartbeat budget (the bits repro.perf.gate enforces)."""
    distributed = smoke_report["distributed_serving"]
    codec = distributed["codec"]
    assert codec["request_encode_ns"] > 0
    assert codec["request_decode_ns"] > 0
    assert codec["heartbeat_frame_bytes"] > 0
    if not distributed["fork_available"]:  # pragma: no cover - non-fork platforms
        pytest.skip("process transport needs fork")
    assert [row["num_workers"] for row in distributed["workers"]] == [1, 2, 4]
    for row in distributed["workers"]:
        assert row["responses_match_sequential"]
        assert row["burst_answers_match"]
        assert row["remote"]["paths_per_sec"] > 0
        sojourn = row["remote"]["sojourn_ms"]
        assert 0 <= sojourn["p50"] <= sojourn["p95"] <= sojourn["p99"]
    chaos = distributed["chaos"]
    assert chaos["zero_dropped"] is True
    assert chaos["answers_match"] is True
    assert chaos["unhealthy_within_budget"] is True
    assert distributed["heartbeat"]["observed_per_worker_per_sec"] > 0


def test_replicated_serving_report_gates_green(smoke_report):
    """The smoke report itself must pass the CI perf gate."""
    from repro.perf.gate import collect_violations

    assert collect_violations(
        smoke_report,
        require=[
            "tensor_ops",
            "async_serving",
            "replicated_serving",
            "distributed_serving",
        ],
    ) == []


def test_sections_filter_runs_subset():
    """Satellite: run_benchmarks(sections=...) runs only the named sections
    (the repro-irs bench --sections flag routes here)."""
    from repro.perf.bench import resolve_sections
    from repro.utils.exceptions import ConfigurationError

    report = run_benchmarks(profile="smoke", sections=["nextitem_evaluation"])
    assert report["sections"] == ["nextitem_evaluation"]
    assert "nextitem_evaluation" in report
    assert "beam_planning" not in report and "async_serving" not in report
    assert resolve_sections(None) == (
        "tensor_ops",
        "beam_planning",
        "greedy_planning",
        "nextitem_evaluation",
        "irs_stepwise_replanning",
        "incremental_decoding",
        "sharded_evaluation",
        "async_serving",
        "replicated_serving",
        "distributed_serving",
        "observability",
        "two_stage_retrieval",
    )
    with pytest.raises(ConfigurationError, match="unknown bench section"):
        resolve_sections(["beam_planning", "quantum_planning"])


def test_every_section_records_cpu_count_and_backend(smoke_report):
    """Satellite: sections carry the machine's CPU count and the backend
    used, so the perf trajectory stays comparable across runs."""
    sections = (
        "tensor_ops",
        "beam_planning",
        "greedy_planning",
        "nextitem_evaluation",
        "irs_stepwise_replanning",
        "incremental_decoding",
        "sharded_evaluation",
        "async_serving",
        "replicated_serving",
        "distributed_serving",
        "observability",
        "two_stage_retrieval",
    )
    for name in sections:
        assert smoke_report[name]["cpu_count"] == smoke_report["machine"]["cpu_count"]
        assert "backend" in smoke_report[name]
    assert smoke_report["machine"]["platform"]


def test_two_stage_retrieval_contract_bits(smoke_report):
    """Retrieval-PR acceptance: full-vocabulary candidate sets plan
    bit-identically to the exact planner, every candidate set contains its
    objective, and both generator backends record overlap@k / plan regret
    at every tier (the same bits repro.perf.gate enforces in CI)."""
    section = smoke_report["two_stage_retrieval"]
    assert section["full_vocab_parity"] is True
    assert section["objective_in_candidates"] is True
    assert section["tiers"]
    for tier in section["tiers"]:
        assert tier["exact"]["paths_per_sec"] > 0
        assert tier["exact"]["step_p95_ms"] > 0
        assert set(tier["generators"]) == {"cooccurrence", "ann"}
        for row in tier["generators"].values():
            assert 0.0 <= row["overlap_at_k"] <= 1.0
            assert "mean_plan_regret" in row
            assert row["paths_per_sec"] > 0
            assert row["requests"] >= row["fallbacks"] >= 0
            # +1: the objective is appended when the shortlist missed it.
            assert 0 < row["mean_candidate_size"] <= section["num_candidates"] + 1


def test_retrieval_sections_record_peak_rss(smoke_report):
    """Satellite: the machine block and every section record peak RSS so
    memory regressions show in the committed bench trajectory."""
    import sys

    if not sys.platform.startswith(("linux", "darwin")):
        pytest.skip("ru_maxrss unavailable off-POSIX")
    assert smoke_report["machine"]["peak_rss_kb"] > 0
    assert smoke_report["two_stage_retrieval"]["peak_rss_kb"] > 0


def test_retrieval_report_gates_green(smoke_report):
    from repro.perf.gate import collect_violations

    assert collect_violations(smoke_report, require=["two_stage_retrieval"]) == []
