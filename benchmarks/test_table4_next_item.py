"""Benchmark: regenerate Table IV (next-item accuracy, vanilla vs. IRS).

Paper reference (Table IV): the IRS-adapted models lose a little next-item
accuracy (2-20%) compared to their vanilla versions because they have to
shift toward the objective early, but IRN stays within ~9% of the best
next-item recommender.  The assertions check the direction of that claim:
IRS-adapted rankings are (on average) no better than the vanilla next-item
rankings, and IRN's next-item accuracy stays within a reasonable factor of
the best baseline.
"""

import numpy as np

from repro.experiments import tables
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_table4_next_item(benchmark, pipeline, fast_mode):
    rows = benchmark.pedantic(tables.table4_next_item, args=(pipeline,), rounds=1, iterations=1)

    print_report("Table IV - next-item recommendation", format_table(rows))
    hr_key = "hr@20"
    next_item = [row for row in rows if row["group"] == "Next-item RS"]
    irs = [row for row in rows if row["group"] == "IRS"]
    assert next_item and irs
    for row in rows:
        assert 0.0 <= row[hr_key] <= 1.0
        assert 0.0 <= row["mrr"] <= 1.0

    if fast_mode:
        return

    # The IRS adaptations do not *gain* accuracy from chasing the objective.
    mean_next = np.mean([row[hr_key] for row in next_item])
    mean_irs = np.mean([row[hr_key] for row in irs])
    assert mean_irs <= mean_next * 1.15

    # IRN remains a competent next-item recommender (the paper reports ~9%
    # loss vs. BERT4Rec; we allow a factor of 2 at this training budget).
    irn_row = next(row for row in irs if row["method"] == "IRN")
    best_next = max(row[hr_key] for row in next_item)
    assert irn_row[hr_key] >= 0.5 * best_next
