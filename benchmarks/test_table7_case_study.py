"""Benchmark: regenerate Table VII (case study — genre shift along a path).

Paper reference (Table VII): starting from an Action movie, the IRN path
moves through Action/Adventure/Thriller titles toward Comedy, ending at the
Comedy objective — i.e. the genres drift smoothly toward the objective's
genre.  The synthetic corpora carry genre metadata, so the same qualitative
check applies: the path's genre overlap with the objective is at least as
high in the second half of the path as in the first half.
"""

import numpy as np

from repro.experiments import tables
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def _genre_set(value: str) -> set[str]:
    return set() if value == "-" else {genre.strip() for genre in value.split(",")}


def test_table7_case_study(benchmark, pipeline, fast_mode):
    rows = benchmark.pedantic(tables.table7_case_study, args=(pipeline,), rounds=1, iterations=1)

    print_report("Table VII - case study", format_table(rows))
    assert rows[0]["role"].startswith("history")
    path_rows = [row for row in rows[1:] if row["role"].startswith(("path", "objective *"))]
    assert path_rows, "the case study produced an empty influence path"

    if fast_mode or len(path_rows) < 4:
        return

    objective_row = rows[-1] if "objective" in rows[-1]["role"] else path_rows[-1]
    objective_genres = _genre_set(objective_row["genres"])
    if not objective_genres:
        return
    overlaps = [
        len(_genre_set(row["genres"]) & objective_genres) > 0 for row in path_rows[:-1]
    ]
    if len(overlaps) >= 2:
        half = len(overlaps) // 2
        first, second = np.mean(overlaps[:half]), np.mean(overlaps[half:])
        # The later part of the path drifts toward the objective genre.  This
        # is a single illustrative case (as in the paper), so allow slack for
        # one-off detours rather than demanding strict monotonicity.
        assert second >= first - 0.25
