"""Ablation bench: random vs. item2vec item-embedding initialisation (§III-D1).

The paper motivates initialising the token embeddings from item2vec ("better
initial weights ... can significantly improve the ultimate model
performance").  DESIGN.md lists this as a design choice worth ablating: the
bench trains the same IRN twice — random vs. pre-trained initialisation — and
reports the Table III metrics for both.

At this corpus scale the gap is small, so the assertions only require the
pre-trained variant to stay competitive (no large regression on SR or
smoothness); the measured rows are recorded in EXPERIMENTS.md.
"""

from repro.experiments import ablations
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_ablation_embedding_init(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr, ppl = f"SR{max_length}", "log(PPL)"

    rows = benchmark.pedantic(
        ablations.ablation_embedding_init, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Ablation - item-embedding initialisation", format_table(rows))
    assert [row["variant"] for row in rows] == ["random init", "item2vec init"]
    by_variant = {row["variant"]: row for row in rows}

    if fast_mode:
        return

    # Pre-training must not hurt: the item2vec-initialised IRN stays within
    # noise of the random one on reach and smoothness (and usually wins).
    assert by_variant["item2vec init"][sr] >= by_variant["random init"][sr] - 0.1
    assert by_variant["item2vec init"][ppl] <= by_variant["random init"][ppl] + 0.3
