"""Benchmark: regenerate Table V (PIM mask-type ablation).

Paper reference (Table V): revealing the objective (Type 2) dramatically
improves SR20 / IoI20 over the purely causal mask (Type 1) at a modest PPL
cost, and adding the personalized impressionability factor (Type 3) improves
the influence metrics further (~20%) with no evident smoothness impact.

The Type-1-vs-rest gap is large and reproduces robustly; the Type-2-vs-Type-3
gap is small in the paper and within noise at this scale, so it is asserted
only loosely (Type 3 within 75% of Type 2 or better).
"""

from repro.experiments import tables
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_table5_mask_ablation(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr, ioi = f"SR{max_length}", f"IoI{max_length}"

    rows = benchmark.pedantic(tables.table5_mask_ablation, args=(pipeline,), rounds=1, iterations=1)

    print_report("Table V - PIM ablation", format_table(rows))
    assert len(rows) == 3
    type1, type2, type3 = rows

    if fast_mode:
        return

    # Perceiving the objective is what creates influence (Type 2/3 >> Type 1).
    assert type2[sr] >= type1[sr]
    assert type3[sr] >= type1[sr]
    assert type2[ioi] > type1[ioi]
    assert type3[ioi] > type1[ioi]

    # Personalization keeps (or improves) the influence power of Type 2.
    assert type3[sr] >= 0.75 * type2[sr]
    assert type3[ioi] >= 0.6 * type2[ioi]
