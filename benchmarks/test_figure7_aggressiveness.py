"""Benchmark: regenerate Figure 7 (SR20 and log PPL vs. aggressiveness degree).

Paper reference (Figure 7): raising the aggressiveness degree — the candidate
set size k for Rec2Inf, the objective mask weight w_t for IRN — increases
SR20 for both families, and the baselines trade smoothness for reach while
IRN keeps a better SR-at-equal-PPL profile.  The assertions check that both
SR curves are (weakly) increasing in the aggressiveness level and that the
IRN curve ends at least as high as it starts.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_figure7_aggressiveness(benchmark, pipeline, fast_mode):
    irn_levels = (0.0, 1.0) if fast_mode else (0.0, 0.25, 0.5, 0.75, 1.0)
    rec2inf_levels = (3, 10) if fast_mode else None

    sweep = benchmark.pedantic(
        figures.figure7_aggressiveness,
        args=(pipeline,),
        kwargs={"irn_levels": irn_levels, "rec2inf_levels": rec2inf_levels},
        rounds=1,
        iterations=1,
    )

    max_length = pipeline.config.max_path_length
    sr_key = f"SR{max_length}"
    for name, rows in sweep.items():
        print_report(f"Figure 7 - aggressiveness [{name}]", format_table(rows))

    assert len(sweep) == 2
    for name, rows in sweep.items():
        levels = [row["level"] for row in rows]
        assert levels == sorted(levels)
        success = [row[sr_key] for row in rows]
        # More aggressiveness never hurts the success rate by more than noise.
        assert success[-1] >= success[0] - 0.02, f"{name}: SR did not grow with aggressiveness"

    if fast_mode:
        return
    irn_rows = sweep["IRN"]
    # w_t = 0 removes the objective pull entirely; w_t = 1 should clearly beat it.
    assert irn_rows[-1][sr_key] >= irn_rows[0][sr_key]
