"""Extension bench: stepwise user-response simulation (future-work direction 4).

Every framework faces the same simulated users (acceptance driven by the IRS
evaluator's probabilities plus per-user impressionability) under the
exclude-rejected replanning policy.  Influence only counts when the user
*accepts* the objective item, so the interactive success rates sit below the
offline SR of Table III.
"""

from repro.experiments import extensions
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_extension_interactive_simulation(benchmark, pipeline, fast_mode):
    rows = benchmark.pedantic(
        extensions.extension_interactive_comparison, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Extension - interactive (accept/reject) simulation", format_table(rows))
    by_framework = {row["framework"]: row for row in rows}
    assert "IRN" in by_framework
    for row in rows:
        assert 0.0 <= row["interactive_SR"] <= 1.0
        assert 0.0 <= row["acceptance_rate"] <= 1.0
        assert 0.0 <= row["abandonment_rate"] <= 1.0
        assert row["mean_steps"] <= pipeline.config.max_path_length

    if fast_mode:
        return

    # The objective-aware frameworks reach the (accepted) objective at least
    # as often as the objective-agnostic vanilla baseline.
    vanilla_rows = [row for name, row in by_framework.items() if name.startswith("Vanilla")]
    if vanilla_rows:
        best_vanilla = max(row["interactive_SR"] for row in vanilla_rows)
        assert by_framework["IRN"]["interactive_SR"] >= best_vanilla - 0.05
