"""Benchmark: regenerate Figure 9 (stepwise evolution of user interests).

Paper reference (Figure 9): along IRN's influence paths the probability that
the user accepts the objective item rises steadily step after step while the
per-step item probability stays high, whereas the adapted baselines' curves
stay flat.  The assertions check that IRN's objective-probability series ends
higher than it starts and that its net rise is at least as large as the
baselines'.
"""

import numpy as np

from repro.experiments import figures
from repro.experiments.reporting import format_series

from benchmarks.conftest import print_report


def _net_rise(series: list[float]) -> float:
    return series[-1] - series[0] if len(series) >= 2 else 0.0


def test_figure9_stepwise_evolution(benchmark, pipeline, fast_mode):
    evolution = benchmark.pedantic(
        figures.figure9_stepwise_evolution, args=(pipeline,), rounds=1, iterations=1
    )

    for name, series in evolution.items():
        print_report(
            f"Figure 9 - stepwise evolution [{name}]",
            format_series(series, x_label="step"),
        )

    assert "IRN" in evolution
    for series in evolution.values():
        assert len(series["objective"]) == len(series["item"]) >= 1
        assert np.isfinite(series["objective"]).all()
        assert np.isfinite(series["item"]).all()

    if fast_mode:
        return

    irn_rise = _net_rise(evolution["IRN"]["objective"])
    # The objective probability increases along IRN's paths...
    assert irn_rise > 0.0
    # ...and (up to noise at this scale) at least as much as along the
    # adapted baselines' paths.
    baseline_rises = [
        _net_rise(series["objective"]) for name, series in evolution.items() if name != "IRN"
    ]
    if baseline_rises:
        assert irn_rise >= max(baseline_rises) - 0.15
