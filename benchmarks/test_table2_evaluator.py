"""Benchmark: regenerate Table II (IRS evaluator selection).

Paper reference (Table II): on both datasets the four candidate evaluators
reach HR@20 in the 0.04-0.26 range and BERT4Rec is the best, so it becomes
the evaluator.  Here all candidates are trained with NumPy-scale budgets; the
assertion is that every candidate produces a valid score and that the
selected evaluator is the HR@20 argmax (the selection logic itself), since
which Transformer variant wins at this scale is noise.
"""

from repro.experiments import tables
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_table2_evaluator_selection(benchmark, pipeline):
    rows = benchmark.pedantic(tables.table2_evaluator_selection, args=(pipeline,), rounds=1, iterations=1)

    print_report("Table II - IRS evaluator selection", format_table(rows))
    assert rows, "no evaluator candidates were scored"
    for row in rows:
        assert 0.0 <= row["hr@20"] <= 1.0
        assert 0.0 <= row["mrr"] <= 1.0
    selected = [row for row in rows if row["selected"]]
    assert len(selected) == 1
    best_hr = max(row["hr@20"] for row in rows)
    assert selected[0]["hr@20"] == best_hr
