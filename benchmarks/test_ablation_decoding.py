"""Ablation bench: greedy Algorithm 1 decoding vs. beam-search planning.

Both variants use the same trained IRN; only the inference-time decoder
differs.  Beam search plans whole paths with a completion bonus, so it should
reach the objective at least as often as the greedy loop while keeping the
paths comparably smooth — the inference-time analogue of the "local optimum"
limitation the paper attributes to greedy Rec2Inf selection (§III-C).
"""

from repro.experiments import ablations
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_ablation_decoding(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr, ppl = f"SR{max_length}", "log(PPL)"

    rows = benchmark.pedantic(
        ablations.ablation_decoding, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Ablation - path decoding (greedy vs beam)", format_table(rows))
    assert rows[0]["variant"] == "greedy (Algorithm 1)"
    assert rows[1]["variant"].startswith("beam search")

    if fast_mode:
        return

    greedy, beam = rows
    # Planning ahead should not reach the objective less often than greedy.
    assert beam[sr] >= greedy[sr] - 0.05
    # And the planned paths stay in a comparable smoothness range.
    assert beam[ppl] <= greedy[ppl] + 1.0
