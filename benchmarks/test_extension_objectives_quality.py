"""Extension bench: category objectives and beyond-accuracy path quality.

Two extension experiments that reuse the already-trained pipeline models:

* category objectives (future-work direction 3) — the success rate of leading
  users toward a whole genre is at least as high as toward a single random
  item, because any member of the category counts;
* path-quality report — genre smoothness, diversity, novelty and coverage per
  framework (the quantitative generalisation of the Table VII case study).
"""

import numpy as np

from repro.experiments import extensions
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_extension_category_objectives(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr = f"SR{max_length}"

    rows = benchmark.pedantic(
        extensions.extension_category_objectives, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Extension - category objectives", format_table(rows))
    assert rows
    for row in rows:
        assert row["members"] >= 1
        assert 0.0 <= row[sr] <= 1.0
        assert 0.0 < row["mean_path_length"] <= max_length

    if fast_mode:
        return
    # Reaching *some* item of a popular category should be markedly easier
    # than reaching one specific random item; require a healthy success rate
    # on at least one category.
    assert max(row[sr] for row in rows) >= 0.3


def test_extension_path_quality(benchmark, pipeline, fast_mode):
    rows = benchmark.pedantic(
        extensions.extension_path_quality_report, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Extension - path quality report", format_table(rows))
    by_framework = {row["framework"]: row for row in rows}
    assert "IRN" in by_framework
    for row in rows:
        assert 0.0 <= row["reach_rate"] <= 1.0
        assert 0.0 <= row["coverage"] <= 1.0
        assert np.isfinite(row["novelty_bits"])

    if fast_mode:
        return
    # IRN's paths remain genre-coherent: most consecutive steps share a genre.
    irn_smoothness = by_framework["IRN"]["genre_smoothness"]
    assert np.isnan(irn_smoothness) or irn_smoothness >= 0.3
