"""Benchmark: regenerate Figure 6 (success rate vs. maximum path length M).

Paper reference (Figure 6): SR_M increases with M for every method; IRN keeps
improving steadily as the budget grows (long-range planning), whereas the
Rec2Inf baselines flatten out early.  The assertions check monotonicity for
every curve and that IRN's relative gain from the shortest to the longest
budget is at least as large as the best baseline's.
"""

from repro.experiments import figures
from repro.experiments.reporting import format_series

from benchmarks.conftest import print_report

LENGTHS = (5, 10, 15, 20)


def test_figure6_success_vs_length(benchmark, pipeline, fast_mode):
    lengths = (3, 6) if fast_mode else LENGTHS

    curves = benchmark.pedantic(
        figures.figure6_success_vs_length,
        args=(pipeline,),
        kwargs={"lengths": lengths},
        rounds=1,
        iterations=1,
    )

    series = {name: [values[m] for m in lengths] for name, values in curves.items()}
    print_report("Figure 6 - SR_M vs maximum path length", format_series(series, x_label="level"))

    assert "IRN" in curves
    for name, values in curves.items():
        ordered = [values[m] for m in lengths]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:])), f"{name} SR not monotone"

    if fast_mode:
        return

    irn_gain = curves["IRN"][lengths[-1]] - curves["IRN"][lengths[0]]
    baseline_gains = [
        values[lengths[-1]] - values[lengths[0]] for name, values in curves.items() if name != "IRN"
    ]
    # IRN's improvement with a longer budget matches or exceeds the baselines'
    # (the "baselines flatten out, IRN keeps climbing" claim), up to noise.
    assert irn_gain >= max(baseline_gains) - 0.03
