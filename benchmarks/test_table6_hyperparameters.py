"""Benchmark: regenerate Table VI (hyperparameter grid).

Table VI of the paper is descriptive (ranges searched and chosen optima);
this bench reproduces it verbatim and appends the values effectively used by
this reproduction so the two configurations can be compared side by side.
"""

from repro.experiments import tables
from repro.experiments.config import PAPER_HYPERPARAMETERS
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_table6_hyperparameters(benchmark, pipeline):
    rows = benchmark.pedantic(tables.table6_hyperparameters, args=(pipeline,), rounds=1, iterations=1)

    print_report("Table VI - hyperparameters", format_table(rows))
    assert len(rows) == len(PAPER_HYPERPARAMETERS)
    names = {row["name"] for row in rows}
    assert {"l_max", "l_min", "batch_size", "lr", "d", "d_prime", "L", "w_t", "h"} == names
    # Paper optima are preserved verbatim.
    w_t = next(row for row in rows if row["name"] == "w_t")
    assert w_t["lastfm"] == 1 and w_t["movielens-1m"] == 1
    # And every row documents this repository's effective value.
    assert all("this_repro" in row for row in rows)
