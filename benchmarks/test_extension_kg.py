"""Extension bench: knowledge-graph subgraph expansion (future-work direction 1).

Kg2Inf models the user's interests as a subgraph of an item/genre knowledge
graph and expands it toward the objective.  Compared with the plain Pf2Inf
Dijkstra baseline it never gets stranded on a disjoint co-occurrence
component (genre nodes keep the graph connected) and it weighs every step by
closeness to the user's interests rather than following one shortest path.
"""

from repro.experiments import extensions
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_extension_kg_comparison(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr, ppl = f"SR{max_length}", "log(PPL)"

    rows = benchmark.pedantic(
        extensions.extension_kg_comparison, args=(pipeline,), rounds=1, iterations=1
    )

    print_report("Extension - knowledge-graph path finding", format_table(rows))
    by_framework = {row["framework"]: row for row in rows}
    assert {"Pf2Inf Dijkstra", "Kg2Inf (subgraph expansion)", "IRN"} <= set(by_framework)
    for row in rows:
        assert 0.0 <= row[sr] <= 1.0

    if fast_mode:
        return

    kg_row = by_framework["Kg2Inf (subgraph expansion)"]
    dijkstra_row = by_framework["Pf2Inf Dijkstra"]
    # The KG expansion is at least as capable of reaching the objective as the
    # plain shortest-path baseline (genre edges can only add connectivity).
    assert kg_row[sr] >= dijkstra_row[sr] - 0.1
    # Both graph methods remain less smooth than IRN, as in Table III.
    assert by_framework["IRN"][ppl] <= max(kg_row[ppl], dijkstra_row[ppl]) + 0.05
