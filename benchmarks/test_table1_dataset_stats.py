"""Benchmark: regenerate Table I (dataset statistics after preprocessing).

Paper reference (Table I): Lastfm has 896 users / 2,682 items / 28,220
interactions (density 1.17%, 31 items per user); MovieLens-1M has 6,040 users
/ 3,415 items / 996,183 interactions (density 4.83%, 164 items per user).
The synthetic stand-ins are much smaller, but the *relative* shape must hold:
MovieLens-like is denser and has several times longer user histories than
Lastfm-like.
"""

from repro.experiments import tables
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def test_table1_dataset_statistics(benchmark, bench_config):
    configs = [bench_config.with_dataset("movielens"), bench_config.with_dataset("lastfm")]

    rows = benchmark.pedantic(tables.table1_dataset_statistics, args=(configs,), rounds=1, iterations=1)

    print_report("Table I - dataset statistics", format_table(rows))
    by_name = {row["dataset"]: row for row in rows}
    movielens = next(v for k, v in by_name.items() if "movielens" in k)
    lastfm = next(v for k, v in by_name.items() if "lastfm" in k)
    assert movielens["users"] > 0 and lastfm["users"] > 0
    # Shape claims from Table I: MovieLens is denser and has longer histories.
    assert movielens["avg_items_per_user"] > lastfm["avg_items_per_user"]
    assert movielens["density"] > lastfm["density"]
