"""Benchmark: regenerate Table III (main comparison, M = 20).

Paper reference (Table III): IRN clearly leads on SR20 / IoI20 / IoR20 on
both datasets (e.g. SR20 = 0.259 on MovieLens-1M vs. 0.073 for the best
Rec2Inf baseline), Rec2Inf adaptations beat their vanilla counterparts on
those metrics, the vanilla baselines almost never reach the objective, and
Pf2Inf reaches it sometimes but with clearly worse (higher) perplexity.

On the synthetic corpora the absolute numbers differ (see EXPERIMENTS.md);
the assertions below encode the ordering claims that transfer:

* Rec2Inf lifts SR / IoI / IoR over vanilla for the same backbones.
* IRN beats every vanilla baseline on SR and IoR.
* IRN is competitive with the best Rec2Inf baseline (within a factor) while
  being *smoother* (lower log PPL) than that baseline.
* Pf2Inf pays for its reach with the worst perplexity of all frameworks.
"""

import numpy as np

from repro.experiments import tables
from repro.experiments.reporting import format_table

from benchmarks.conftest import print_report


def _column(rows, prefix):
    return {row["framework"]: row for row in rows if row["framework"].startswith(prefix)}


def test_table3_main_comparison(benchmark, pipeline, fast_mode):
    max_length = pipeline.config.max_path_length
    sr, ioi, ior, ppl = f"SR{max_length}", f"IoI{max_length}", f"IoR{max_length}", "log(PPL)"

    rows = benchmark.pedantic(tables.table3_main_comparison, args=(pipeline,), rounds=1, iterations=1)

    print_report("Table III - main comparison", format_table(rows))
    vanilla = _column(rows, "Vanilla")
    rec2inf = _column(rows, "Rec2Inf")
    pf2inf = _column(rows, "Pf2Inf")
    irn = next(row for row in rows if row["framework"] == "IRN")

    assert vanilla and rec2inf and pf2inf

    # Rec2Inf adaptation raises the influence metrics over the vanilla models.
    mean_vanilla_sr = np.mean([row[sr] for row in vanilla.values()])
    mean_rec2inf_sr = np.mean([row[sr] for row in rec2inf.values()])
    assert mean_rec2inf_sr >= mean_vanilla_sr

    if fast_mode:
        return  # the smoke profile only checks that the harness runs end to end

    mean_vanilla_ioi = np.mean([row[ioi] for row in vanilla.values()])
    mean_rec2inf_ioi = np.mean([row[ioi] for row in rec2inf.values()])
    assert mean_rec2inf_ioi >= mean_vanilla_ioi

    # IRN dominates the vanilla baselines on the influence metrics.
    assert irn[sr] > max(row[sr] for row in vanilla.values())
    assert irn[ior] > max(row[ior] for row in vanilla.values())
    assert irn[ioi] > np.mean([row[ioi] for row in vanilla.values()])

    # IRN is competitive with the strongest Rec2Inf adaptation on reach while
    # staying on the smooth side of the adapted baselines (the paper's
    # SR-vs-PPL trade-off claim: IRN gets near-best PPL while influencing).
    best_rec2inf = max(rec2inf.values(), key=lambda row: row[sr])
    assert irn[sr] >= 0.6 * best_rec2inf[sr]
    assert irn[ior] >= 0.8 * best_rec2inf[ior]
    assert irn[ppl] <= np.median([row[ppl] for row in rec2inf.values()]) + 0.05

    # Path-finding reaches the objective at the cost of the worst smoothness.
    assert max(row[ppl] for row in pf2inf.values()) >= irn[ppl]
    assert max(row[ppl] for row in pf2inf.values()) >= max(row[ppl] for row in rec2inf.values()) - 0.3
