"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
part — training the evaluator, the baselines and IRN — is shared through a
session-scoped :class:`~repro.experiments.pipeline.ExperimentPipeline`, so the
whole harness trains each model exactly once.

Environment knobs:

``REPRO_BENCH_PROFILE``
    ``default`` (the standard reproduction scale, minutes of NumPy training)
    or ``fast`` (a seconds-scale smoke profile).  Default: ``default``.
``REPRO_BENCH_DATASET``
    ``movielens`` (default) or ``lastfm``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import ExperimentPipeline


def _bench_config() -> ExperimentConfig:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "default")
    dataset = os.environ.get("REPRO_BENCH_DATASET", "movielens")
    if profile == "fast":
        return ExperimentConfig.fast(dataset)
    config = ExperimentConfig.default(dataset)
    # Keep the full-harness wall clock reasonable: fewer evaluation users than
    # the standalone calibration runs, same training budgets.
    config.max_eval_instances = 60
    return config


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration used by every benchmark."""
    return _bench_config()


@pytest.fixture(scope="session")
def pipeline(bench_config) -> ExperimentPipeline:
    """The shared experiment pipeline (models are trained lazily, once)."""
    return ExperimentPipeline(bench_config)


@pytest.fixture(scope="session")
def fast_mode(bench_config) -> bool:
    """True when running the smoke profile (assertions are relaxed)."""
    return bench_config.use_markov_evaluator


def print_report(title: str, body: str) -> None:
    """Print a benchmark report block (shown with pytest -s / captured otherwise)."""
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}\n{body}\n")
