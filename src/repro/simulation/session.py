"""The interactive influence session: recommender vs. simulated user.

Algorithm 1 of the paper assumes the user passively accepts every path item.
:class:`InteractiveSession` replaces that assumption with a stepwise loop:

1. the replanning policy asks the recommender for the next item;
2. the simulated user accepts or rejects it;
3. accepted items extend the user's consumed sequence (and the influence
   path); rejected items are remembered so the policy can replan around them;
4. the session ends when the objective is *accepted*, the step budget is
   exhausted, the user abandons (too many consecutive rejections) or the
   recommender gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.base import InfluentialRecommender
from repro.simulation.policies import ExcludeRejectedPolicy, ReplanningPolicy
from repro.simulation.user import SimulatedUser
from repro.utils.exceptions import ConfigurationError

__all__ = ["StepOutcome", "SessionResult", "InteractiveSession"]


@dataclass(frozen=True)
class StepOutcome:
    """One recommendation inside a session and the user's reaction."""

    step: int
    item: int
    accepted: bool
    acceptance_probability: float


@dataclass
class SessionResult:
    """Everything that happened in one interactive session."""

    user_index: int | None
    history: tuple[int, ...]
    objective: int
    steps: list[StepOutcome] = field(default_factory=list)
    reached: bool = False
    abandoned: bool = False

    @property
    def accepted_items(self) -> list[int]:
        """The influence path actually consumed by the user."""
        return [step.item for step in self.steps if step.accepted]

    @property
    def rejected_items(self) -> list[int]:
        """Items the user declined."""
        return [step.item for step in self.steps if not step.accepted]

    @property
    def num_steps(self) -> int:
        """Total number of recommendations shown."""
        return len(self.steps)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of shown recommendations the user accepted."""
        if not self.steps:
            return 0.0
        return len(self.accepted_items) / len(self.steps)

    def final_sequence(self) -> list[int]:
        """History plus every accepted item, in consumption order."""
        return list(self.history) + self.accepted_items


class InteractiveSession:
    """Run stepwise influence sessions for one recommender.

    Parameters
    ----------
    recommender:
        A fitted :class:`~repro.core.base.InfluentialRecommender`.
    user:
        The :class:`~repro.simulation.user.SimulatedUser` reacting to each
        recommendation.
    policy:
        The :class:`~repro.simulation.policies.ReplanningPolicy`; defaults to
        :class:`~repro.simulation.policies.ExcludeRejectedPolicy`.
    max_steps:
        Maximum number of recommendations shown per session (the interactive
        analogue of the maximum path length ``M``).
    """

    def __init__(
        self,
        recommender: InfluentialRecommender,
        user: SimulatedUser,
        policy: ReplanningPolicy | None = None,
        max_steps: int = 20,
    ) -> None:
        if max_steps <= 0:
            raise ConfigurationError("max_steps must be positive")
        self.recommender = recommender
        self.user = user
        self.policy = policy or ExcludeRejectedPolicy()
        self.max_steps = max_steps

    # ------------------------------------------------------------------ #
    def run(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
    ) -> SessionResult:
        """Run one full session and return its :class:`SessionResult`."""
        self.policy.reset(self.recommender)
        result = SessionResult(
            user_index=user_index, history=tuple(history), objective=int(objective)
        )
        consumed = list(history)
        accepted_path: list[int] = []
        rejected: list[int] = []
        consecutive_rejections = 0

        for step in range(self.max_steps):
            proposal = self.policy.propose(
                self.recommender,
                history,
                objective,
                accepted_path,
                rejected,
                user_index=user_index,
            )
            if proposal is None:
                break
            probability = self.user.acceptance_probability(proposal, consumed)
            accepted = self.user.accepts(proposal, consumed)
            result.steps.append(
                StepOutcome(
                    step=step,
                    item=int(proposal),
                    accepted=accepted,
                    acceptance_probability=probability,
                )
            )
            if accepted:
                consumed.append(int(proposal))
                accepted_path.append(int(proposal))
                consecutive_rejections = 0
                if proposal == objective:
                    result.reached = True
                    break
            else:
                rejected.append(int(proposal))
                consecutive_rejections += 1
                self.policy.notify_rejection(self.recommender, int(proposal))
                if self.user.abandons_after(consecutive_rejections):
                    result.abandoned = True
                    break
        self.policy.reset(self.recommender)
        return result
