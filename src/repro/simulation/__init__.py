"""Stepwise user-response simulation (future-work direction 4 of the paper).

The paper evaluates influence paths under the simplifying assumption that the
user passively accepts every recommendation.  Its conclusion lists "consider
the stepwise dynamics in generating the influence path" as an open direction:
a real user may reject an intermediate item, and the IRS then has to adapt.

This subpackage implements that missing loop:

* :class:`~repro.simulation.user.SimulatedUser` — a probabilistic user model
  that accepts or rejects each recommended item based on the IRS evaluator's
  ``P(i | s)`` and a per-user acceptance profile (threshold, temperature,
  patience).
* :mod:`~repro.simulation.policies` — replanning policies describing how the
  recommender reacts to a rejection (ignore it, exclude the rejected item,
  back off its aggressiveness).
* :class:`~repro.simulation.session.InteractiveSession` — the step-by-step
  session loop that couples a recommender, a policy and a simulated user.
* :mod:`~repro.simulation.metrics` — session-level metrics (interactive
  success rate, acceptance rate, abandonment rate, steps to objective).
* :func:`~repro.simulation.experiment.run_interactive_experiment` — the
  experiment driver that evaluates several frameworks under the same
  simulated users (the interactive analogue of Table III).
"""

from repro.simulation.experiment import InteractiveComparison, run_interactive_experiment
from repro.simulation.metrics import SessionMetrics, aggregate_sessions
from repro.simulation.policies import (
    AggressivenessBackoffPolicy,
    ExcludeRejectedPolicy,
    PersistentPolicy,
    ReplanningPolicy,
)
from repro.simulation.session import InteractiveSession, SessionResult, StepOutcome
from repro.simulation.user import AcceptanceProfile, SimulatedUser

__all__ = [
    "AcceptanceProfile",
    "SimulatedUser",
    "ReplanningPolicy",
    "PersistentPolicy",
    "ExcludeRejectedPolicy",
    "AggressivenessBackoffPolicy",
    "InteractiveSession",
    "SessionResult",
    "StepOutcome",
    "SessionMetrics",
    "aggregate_sessions",
    "InteractiveComparison",
    "run_interactive_experiment",
]
