"""Probabilistic user model for interactive IRS simulation.

The model turns the IRS evaluator's relevance estimate ``P(i | s)`` into an
accept/reject decision.  The raw probability is compared against the uniform
baseline ``1 / |I|``: an item the evaluator considers ``lift`` times more
likely than a random item is accepted with probability given by a logistic
curve.  Two per-user parameters shape the curve:

* ``acceptance_bias`` — how willing the user is to try *any* recommendation
  (the curve's horizontal offset).  Impressionable users have a higher bias.
* ``temperature`` — how sharply acceptance falls off as relevance drops.

A ``patience`` budget models abandonment: after that many *consecutive*
rejections the user leaves the session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.evaluation.evaluator import IRSEvaluator
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng

__all__ = ["AcceptanceProfile", "SimulatedUser"]


@dataclass(frozen=True)
class AcceptanceProfile:
    """Per-user acceptance parameters.

    Parameters
    ----------
    acceptance_bias:
        Added to the relevance lift before the logistic squash.  Positive
        values make the user easier to persuade; ``0`` is neutral.
    temperature:
        Divides the relevance lift; must be positive.  Large temperatures
        flatten the curve (decisions become almost random), small ones make
        the user deterministic around the threshold.
    patience:
        Number of consecutive rejections tolerated before the user abandons
        the session.  ``None`` means the user never abandons.
    """

    acceptance_bias: float = 0.0
    temperature: float = 1.0
    patience: int | None = 3

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        if self.patience is not None and self.patience <= 0:
            raise ConfigurationError("patience must be positive (or None)")

    @classmethod
    def from_impressionability(
        cls, impressionability: float, patience: int | None = 3
    ) -> "AcceptanceProfile":
        """Map a latent impressionability in ``[0, 1]`` to a profile.

        Impressionability 0.5 is neutral; 1.0 adds a bias of +2 (very easy to
        persuade), 0.0 a bias of -2 (very conservative).  This mirrors the
        synthetic generator's user traits so simulated users stay consistent
        with the corpus they were generated from.
        """
        if not 0.0 <= impressionability <= 1.0:
            raise ConfigurationError("impressionability must lie in [0, 1]")
        return cls(acceptance_bias=4.0 * (impressionability - 0.5), patience=patience)


class SimulatedUser:
    """Accept/reject oracle for one user, backed by the IRS evaluator.

    Parameters
    ----------
    evaluator:
        The probability oracle ``P(i | s)`` (normally the Table II winner).
    profile:
        The user's :class:`AcceptanceProfile`.
    seed:
        Seed (or generator) for the Bernoulli draws.
    deterministic:
        If True, skip the Bernoulli draw and accept exactly when the
        acceptance probability is at least 0.5 (useful in tests).
    """

    def __init__(
        self,
        evaluator: IRSEvaluator,
        profile: AcceptanceProfile | None = None,
        seed: "int | np.random.Generator | None" = 0,
        deterministic: bool = False,
    ) -> None:
        self.evaluator = evaluator
        self.profile = profile or AcceptanceProfile()
        self.rng = as_rng(seed)
        self.deterministic = deterministic

    # ------------------------------------------------------------------ #
    def acceptance_probability(self, item: int, sequence: Sequence[int]) -> float:
        """Probability that the user accepts ``item`` after consuming ``sequence``."""
        num_items = max(self.evaluator.model.vocab_size - 1, 1)
        log_p = self.evaluator.log_probability(item, sequence)
        uniform_log_p = float(np.log(1.0 / num_items))
        lift = (log_p - uniform_log_p + self.profile.acceptance_bias) / self.profile.temperature
        return float(1.0 / (1.0 + np.exp(-lift)))

    def accepts(self, item: int, sequence: Sequence[int]) -> bool:
        """Draw the accept/reject decision for one recommendation."""
        probability = self.acceptance_probability(item, sequence)
        if self.deterministic:
            return probability >= 0.5
        return bool(self.rng.random() < probability)

    # ------------------------------------------------------------------ #
    def abandons_after(self, consecutive_rejections: int) -> bool:
        """Whether the user walks away after this many consecutive rejections."""
        if self.profile.patience is None:
            return False
        return consecutive_rejections >= self.profile.patience
