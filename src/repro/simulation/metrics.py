"""Session-level metrics for the interactive simulation.

These are the interactive analogues of the paper's offline metrics: instead
of scoring a passively accepted path, they score what actually happened when
a simulated user could reject recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.simulation.session import SessionResult
from repro.utils.exceptions import ConfigurationError

__all__ = ["SessionMetrics", "aggregate_sessions"]


@dataclass(frozen=True)
class SessionMetrics:
    """Aggregated metrics over a collection of interactive sessions."""

    #: fraction of sessions in which the user *accepted* the objective item
    interactive_success_rate: float
    #: mean fraction of shown recommendations that were accepted
    acceptance_rate: float
    #: fraction of sessions the user abandoned before the step budget ran out
    abandonment_rate: float
    #: mean number of recommendations shown per session
    mean_steps: float
    #: mean number of accepted items per session (the consumed path length)
    mean_accepted_items: float
    #: mean number of shown recommendations in *successful* sessions only
    mean_steps_to_success: float
    #: number of sessions aggregated
    num_sessions: int

    def as_row(self, framework: str) -> dict[str, float | int | str]:
        """Return the metrics as one row of an interactive comparison table."""
        return {
            "framework": framework,
            "interactive_SR": round(self.interactive_success_rate, 4),
            "acceptance_rate": round(self.acceptance_rate, 4),
            "abandonment_rate": round(self.abandonment_rate, 4),
            "mean_steps": round(self.mean_steps, 2),
            "mean_accepted": round(self.mean_accepted_items, 2),
            "steps_to_success": round(self.mean_steps_to_success, 2),
        }


def aggregate_sessions(sessions: Sequence[SessionResult]) -> SessionMetrics:
    """Compute :class:`SessionMetrics` over the given sessions."""
    if not sessions:
        raise ConfigurationError("no sessions to aggregate")
    successes = [session for session in sessions if session.reached]
    acceptance_rates = [session.acceptance_rate for session in sessions if session.steps]
    steps_to_success = [session.num_steps for session in successes]
    return SessionMetrics(
        interactive_success_rate=len(successes) / len(sessions),
        acceptance_rate=float(np.mean(acceptance_rates)) if acceptance_rates else 0.0,
        abandonment_rate=sum(1 for session in sessions if session.abandoned) / len(sessions),
        mean_steps=float(np.mean([session.num_steps for session in sessions])),
        mean_accepted_items=float(np.mean([len(session.accepted_items) for session in sessions])),
        mean_steps_to_success=float(np.mean(steps_to_success)) if steps_to_success else 0.0,
        num_sessions=len(sessions),
    )
