"""Replanning policies: how an influential recommender reacts to rejections.

The policies wrap the ``next_step`` call of an
:class:`~repro.core.base.InfluentialRecommender` inside an interactive
session.  They differ in what they do with the set of items the user has
already rejected:

* :class:`PersistentPolicy` — ignore rejections entirely; the recommender may
  propose the same item again (the degenerate "hard-sell" behaviour).
* :class:`ExcludeRejectedPolicy` — never propose a rejected item again; the
  recommender replans around the rejection.
* :class:`AggressivenessBackoffPolicy` — additionally lower the recommender's
  aggressiveness (the objective weight ``w_t`` for IRN, the candidate set
  size ``k`` for Rec2Inf) after each rejection, so the path falls back toward
  the user's comfort zone before approaching the objective again.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.core.base import InfluentialRecommender
from repro.core.rec2inf import Rec2Inf
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ReplanningPolicy",
    "PersistentPolicy",
    "ExcludeRejectedPolicy",
    "AggressivenessBackoffPolicy",
]


class ReplanningPolicy(abc.ABC):
    """Strategy object consulted for every step of an interactive session."""

    name: str = "policy"

    @abc.abstractmethod
    def propose(
        self,
        recommender: InfluentialRecommender,
        history: Sequence[int],
        objective: int,
        accepted_path: Sequence[int],
        rejected: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        """Return the next item to recommend, or ``None`` to give up."""

    def notify_rejection(self, recommender: InfluentialRecommender, item: int) -> None:
        """Hook called after the user rejects ``item`` (default: no-op)."""

    def reset(self, recommender: InfluentialRecommender) -> None:
        """Hook called at the start of every session (default: no-op)."""


class PersistentPolicy(ReplanningPolicy):
    """Ignore rejections: always ask the recommender for its unconstrained step."""

    name = "persistent"

    def propose(
        self,
        recommender: InfluentialRecommender,
        history: Sequence[int],
        objective: int,
        accepted_path: Sequence[int],
        rejected: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        return recommender.next_step(history, objective, accepted_path, user_index=user_index)


class ExcludeRejectedPolicy(ReplanningPolicy):
    """Replan around rejections by excluding every rejected item.

    The exclusion is implemented generically: the recommender is asked for a
    step given the accepted path; if the proposal was already rejected, the
    policy retries with the rejected items temporarily appended to the path
    context (so sequence-aware recommenders move on), up to ``max_retries``
    times.
    """

    name = "exclude-rejected"

    def __init__(self, max_retries: int = 5) -> None:
        if max_retries <= 0:
            raise ConfigurationError("max_retries must be positive")
        self.max_retries = max_retries

    def propose(
        self,
        recommender: InfluentialRecommender,
        history: Sequence[int],
        objective: int,
        accepted_path: Sequence[int],
        rejected: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        rejected_set = set(rejected)
        context = list(accepted_path)
        for _ in range(self.max_retries):
            proposal = recommender.next_step(history, objective, context, user_index=user_index)
            if proposal is None:
                return None
            if proposal not in rejected_set:
                return proposal
            # Let the recommender "see" the rejected item so that it proposes
            # something else next time, without recording it as accepted.
            context = context + [proposal]
        return None


class AggressivenessBackoffPolicy(ExcludeRejectedPolicy):
    """Exclude rejected items and reduce aggressiveness after each rejection.

    For :class:`~repro.core.irn.IRN` (or any recommender exposing an
    ``objective_weight`` attribute) the weight is multiplied by ``backoff``
    after every rejection, floored at ``min_weight``.  For
    :class:`~repro.core.rec2inf.Rec2Inf` the candidate set size ``k`` is
    shrunk by the same factor (floored at 1), which reduces how far the
    greedy re-ranking can deviate from the backbone's own ranking.
    """

    name = "backoff"

    def __init__(
        self,
        backoff: float = 0.5,
        min_weight: float = 0.05,
        max_retries: int = 5,
    ) -> None:
        super().__init__(max_retries=max_retries)
        if not 0.0 < backoff < 1.0:
            raise ConfigurationError("backoff must lie strictly between 0 and 1")
        if min_weight < 0:
            raise ConfigurationError("min_weight must be non-negative")
        self.backoff = backoff
        self.min_weight = min_weight
        self._initial: dict[int, float] = {}

    # ------------------------------------------------------------------ #
    def reset(self, recommender: InfluentialRecommender) -> None:
        """Restore the recommender's original aggressiveness."""
        key = id(recommender)
        if key not in self._initial:
            self._initial[key] = self._current_level(recommender)
        else:
            self._set_level(recommender, self._initial[key])

    def notify_rejection(self, recommender: InfluentialRecommender, item: int) -> None:
        level = self._current_level(recommender)
        self._set_level(recommender, max(level * self.backoff, self.min_weight))

    # ------------------------------------------------------------------ #
    @staticmethod
    def _current_level(recommender: InfluentialRecommender) -> float:
        if hasattr(recommender, "objective_weight"):
            return float(recommender.objective_weight)
        if isinstance(recommender, Rec2Inf):
            return float(recommender.candidate_k)
        return 1.0

    def _set_level(self, recommender: InfluentialRecommender, level: float) -> None:
        if hasattr(recommender, "objective_weight"):
            recommender.objective_weight = level
        elif isinstance(recommender, Rec2Inf):
            recommender.candidate_k = max(int(round(level)), 1)
