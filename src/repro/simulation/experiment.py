"""Experiment driver for the interactive (stepwise) evaluation.

:func:`run_interactive_experiment` is the interactive counterpart of the
Table III comparison: every framework faces the *same* simulated users on the
same (history, objective) instances, and the resulting sessions are
aggregated into one row per framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.base import InfluentialRecommender
from repro.evaluation.evaluator import IRSEvaluator
from repro.evaluation.protocol import EvaluationInstance
from repro.simulation.metrics import SessionMetrics, aggregate_sessions
from repro.simulation.policies import ExcludeRejectedPolicy, ReplanningPolicy
from repro.simulation.session import InteractiveSession, SessionResult
from repro.simulation.user import AcceptanceProfile, SimulatedUser
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

__all__ = ["InteractiveComparison", "run_interactive_experiment"]

_LOGGER = get_logger("simulation.experiment")


@dataclass
class InteractiveComparison:
    """Results of one interactive experiment across several frameworks."""

    metrics: dict[str, SessionMetrics]
    sessions: dict[str, list[SessionResult]] = field(default_factory=dict)

    def rows(self) -> list[dict[str, float | int | str]]:
        """Flat table rows, one per framework."""
        return [metric.as_row(name) for name, metric in self.metrics.items()]


def _profile_for_instance(
    instance: EvaluationInstance,
    user_traits,
    patience: int | None,
) -> AcceptanceProfile:
    """Derive the per-user acceptance profile (ground-truth traits when available)."""
    if user_traits is not None and instance.user_index < len(user_traits):
        impressionability = float(user_traits[instance.user_index])
        return AcceptanceProfile.from_impressionability(impressionability, patience=patience)
    return AcceptanceProfile(patience=patience)


def run_interactive_experiment(
    frameworks: Mapping[str, InfluentialRecommender],
    instances: Sequence[EvaluationInstance],
    evaluator: IRSEvaluator,
    policy: ReplanningPolicy | None = None,
    max_steps: int = 20,
    patience: int | None = 3,
    use_corpus_traits: bool = True,
    seed: int = 0,
    keep_sessions: bool = False,
) -> InteractiveComparison:
    """Evaluate every framework against the same simulated users.

    Parameters
    ----------
    frameworks:
        Mapping from row label to a fitted influential recommender.
    instances:
        The (history, objective) instances, normally produced by
        :func:`repro.evaluation.protocol.sample_objectives`.
    evaluator:
        The probability oracle backing the simulated users.
    policy:
        The replanning policy shared by every framework (defaults to
        :class:`~repro.simulation.policies.ExcludeRejectedPolicy`).
    max_steps / patience:
        Session budget and per-user abandonment patience.
    use_corpus_traits:
        When the corpus exposes ground-truth impressionability traits
        (synthetic corpora do), map them to acceptance profiles; otherwise a
        neutral profile is used for everyone.
    seed:
        Base seed; each (framework, instance) pair gets a deterministic
        derived seed so accept/reject draws are reproducible but independent.
    keep_sessions:
        Also return the raw per-session results (memory-heavier).
    """
    if not frameworks:
        raise ConfigurationError("run_interactive_experiment needs at least one framework")
    if not instances:
        raise ConfigurationError("run_interactive_experiment needs at least one instance")

    corpus = evaluator.model.corpus
    traits = corpus.user_traits if (use_corpus_traits and corpus is not None) else None
    policy = policy or ExcludeRejectedPolicy()

    metrics: dict[str, SessionMetrics] = {}
    all_sessions: dict[str, list[SessionResult]] = {}
    for name, recommender in frameworks.items():
        _LOGGER.info("interactive evaluation of %s on %d instances", name, len(instances))
        sessions: list[SessionResult] = []
        for instance_number, instance in enumerate(instances):
            profile = _profile_for_instance(instance, traits, patience)
            user = SimulatedUser(
                evaluator,
                profile=profile,
                # Same user seed across frameworks => identical users; the
                # framework index is *not* mixed in on purpose.
                seed=seed * 100003 + instance_number,
            )
            session = InteractiveSession(
                recommender, user, policy=policy, max_steps=max_steps
            )
            sessions.append(
                session.run(instance.history, instance.objective, user_index=instance.user_index)
            )
        metrics[name] = aggregate_sessions(sessions)
        if keep_sessions:
            all_sessions[name] = sessions
    return InteractiveComparison(metrics=metrics, sessions=all_sessions)
