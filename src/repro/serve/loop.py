"""The asynchronous serving front-end over the sharded planner.

:class:`ServingLoop` is the boundary the ROADMAP's async-serving rung calls
for: callers submit ``next_step`` / ``plan_paths`` requests and get
:class:`concurrent.futures.Future` values back immediately; behind the
boundary each request hash-routes to its worker shard's bounded
:class:`~repro.serve.queue.RequestQueue`
(:func:`~repro.shard.partition.stable_hash` over the ``(history,
objective, user)`` context — the same routing the sharded executor and the
sharded plan caches use), and one drain thread per shard answers everything
pending as a single micro-batch through
:meth:`~repro.core.beam.BeamSearchPlanner.plan_for_requests`.  The
micro-batch fuses all replanning into lockstep beam calls, so the
token-work win measured on pre-assembled batches (PR 1–3) now applies to
asynchronously arriving traffic.

Exactness contract: responses are bit-identical to calling ``next_step`` /
``plan_path`` sequentially in submission order, for every planner backend
and worker count — micro-batching and queueing change *when* work happens,
never *what* is answered.  (The one caveat is inherited from
``plan_for_requests``: a serving cache small enough to evict mid-batch may
reorder evictions; the default sizes never do.)

Observability: the loop owns one registry namespace (``serve.loop.<n>``)
covering its admission counters, every shard queue's depth/batch counters
and the in-loop latency accounting, so :meth:`stats` is ONE atomic registry
snapshot — no more composing independently-locked reads.  With a
:class:`~repro.obs.trace.Tracer` injected and enabled, each admitted
request carries a :class:`~repro.obs.trace.Trace` recording admission,
queue wait and drain spans here, plus the planner/executor spans recorded
through the drain thread's :class:`~repro.obs.trace.BatchSink`; disabled
tracing (the default) allocates nothing on this path.

Shutdown is graceful: :meth:`close` stops admissions, drains every queue
dry, and joins the drain threads — no accepted request is ever dropped.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import Future
from typing import Sequence

from repro.obs.registry import MetricGroup, get_registry
from repro.obs.trace import NULL_TRACER, BatchSink, Tracer, use_sink
from repro.serve.admission import AdmissionController
from repro.serve.queue import RequestQueue
from repro.serve.request import ServeRequest
from repro.shard.partition import shard_index
from repro.utils.exceptions import ConfigurationError, ServingError

__all__ = ["ServingLoop"]

logger = logging.getLogger(__name__)

#: Process-wide micro-batch tags: unique across every loop (and therefore
#: every replica), so grouping answered requests by tag recovers the exact
#: drain batches — the refit race tests rely on tags never colliding
#: between an old-generation and a new-generation replica's drains.
_BATCH_TAGS = itertools.count(1)

_LATENCY_COUNTERS = ("served", "wait_sum_s", "latency_sum_s")
_LATENCY_GAUGES = ("wait_max_s", "latency_max_s")
_QUEUE_STAT_FIELDS = (
    "depth",
    "enqueued",
    "depth_max",
    "depth_sum",
    "depth_samples",
    "micro_batches",
    "micro_batch_requests",
    "micro_batch_max",
    "empty_drains",
)


class ServingLoop:
    """Queue, micro-batch and answer planner requests asynchronously.

    Parameters
    ----------
    planner:
        Anything exposing ``plan_for_requests`` — in practice a fitted
        :class:`~repro.core.beam.BeamSearchPlanner`.
    num_queues:
        Worker-shard request queues to route across.  ``None`` follows the
        planner's ``num_workers``, so the serving partition matches the
        planning partition (a queue's drain thread re-enters the planner,
        which may sub-partition replans across its own worker shards).
    max_queue_depth / admission_policy / drain_deadline:
        Admission-control knobs (see :mod:`repro.serve.config` for the
        ``REPRO_*`` environment defaults): per-shard queue bound, ``block``
        or ``reject`` on a full queue, and the seconds a drain holds the
        queue open after the first enqueue to widen the micro-batch.
    admission_scope:
        Label stamped on this loop's admission counters and back-pressure
        errors (the replica set names each loop ``replica-<id>``, so depth
        accounting stays attributable per replica in fleet-wide stats).
    tracer:
        A :class:`~repro.obs.trace.Tracer` to begin per-request traces
        with.  Defaults to the disabled :data:`~repro.obs.trace.NULL_TRACER`
        — one boolean check per request, no allocation.
    """

    def __init__(
        self,
        planner,
        num_queues: "int | None" = None,
        max_queue_depth: "int | None" = None,
        admission_policy: "str | None" = None,
        drain_deadline: "float | None" = None,
        admission_scope: "str | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if not hasattr(planner, "plan_for_requests"):
            raise ConfigurationError(
                "ServingLoop needs a planner with plan_for_requests() "
                "(e.g. a fitted BeamSearchPlanner)"
            )
        if num_queues is None:
            num_queues = int(getattr(planner, "num_workers", 1) or 1)
        if not isinstance(num_queues, int) or num_queues < 1:
            raise ConfigurationError(
                f"num_queues must be a positive integer, got {num_queues!r}"
            )
        self.planner = planner
        self.num_queues = num_queues
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # One registry namespace for the whole loop: admission, every shard
        # queue and the latency accounting hang under it, so stats() is one
        # atomic snapshot of the subtree.
        registry = get_registry()
        self.metrics_scope = registry.scope("serve.loop")
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            policy=admission_policy,
            drain_deadline=drain_deadline,
            scope=admission_scope,
            metrics_scope=f"{self.metrics_scope}.admission",
        )
        self.queues = [
            RequestQueue(
                shard, self.admission, metrics_scope=f"{self.metrics_scope}.queue{shard}"
            )
            for shard in range(num_queues)
        ]
        self._threads: "list[threading.Thread]" = []
        self._state_lock = threading.Lock()
        self._started = False
        self._closed = False
        # In-loop latency accounting (enqueue -> response ready): sums and
        # maxima accumulate per drained batch in ONE registry-lock
        # acquisition; full distributions land in the two histograms (the
        # traffic driver keeps every sample for percentile reports).
        self._latency = MetricGroup(
            registry,
            f"{self.metrics_scope}.latency",
            counters=_LATENCY_COUNTERS,
            gauges=_LATENCY_GAUGES,
        )
        self._latency_hist = registry.histogram(f"{self.metrics_scope}.latency.latency_ms")
        self._wait_hist = registry.histogram(f"{self.metrics_scope}.latency.wait_ms")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingLoop":
        """Spawn one drain thread per shard queue (idempotent)."""
        with self._state_lock:
            if self._closed:
                raise ServingError("cannot restart a closed serving loop")
            if self._started:
                return self
            self._started = True
            for queue in self.queues:
                thread = threading.Thread(
                    target=self._drain_worker,
                    args=(queue,),
                    name=f"repro-serve-drain-{queue.shard}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def close(self) -> None:
        """Stop admissions, drain every queue dry, join the drain threads.

        Idempotent.  On a loop that was never started the pending requests
        are served inline, so accepted futures always resolve.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        for queue in self.queues:
            queue.close()
        if started:
            for thread in self._threads:
                thread.join()
        else:
            for queue in self.queues:
                self._serve_batch(queue.pop_all(), shard=queue.shard)

    def __enter__(self) -> "ServingLoop":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        kind: str,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        """Route one request to its shard queue; returns its future.

        Raises :class:`~repro.utils.exceptions.QueueFullError` when the
        shard queue is full under the ``reject`` policy (the ``block``
        policy waits for a drain instead), and
        :class:`~repro.utils.exceptions.ServingError` after :meth:`close`.
        """
        return self.enqueue(
            ServeRequest.create(
                kind,
                history,
                objective,
                path_so_far=path_so_far,
                user_index=user_index,
                max_length=max_length,
            )
        )

    def enqueue(self, request: ServeRequest) -> Future:
        """Admit a pre-built request envelope (the traffic driver's entry
        point — it keeps the envelope to read ``completed_at`` afterwards)."""
        shard = shard_index(request.routing_key(), self.num_queues)
        # Hot-path guard: with tracing disabled this is one attribute check
        # and no allocation (the overhead contract's structural no-op).
        if self.tracer.enabled and request.trace is None:
            request.trace = self.tracer.begin(
                request.routing_key(), kind=request.kind
            )
        trace = request.trace
        if trace is not None:
            admit_start = time.perf_counter()
            self.queues[shard].put(request)
            trace.span(
                "admission",
                admit_start,
                time.perf_counter(),
                shard=shard,
                replica=request.replica_index,
            )
        else:
            self.queues[shard].put(request)
        return request.future

    def submit_next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
    ) -> Future:
        """Async ``next_step``: the future resolves to an item id or ``None``."""
        return self.submit(
            "next_step", history, objective, path_so_far=path_so_far, user_index=user_index
        )

    def submit_plan_paths(
        self,
        history: Sequence[int],
        objective: int,
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        """Async ``plan_path``: the future resolves to a full planned path."""
        return self.submit(
            "plan_paths", history, objective, user_index=user_index, max_length=max_length
        )

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #
    def _drain_worker(self, queue: RequestQueue) -> None:
        while True:
            batch = queue.collect()
            if batch is None:
                return
            self._serve_batch(batch, shard=queue.shard)

    def _serve_batch(self, batch: "list[ServeRequest]", shard: "int | None" = None) -> None:
        """Answer one micro-batch; an empty drain is a no-op by contract."""
        if not batch:
            return
        drain_started = time.perf_counter()
        # Read the planner's generation tag ONCE, before planning: a pinned
        # planner raises on any mid-batch generation change, so this single
        # read is the generation every answer in the batch was computed at —
        # stamping it batch-wide is what makes a torn micro-batch impossible.
        generation = getattr(self.planner, "serving_generation", None)
        batch_tag = next(_BATCH_TAGS)
        # The sink carries the batch's traces to the planner/executor layers
        # below (beam depths, shard scatter/gather, cache decisions); None
        # whenever no request in the batch is traced, making use_sink a pass-
        # through.
        sink = None
        if self.tracer.enabled:
            candidate = BatchSink([request.trace for request in batch])
            if candidate:
                sink = candidate
        try:
            with use_sink(sink):
                answers = self.planner.plan_for_requests(
                    [request.plan_tuple() for request in batch]
                )
        except BaseException as exc:  # noqa: BLE001 - delivered via the futures
            logger.exception(
                "serving drain failed for %d request(s) on shard %d",
                len(batch),
                self._shard_of(batch[0]) if shard is None else shard,
            )
            for request in batch:
                self.tracer.finish(request.trace)
                request.future.set_exception(exc)
            return
        done = time.perf_counter()
        # completed_at (and the generation/tag stamps) are written BEFORE the
        # future resolves, so any thread woken by future.result() reads a
        # complete envelope; the latency sums accumulate locally and land in
        # the registry in ONE locked record call per batch.
        wait_sum = 0.0
        wait_max = 0.0
        latency_sum = 0.0
        latency_max = 0.0
        for request in batch:
            request.drain_started_at = drain_started
            request.completed_at = done
            request.served_generation = generation
            request.batch_tag = batch_tag
            wait = drain_started - request.enqueued_at
            latency = done - request.enqueued_at
            wait_sum += wait
            latency_sum += latency
            if wait > wait_max:
                wait_max = wait
            if latency > latency_max:
                latency_max = latency
        self._latency.record(
            add={
                "served": len(batch),
                "wait_sum_s": wait_sum,
                "latency_sum_s": latency_sum,
            },
            max_={"wait_max_s": wait_max, "latency_max_s": latency_max},
        )
        self._latency_hist.observe_many(
            1000.0 * (done - request.enqueued_at) for request in batch
        )
        self._wait_hist.observe_many(
            1000.0 * (drain_started - request.enqueued_at) for request in batch
        )
        if sink is not None:
            for request in batch:
                trace = request.trace
                if trace is not None:
                    trace.span("queue.wait", request.enqueued_at, drain_started, shard=shard)
                    trace.span(
                        "serve.drain",
                        drain_started,
                        done,
                        shard=shard,
                        batch_tag=batch_tag,
                        batch_size=len(batch),
                        served_generation=generation,
                    )
        for request, answer in zip(batch, answers):
            self.tracer.finish(request.trace)
            request.future.set_result(answer)

    def _shard_of(self, request: ServeRequest) -> int:
        return shard_index(request.routing_key(), self.num_queues)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def current_depth(self) -> int:
        """Requests queued right now across every shard queue (a point-in-time
        load signal; the replica dispatcher's EWMA feeds on the in-flight
        count, which additionally covers batches mid-plan)."""
        return sum(len(queue) for queue in self.queues)

    def stats(self) -> dict:
        """Queue depth, micro-batch, admission and in-loop latency counters.

        The whole report comes from ONE atomic registry snapshot of this
        loop's namespace — admission, every queue and the latency sums are
        mutually consistent, with no window for a drain thread to slip an
        update between two reads.
        """
        snapshot = get_registry().snapshot(self.metrics_scope)
        flat = dict(snapshot["counters"])
        flat.update(snapshot["gauges"])

        per_queue = []
        for queue in self.queues:
            values = {
                name: flat.get(f"{queue.metrics_scope}.{name}", 0)
                for name in _QUEUE_STAT_FIELDS
            }
            per_queue.append(RequestQueue._shape_stats(queue.shard, values))

        admission = {
            name: flat.get(f"{self.metrics_scope}.admission.{name}", 0)
            for name in ("admitted", "rejected", "blocked")
        }
        if self.admission.scope is not None:
            admission["scope"] = self.admission.scope

        latency_scope = f"{self.metrics_scope}.latency"
        served = flat.get(f"{latency_scope}.served", 0)
        wait_sum = flat.get(f"{latency_scope}.wait_sum_s", 0.0)
        latency_sum = flat.get(f"{latency_scope}.latency_sum_s", 0.0)
        latency = {
            "mean_ms": round(1000.0 * latency_sum / served, 3) if served else 0.0,
            "max_ms": round(1000.0 * flat.get(f"{latency_scope}.latency_max_s", 0.0), 3),
            "queue_wait_mean_ms": (
                round(1000.0 * wait_sum / served, 3) if served else 0.0
            ),
            "queue_wait_max_ms": round(
                1000.0 * flat.get(f"{latency_scope}.wait_max_s", 0.0), 3
            ),
        }

        depth_samples = sum(q["depth_samples"] for q in per_queue)
        batches = sum(q["micro_batches"] for q in per_queue)
        batch_requests = sum(q["micro_batch_requests"] for q in per_queue)
        return {
            "num_queues": self.num_queues,
            **self.admission.describe(),
            "admission": admission,
            "served": served,
            "queue_depth": {
                "max": max((q["depth_max"] for q in per_queue), default=0),
                "mean": (
                    round(sum(q["depth_sum"] for q in per_queue) / depth_samples, 3)
                    if depth_samples
                    else 0.0
                ),
            },
            "micro_batches": {
                "count": batches,
                "mean_size": round(batch_requests / batches, 3) if batches else 0.0,
                "max_size": max((q["micro_batch_max"] for q in per_queue), default=0),
            },
            "service_latency": latency,
            "per_queue": per_queue,
        }
