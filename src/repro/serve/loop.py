"""The asynchronous serving front-end over the sharded planner.

:class:`ServingLoop` is the boundary the ROADMAP's async-serving rung calls
for: callers submit ``next_step`` / ``plan_paths`` requests and get
:class:`concurrent.futures.Future` values back immediately; behind the
boundary each request hash-routes to its worker shard's bounded
:class:`~repro.serve.queue.RequestQueue`
(:func:`~repro.shard.partition.stable_hash` over the ``(history,
objective, user)`` context — the same routing the sharded executor and the
sharded plan caches use), and one drain thread per shard answers everything
pending as a single micro-batch through
:meth:`~repro.core.beam.BeamSearchPlanner.plan_for_requests`.  The
micro-batch fuses all replanning into lockstep beam calls, so the
token-work win measured on pre-assembled batches (PR 1–3) now applies to
asynchronously arriving traffic.

Exactness contract: responses are bit-identical to calling ``next_step`` /
``plan_path`` sequentially in submission order, for every planner backend
and worker count — micro-batching and queueing change *when* work happens,
never *what* is answered.  (The one caveat is inherited from
``plan_for_requests``: a serving cache small enough to evict mid-batch may
reorder evictions; the default sizes never do.)

Observability: the loop owns one registry namespace (``serve.loop.<n>``)
covering its admission counters, every shard queue's depth/batch counters
and the in-loop latency accounting, so :meth:`stats` is ONE atomic registry
snapshot — no more composing independently-locked reads.  With a
:class:`~repro.obs.trace.Tracer` injected and enabled, each admitted
request carries a :class:`~repro.obs.trace.Trace` recording admission,
queue wait and drain spans here, plus the planner/executor spans recorded
through the drain thread's :class:`~repro.obs.trace.BatchSink`; disabled
tracing (the default) allocates nothing on this path.

Shutdown is graceful: :meth:`close` stops admissions, drains every queue
dry, and joins the drain threads — no accepted request is ever dropped.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Sequence

from repro.config import resolve_tenants
from repro.obs.registry import MetricGroup, get_registry
from repro.obs.trace import NULL_TRACER, BatchSink, Tracer, use_sink
from repro.serve.admission import AdmissionController
from repro.serve.api import Response, TypedServingSurface, warn_positional_submit
from repro.serve.queue import RequestQueue
from repro.serve.request import ServeRequest
from repro.shard.partition import shard_index
from repro.utils.exceptions import ConfigurationError, ServingError

if TYPE_CHECKING:  # pragma: no cover - import cycle: repro.tenant imports serve
    from repro.tenant.registry import TenantRegistry

__all__ = ["ServingLoop"]

logger = logging.getLogger(__name__)

#: Process-wide micro-batch tags: unique across every loop (and therefore
#: every replica), so grouping answered requests by tag recovers the exact
#: drain batches — the refit race tests rely on tags never colliding
#: between an old-generation and a new-generation replica's drains.
_BATCH_TAGS = itertools.count(1)

_LATENCY_COUNTERS = ("served", "wait_sum_s", "latency_sum_s")
_LATENCY_GAUGES = ("wait_max_s", "latency_max_s")
_QUEUE_STAT_FIELDS = (
    "depth",
    "enqueued",
    "depth_max",
    "depth_sum",
    "depth_samples",
    "micro_batches",
    "micro_batch_requests",
    "micro_batch_max",
    "empty_drains",
)


class ServingLoop(TypedServingSurface):
    """Queue, micro-batch and answer planner requests asynchronously.

    Parameters
    ----------
    planner:
        Anything exposing ``plan_for_requests`` — in practice a fitted
        :class:`~repro.core.beam.BeamSearchPlanner`.
    num_queues:
        Worker-shard request queues to route across.  ``None`` follows the
        planner's ``num_workers``, so the serving partition matches the
        planning partition (a queue's drain thread re-enters the planner,
        which may sub-partition replans across its own worker shards).
    max_queue_depth / admission_policy / drain_deadline:
        Admission-control knobs (see :mod:`repro.serve.config` for the
        ``REPRO_*`` environment defaults): per-shard queue bound, ``block``
        or ``reject`` on a full queue, and the seconds a drain holds the
        queue open after the first enqueue to widen the micro-batch.
    admission_scope:
        Label stamped on this loop's admission counters and back-pressure
        errors (the replica set names each loop ``replica-<id>``, so depth
        accounting stays attributable per replica in fleet-wide stats).
    tracer:
        A :class:`~repro.obs.trace.Tracer` to begin per-request traces
        with.  Defaults to the disabled :data:`~repro.obs.trace.NULL_TRACER`
        — one boolean check per request, no allocation.
    tenants:
        A :class:`~repro.tenant.registry.TenantRegistry` turning this loop
        into a multi-tenant surface: drained micro-batches group per
        tenant, each tenant's admission scope and generation stamps apply
        independently, and untenanted requests are assigned
        deterministically.  ``None`` (the default) serves the single
        ``planner``; when ``REPRO_TENANTS`` asks for more than one tenant,
        a degenerate registry sharing ``planner`` is synthesized so the
        tier-1 leg exercises the grouped drain path on every workload.
    """

    def __init__(
        self,
        planner,
        num_queues: "int | None" = None,
        max_queue_depth: "int | None" = None,
        admission_policy: "str | None" = None,
        drain_deadline: "float | None" = None,
        admission_scope: "str | None" = None,
        tracer: "Tracer | None" = None,
        tenants: "TenantRegistry | None" = None,
    ) -> None:
        if tenants is None and hasattr(planner, "plan_for_requests"):
            default_tenants = resolve_tenants(None)
            if default_tenants > 1:
                from repro.tenant.registry import TenantRegistry

                tenants = TenantRegistry.uniform(planner, default_tenants)
        if tenants is None and not hasattr(planner, "plan_for_requests"):
            raise ConfigurationError(
                "ServingLoop needs a planner with plan_for_requests() "
                "(e.g. a fitted BeamSearchPlanner) or a TenantRegistry"
            )
        self.tenants = tenants
        if num_queues is None:
            num_queues = int(getattr(planner, "num_workers", 1) or 1)
        if not isinstance(num_queues, int) or num_queues < 1:
            raise ConfigurationError(
                f"num_queues must be a positive integer, got {num_queues!r}"
            )
        self.planner = planner
        self.num_queues = num_queues
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # One registry namespace for the whole loop: admission, every shard
        # queue and the latency accounting hang under it, so stats() is one
        # atomic snapshot of the subtree.
        registry = get_registry()
        self.metrics_scope = registry.scope("serve.loop")
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            policy=admission_policy,
            drain_deadline=drain_deadline,
            scope=admission_scope,
            metrics_scope=f"{self.metrics_scope}.admission",
        )
        self.queues = [
            RequestQueue(
                shard, self.admission, metrics_scope=f"{self.metrics_scope}.queue{shard}"
            )
            for shard in range(num_queues)
        ]
        self._threads: "list[threading.Thread]" = []
        self._state_lock = threading.Lock()
        self._started = False
        self._closed = False
        # In-loop latency accounting (enqueue -> response ready): sums and
        # maxima accumulate per drained batch in ONE registry-lock
        # acquisition; full distributions land in the two histograms (the
        # traffic driver keeps every sample for percentile reports).
        self._latency = MetricGroup(
            registry,
            f"{self.metrics_scope}.latency",
            counters=_LATENCY_COUNTERS,
            gauges=_LATENCY_GAUGES,
        )
        self._latency_hist = registry.histogram(f"{self.metrics_scope}.latency.latency_ms")
        self._wait_hist = registry.histogram(f"{self.metrics_scope}.latency.wait_ms")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingLoop":
        """Spawn one drain thread per shard queue (idempotent)."""
        with self._state_lock:
            if self._closed:
                raise ServingError("cannot restart a closed serving loop")
            if self._started:
                return self
            self._started = True
            for queue in self.queues:
                thread = threading.Thread(
                    target=self._drain_worker,
                    args=(queue,),
                    name=f"repro-serve-drain-{queue.shard}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def close(self) -> None:
        """Stop admissions, drain every queue dry, join the drain threads.

        Idempotent.  On a loop that was never started the pending requests
        are served inline, so accepted futures always resolve.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        for queue in self.queues:
            queue.close()
        if started:
            for thread in self._threads:
                thread.join()
        else:
            for queue in self.queues:
                self._serve_batch(queue.pop_all(), shard=queue.shard)

    def __enter__(self) -> "ServingLoop":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        kind: str,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        """Route one request to its shard queue; returns its future.

        .. deprecated:: this positional path remains for one release as a
           shim over the typed API — construct a
           :class:`~repro.serve.api.Request` and call :meth:`serve`
           instead (the future then resolves to a typed
           :class:`~repro.serve.api.Response` rather than a bare answer).

        Raises :class:`~repro.utils.exceptions.QueueFullError` when the
        shard queue is full under the ``reject`` policy (the ``block``
        policy waits for a drain instead), and
        :class:`~repro.utils.exceptions.ServingError` after :meth:`close`.
        """
        warn_positional_submit()
        return self.enqueue(
            ServeRequest.create(
                kind,
                history,
                objective,
                path_so_far=path_so_far,
                user_index=user_index,
                max_length=max_length,
            )
        )

    def enqueue(self, request: ServeRequest) -> Future:
        """Admit a pre-built request envelope (the traffic driver's entry
        point — it keeps the envelope to read ``completed_at`` afterwards)."""
        binding = None
        if self.tenants is not None:
            # Assigns a tenant to untenanted requests BEFORE the routing key
            # is hashed, so a tenant's traffic shards within its own key space.
            binding = self.tenants.resolve(request)
        if request.deadline is not None:
            now = time.perf_counter()
            if now > request.deadline:
                admission = binding.admission if (
                    binding is not None and binding.admission is not None
                ) else self.admission
                admission.on_expired(now - request.deadline)
        shard = shard_index(request.routing_key(), self.num_queues)
        # Hot-path guard: with tracing disabled this is one attribute check
        # and no allocation (the overhead contract's structural no-op).
        if self.tracer.enabled and request.trace is None:
            if request.tenant is not None:
                request.trace = self.tracer.begin(
                    request.routing_key(), kind=request.kind, tenant=request.tenant
                )
            else:
                request.trace = self.tracer.begin(
                    request.routing_key(), kind=request.kind
                )
        if binding is not None:
            binding.admit(shard)
        trace = request.trace
        try:
            if trace is not None:
                admit_start = time.perf_counter()
                self.queues[shard].put(request)
                trace.span(
                    "admission",
                    admit_start,
                    time.perf_counter(),
                    shard=shard,
                    replica=request.replica_index,
                )
            else:
                self.queues[shard].put(request)
        except BaseException:
            # The queue refused the envelope (reject policy / closed loop):
            # its future will never resolve, so hand the tenant slot back
            # here instead of via the completion callback below.
            if binding is not None:
                binding.release()
            raise
        if binding is not None:
            # Safe after put(): a callback added to an already-resolved
            # future fires immediately, so the slot is never leaked even if
            # the drain beat us here.
            request.future.add_done_callback(lambda _future, b=binding: b.release())
        return request.future

    def submit_next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
    ) -> Future:
        """Async ``next_step``: the future resolves to an item id or ``None``."""
        return self.submit(
            "next_step", history, objective, path_so_far=path_so_far, user_index=user_index
        )

    def submit_plan_paths(
        self,
        history: Sequence[int],
        objective: int,
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        """Async ``plan_path``: the future resolves to a full planned path."""
        return self.submit(
            "plan_paths", history, objective, user_index=user_index, max_length=max_length
        )

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #
    def _drain_worker(self, queue: RequestQueue) -> None:
        while True:
            batch = queue.collect()
            if batch is None:
                return
            self._serve_batch(batch, shard=queue.shard)

    def _serve_batch(self, batch: "list[ServeRequest]", shard: "int | None" = None) -> None:
        """Answer one micro-batch; an empty drain is a no-op by contract."""
        if not batch:
            return
        drain_started = time.perf_counter()
        batch_tag = next(_BATCH_TAGS)
        # The sink carries the batch's traces to the planner/executor layers
        # below (beam depths, shard scatter/gather, cache decisions); None
        # whenever no request in the batch is traced, making use_sink a pass-
        # through.
        sink = None
        if self.tracer.enabled:
            candidate = BatchSink([request.trace for request in batch])
            if candidate:
                sink = candidate
        failures: "dict[int, BaseException]" = {}
        generations: "dict | None" = None
        if self.tenants is None:
            # Read the planner's generation tag ONCE, before planning: a
            # pinned planner raises on any mid-batch generation change, so
            # this single read is the generation every answer in the batch
            # was computed at — stamping it batch-wide is what makes a torn
            # micro-batch impossible.
            generation = getattr(self.planner, "serving_generation", None)
            try:
                with use_sink(sink):
                    answers = self.planner.plan_for_requests(
                        [request.plan_tuple() for request in batch]
                    )
            except BaseException as exc:  # noqa: BLE001 - delivered via the futures
                answers = [None] * len(batch)
                failures = {index: exc for index in range(len(batch))}
        else:
            # Tenant mode: the registry splits the batch per tenant, reads
            # each tenant's generation before its own planning call (the
            # torn-batch discipline, per tenant), and confines a tenant's
            # planning failure to that tenant's indices — the isolation
            # boundary a shared drain thread must preserve.  plan_batch
            # scopes its own per-tenant trace sinks, so a tenant's spans
            # never land on a drain neighbour's trace.
            generation = None
            answers, generations, failures = self.tenants.plan_batch(batch)
        if failures:
            logger.error(
                "serving drain failed for %d of %d request(s) on shard %s",
                len(failures),
                len(batch),
                self._shard_of(batch[0]) if shard is None else shard,
                exc_info=next(iter(failures.values())),
            )
        done = time.perf_counter()
        # completed_at (and the generation/tag stamps) are written via
        # Response.stamp BEFORE the future resolves, so any thread woken by
        # future.result() reads a complete envelope; the latency sums
        # accumulate locally and land in the registry in ONE locked record
        # call per batch.
        wait_sum = 0.0
        wait_max = 0.0
        latency_sum = 0.0
        latency_max = 0.0
        per_tenant: "dict[str, list[float]]" = {}
        for index, request in enumerate(batch):
            if index in failures:
                continue
            Response.stamp(
                request,
                completed_at=done,
                drain_started_at=drain_started,
                served_generation=(
                    generation if generations is None else generations.get(request.tenant)
                ),
                batch_tag=batch_tag,
            )
            wait = drain_started - request.enqueued_at
            latency = done - request.enqueued_at
            wait_sum += wait
            latency_sum += latency
            if wait > wait_max:
                wait_max = wait
            if latency > latency_max:
                latency_max = latency
            if generations is not None:
                bucket = per_tenant.setdefault(request.tenant, [0, 0.0, 0.0, 0.0, 0.0])
                bucket[0] += 1
                bucket[1] += wait
                bucket[2] = max(bucket[2], wait)
                bucket[3] += latency
                bucket[4] = max(bucket[4], latency)
        served = len(batch) - len(failures)
        if served:
            self._latency.record(
                add={
                    "served": served,
                    "wait_sum_s": wait_sum,
                    "latency_sum_s": latency_sum,
                },
                max_={"wait_max_s": wait_max, "latency_max_s": latency_max},
            )
            self._latency_hist.observe_many(
                1000.0 * (done - request.enqueued_at)
                for index, request in enumerate(batch)
                if index not in failures
            )
            self._wait_hist.observe_many(
                1000.0 * (drain_started - request.enqueued_at)
                for index, request in enumerate(batch)
                if index not in failures
            )
        if self.tenants is not None:
            failed_by_tenant: "dict[str, int]" = {}
            for index in failures:
                tenant = batch[index].tenant
                failed_by_tenant[tenant] = failed_by_tenant.get(tenant, 0) + 1
            for tenant in set(per_tenant) | set(failed_by_tenant):
                counts = per_tenant.get(tenant, [0, 0.0, 0.0, 0.0, 0.0])
                self.tenants.get(tenant).observe(
                    served=counts[0],
                    failed=failed_by_tenant.get(tenant, 0),
                    wait_sum=counts[1],
                    wait_max=counts[2],
                    latency_sum=counts[3],
                    latency_max=counts[4],
                )
        if sink is not None:
            for index, request in enumerate(batch):
                trace = request.trace
                if trace is not None and index not in failures:
                    trace.span("queue.wait", request.enqueued_at, drain_started, shard=shard)
                    trace.span(
                        "serve.drain",
                        drain_started,
                        done,
                        shard=shard,
                        batch_tag=batch_tag,
                        batch_size=len(batch),
                        served_generation=request.served_generation,
                        **({"tenant": request.tenant} if request.tenant is not None else {}),
                    )
        for index, (request, answer) in enumerate(zip(batch, answers)):
            self.tracer.finish(request.trace)
            exc = failures.get(index)
            if exc is not None:
                request.future.set_exception(exc)
            else:
                request.future.set_result(answer)

    def _shard_of(self, request: ServeRequest) -> int:
        return shard_index(request.routing_key(), self.num_queues)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def current_depth(self) -> int:
        """Requests queued right now across every shard queue (a point-in-time
        load signal; the replica dispatcher's EWMA feeds on the in-flight
        count, which additionally covers batches mid-plan)."""
        return sum(len(queue) for queue in self.queues)

    def stats(self) -> dict:
        """Queue depth, micro-batch, admission and in-loop latency counters.

        The whole report comes from ONE atomic registry snapshot of this
        loop's namespace — admission, every queue and the latency sums are
        mutually consistent, with no window for a drain thread to slip an
        update between two reads.
        """
        snapshot = get_registry().snapshot(self.metrics_scope)
        flat = dict(snapshot["counters"])
        flat.update(snapshot["gauges"])

        per_queue = []
        for queue in self.queues:
            values = {
                name: flat.get(f"{queue.metrics_scope}.{name}", 0)
                for name in _QUEUE_STAT_FIELDS
            }
            per_queue.append(RequestQueue._shape_stats(queue.shard, values))

        admission = {
            name: flat.get(f"{self.metrics_scope}.admission.{name}", 0)
            for name in ("admitted", "rejected", "blocked")
        }
        if self.admission.scope is not None:
            admission["scope"] = self.admission.scope

        latency_scope = f"{self.metrics_scope}.latency"
        served = flat.get(f"{latency_scope}.served", 0)
        wait_sum = flat.get(f"{latency_scope}.wait_sum_s", 0.0)
        latency_sum = flat.get(f"{latency_scope}.latency_sum_s", 0.0)
        latency = {
            "mean_ms": round(1000.0 * latency_sum / served, 3) if served else 0.0,
            "max_ms": round(1000.0 * flat.get(f"{latency_scope}.latency_max_s", 0.0), 3),
            "queue_wait_mean_ms": (
                round(1000.0 * wait_sum / served, 3) if served else 0.0
            ),
            "queue_wait_max_ms": round(
                1000.0 * flat.get(f"{latency_scope}.wait_max_s", 0.0), 3
            ),
        }

        depth_samples = sum(q["depth_samples"] for q in per_queue)
        batches = sum(q["micro_batches"] for q in per_queue)
        batch_requests = sum(q["micro_batch_requests"] for q in per_queue)
        tenants = {} if self.tenants is None else {"tenants": self.tenants.stats()}
        return {
            "num_queues": self.num_queues,
            **tenants,
            **self.admission.describe(),
            "admission": admission,
            "served": served,
            "queue_depth": {
                "max": max((q["depth_max"] for q in per_queue), default=0),
                "mean": (
                    round(sum(q["depth_sum"] for q in per_queue) / depth_samples, 3)
                    if depth_samples
                    else 0.0
                ),
            },
            "micro_batches": {
                "count": batches,
                "mean_size": round(batch_requests / batches, 3) if batches else 0.0,
                "max_size": max((q["micro_batch_max"] for q in per_queue), default=0),
            },
            "service_latency": latency,
            "per_queue": per_queue,
        }
