"""Serving request envelopes.

A :class:`ServeRequest` is one positional serving call frozen into a
queueable envelope: the planning context, the tenant/deadline envelope
fields, the :class:`concurrent.futures.Future` the caller holds, and the
timestamps the latency accounting reads.  Four kinds exist — the
``next_step`` / ``plan_paths`` planning calls of PRs 4–9 plus the
model-zoo kinds ``rank`` (top-k next-item ranking; the objective slot
carries ``k`` and the path slot the exclusion set) and ``kg_path``
(knowledge-graph-constrained source→target item path).  Typed
construction lives in :mod:`repro.serve.api`; the envelope knows two
projections of itself:

* :meth:`ServeRequest.routing_key` — the ``(history, objective, user)``
  context key the serving loop hashes to pick the worker-shard queue
  (:func:`repro.shard.partition.stable_hash` under the hood, so routing is
  identical across interpreters and matches the planner's own sharding).
  Tenanted requests prefix the tenant id, so one tenant's traffic forms
  its own stable routing-key space for the dispatcher.
* :meth:`ServeRequest.plan_tuple` — the positional tuple
  :meth:`repro.core.beam.BeamSearchPlanner.plan_for_requests` (and the
  tenant registry's kind adapters) consume when a drain micro-batches the
  queue.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.shard.partition import context_key
from repro.utils.exceptions import ConfigurationError

__all__ = ["ServeRequest", "REQUEST_KINDS", "KIND_ALIASES"]

REQUEST_KINDS = ("next_step", "plan_paths", "rank", "kg_path")

#: accepted spellings that normalise onto a canonical kind (``plan_path``
#: is the ISSUE-facing singular of the batch-shaped ``plan_paths``)
KIND_ALIASES = {"plan_path": "plan_paths"}


@dataclass
class ServeRequest:
    """One queued serving request plus its future and latency timestamps."""

    kind: str
    history: tuple[int, ...]
    objective: int
    path_so_far: tuple[int, ...] = ()
    user_index: "int | None" = None
    max_length: "int | None" = None
    #: tenant id this request is served under (``None`` = the
    #: single-tenant surface); selects the tenant's model, objective policy
    #: and admission scope, and prefixes the routing key
    tenant: "str | None" = None
    #: optional absolute ``time.perf_counter()`` instant after which the
    #: caller no longer wants the answer; admission rejects expired
    #: requests instead of spending a drain slot on them.  Deadlines are
    #: caller-clock instants and never cross a process boundary.
    deadline: "float | None" = None
    future: Future = field(default_factory=Future)
    #: ``time.perf_counter()`` at queue admission — stamped by
    #: :meth:`repro.serve.queue.RequestQueue.put` once space exists, NOT at
    #: envelope creation: a producer blocked by back-pressure must not
    #: pre-age the drain-deadline window or count its admission wait as
    #: queue wait.
    enqueued_at: float = 0.0
    #: ``time.perf_counter()`` when the drain produced the answer — written
    #: via :meth:`repro.serve.api.Response.stamp` BEFORE the future
    #: resolves, so any thread woken by ``future.result()`` reads a
    #: complete timestamp (the traffic driver's per-request latency samples
    #: rely on this ordering).
    completed_at: "float | None" = None
    #: ``time.perf_counter()`` when the drain that answered this request
    #: began — stamped next to :attr:`completed_at`.
    #: ``completed_at - drain_started_at`` is pure service time and
    #: ``drain_started_at - enqueued_at`` pure queue wait, both durations
    #: within ONE process's clock, which is what the distributed transport
    #: ships across the wire (perf_counter epochs differ per process, so
    #: raw timestamps must never cross a process boundary).
    drain_started_at: "float | None" = None
    #: Worker-measured queue-wait / service durations (seconds), set by
    #: :class:`~repro.distributed.remote.RemoteReplicaSet` on requests that
    #: were served in another process.  ``None`` for in-process serving —
    #: there the caller derives both from the timestamps directly.
    remote_queue_wait_s: "float | None" = None
    remote_service_s: "float | None" = None
    #: The ``serving_generation`` of the planner that answered — read ONCE
    #: per drained micro-batch and stamped on every request of the batch, so
    #: a micro-batch can never report a torn (mixed-generation) answer set.
    #: ``None`` until answered, and for planners that expose no generation.
    served_generation: "int | None" = None
    #: Process-wide id of the drained micro-batch this request was answered
    #: in (stamped with :attr:`served_generation`); the refit race tests
    #: group responses by it to assert the one-generation-per-batch
    #: invariant across a hot model swap.
    batch_tag: "int | None" = None
    #: Replica that served this request, when routed through a
    #: :class:`~repro.replica.ReplicaSet` (``None`` under a plain loop).
    replica_index: "int | None" = None
    #: The request's :class:`~repro.obs.trace.Trace`, begun by the serving
    #: loop at admission when its tracer is enabled and this request was
    #: sampled; ``None`` otherwise (the default — tracing is opt-in, and an
    #: untraced request never allocates a trace object).  Typed loosely so
    #: the envelope does not import the observability layer.
    trace: "object | None" = None

    @classmethod
    def create(
        cls,
        kind: str,
        history,
        objective,
        path_so_far=(),
        user_index: "int | None" = None,
        max_length: "int | None" = None,
        tenant: "str | None" = None,
        deadline: "float | None" = None,
    ) -> "ServeRequest":
        """Validate and freeze one request (the submit-side constructor)."""
        kind = KIND_ALIASES.get(kind, kind)
        if kind not in REQUEST_KINDS:
            raise ConfigurationError(
                f"request kind must be one of {', '.join(REQUEST_KINDS)}, got {kind!r}"
            )
        # max_length problems are rejected at admission rather than at drain
        # time: a poisoned request inside a micro-batch would otherwise fail
        # the whole batch's futures instead of just this caller.
        if kind == "next_step" and max_length is not None:
            raise ConfigurationError(
                "next_step requests cannot override max_length; the planner's "
                "constructor-level horizon keys the serving cache"
            )
        if kind in ("rank", "kg_path") and max_length is not None:
            raise ConfigurationError(
                f"{kind} requests do not take max_length (rank sizes its answer "
                "via k in the objective slot; kg_path returns the shortest path)"
            )
        if max_length is not None:
            if not isinstance(max_length, int) or isinstance(max_length, bool):
                raise ConfigurationError(
                    f"max_length must be an integer, got {max_length!r}"
                )
            if max_length <= 0:
                raise ConfigurationError(
                    f"max_length must be positive, got {max_length}"
                )
        history = tuple(int(item) for item in history)
        if kind == "rank" and int(objective) < 1:
            raise ConfigurationError(
                f"rank requests need k >= 1 in the objective slot, got {objective}"
            )
        if kind == "kg_path" and not history:
            raise ConfigurationError(
                "kg_path requests need a non-empty history (the last item is "
                "the path source)"
            )
        if deadline is not None:
            deadline = float(deadline)
        return cls(
            kind=kind,
            history=history,
            objective=int(objective),
            path_so_far=tuple(int(item) for item in (path_so_far or ())),
            user_index=None if user_index is None else int(user_index),
            max_length=max_length,
            tenant=None if tenant is None else str(tenant),
            deadline=deadline,
        )

    def routing_key(self) -> tuple:
        """The stable shard-routing key; tenanted requests prefix the tenant
        so each tenant owns a disjoint, stable routing-key space."""
        key = context_key(self.history, self.objective, self.user_index)
        if self.tenant is None:
            return key
        return (self.tenant,) + key

    def plan_tuple(self) -> tuple:
        """The positional request ``plan_for_requests`` consumes."""
        return (
            self.kind,
            self.history,
            self.objective,
            self.path_so_far,
            self.user_index,
            self.max_length,
        )
