"""Bounded per-shard request queues.

One :class:`RequestQueue` per worker shard holds the
:class:`~repro.serve.request.ServeRequest` envelopes routed to that shard,
FIFO.  The queue owns its condition variable, so producers (callers of
``ServingLoop.submit``) and the shard's drain thread synchronise without a
global lock — back-pressure on one shard never blocks another.

Draining semantics (:meth:`RequestQueue.collect`): the drain thread sleeps
until a request arrives, then holds the queue open for the admission
controller's ``drain_deadline`` (anchored at the FIRST enqueue, so the
window bounds worst-case queueing latency instead of sliding), then pops
everything as one micro-batch.  A queue at its depth bound drains
immediately — releasing back-pressure beats finishing the batching window.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.serve.admission import AdmissionController
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ServingError

__all__ = ["RequestQueue"]


class RequestQueue:
    """A bounded FIFO of serve requests for one worker shard."""

    def __init__(self, shard: int, admission: AdmissionController) -> None:
        self.shard = shard
        self.admission = admission
        self._cond = threading.Condition()
        self._items: "deque[ServeRequest]" = deque()
        self._closed = False
        # Stats (all mutated under the condition's lock).
        self._enqueued = 0
        self._depth_max = 0
        self._depth_sum = 0
        self._depth_samples = 0
        self._batches = 0
        self._batch_requests = 0
        self._batch_max = 0
        self._empty_drains = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    # ------------------------------------------------------------------ #
    def put(self, request: ServeRequest) -> None:
        """Admit one request, applying the back-pressure policy when full."""
        with self._cond:
            blocked = False
            while True:
                if self._closed:
                    raise ServingError(
                        f"shard {self.shard} request queue is closed; "
                        f"the serving loop no longer accepts requests"
                    )
                if len(self._items) < self.admission.max_queue_depth:
                    break
                # Raises QueueFullError under the reject policy; under the
                # block policy we sleep until a drain frees space (or the
                # queue closes), counting this request as blocked ONCE.
                self.admission.on_full(self.shard, len(self._items))
                if not blocked:
                    self.admission.on_blocked()
                    blocked = True
                self._cond.wait()
            # Admission is the queue-wait epoch: the drain-deadline window
            # and the queue-wait stats start here, not at envelope creation
            # (a back-pressure block is admission wait, not queue wait).
            request.enqueued_at = time.perf_counter()
            self._items.append(request)
            self.admission.on_admitted()
            depth = len(self._items)
            self._enqueued += 1
            self._depth_max = max(self._depth_max, depth)
            self._depth_sum += depth
            self._depth_samples += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    def collect(self) -> "list[ServeRequest] | None":
        """Block for the next micro-batch; ``None`` once closed and empty."""
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                return None  # closed and drained dry: the drain thread exits
            deadline = self._items[0].enqueued_at + self.admission.drain_deadline
            while (
                not self._closed
                and len(self._items) < self.admission.max_queue_depth
            ):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
                if not self._items:  # pragma: no cover - only collect() pops
                    break
            return self._pop_batch_locked()

    def pop_all(self) -> "list[ServeRequest]":
        """Pop whatever is queued right now without blocking (may be empty).

        The empty-drain entry point: callers draining opportunistically
        (tests, shutdown sweeps) get ``[]`` instead of a wait, and an empty
        batch is a no-op downstream (``plan_for_requests([]) == []``).
        """
        with self._cond:
            return self._pop_batch_locked()

    def _pop_batch_locked(self) -> "list[ServeRequest]":
        batch = list(self._items)
        self._items.clear()
        if batch:
            self._batches += 1
            self._batch_requests += len(batch)
            self._batch_max = max(self._batch_max, len(batch))
        else:
            self._empty_drains += 1
        self._cond.notify_all()  # wake producers blocked on back-pressure
        return batch

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop admissions; pending requests stay drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """One locked snapshot of this queue's depth and batch counters."""
        with self._cond:
            return {
                "shard": self.shard,
                "depth": len(self._items),
                "enqueued": self._enqueued,
                "depth_max": self._depth_max,
                "depth_sum": self._depth_sum,
                "depth_samples": self._depth_samples,
                "depth_mean": (
                    round(self._depth_sum / self._depth_samples, 3)
                    if self._depth_samples
                    else 0.0
                ),
                "micro_batches": self._batches,
                "micro_batch_requests": self._batch_requests,
                "micro_batch_max": self._batch_max,
                "micro_batch_mean": (
                    round(self._batch_requests / self._batches, 3)
                    if self._batches
                    else 0.0
                ),
                "empty_drains": self._empty_drains,
            }
