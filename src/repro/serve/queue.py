"""Bounded per-shard request queues.

One :class:`RequestQueue` per worker shard holds the
:class:`~repro.serve.request.ServeRequest` envelopes routed to that shard,
FIFO.  The queue owns its condition variable, so producers (callers of
``ServingLoop.submit``) and the shard's drain thread synchronise without a
global lock — back-pressure on one shard never blocks another.

Draining semantics (:meth:`RequestQueue.collect`): the drain thread sleeps
until a request arrives, then holds the queue open for the admission
controller's ``drain_deadline`` (anchored at the FIRST enqueue, so the
window bounds worst-case queueing latency instead of sliding), then pops
everything as one micro-batch.  A queue at its depth bound drains
immediately — releasing back-pressure beats finishing the batching window.

The depth/batch counters live in the process-wide metrics registry
(:mod:`repro.obs.registry`) under the queue's ``metrics_scope``; the
condition variable still serialises the FIFO itself, while each counter
update is one registry-lock acquisition so :meth:`stats` — and the owning
loop's whole-tree snapshot — read atomically.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.registry import MetricGroup, get_registry
from repro.serve.admission import AdmissionController
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ServingError

__all__ = ["RequestQueue"]


class RequestQueue:
    """A bounded FIFO of serve requests for one worker shard."""

    def __init__(
        self,
        shard: int,
        admission: AdmissionController,
        metrics_scope: "str | None" = None,
    ) -> None:
        self.shard = shard
        self.admission = admission
        self._cond = threading.Condition()
        self._items: "deque[ServeRequest]" = deque()
        self._closed = False
        registry = get_registry()
        self.metrics_scope = (
            metrics_scope if metrics_scope is not None else registry.scope("serve.queue")
        )
        self._metrics = MetricGroup(
            registry,
            self.metrics_scope,
            counters=(
                "enqueued",
                "depth_sum",
                "depth_samples",
                "micro_batches",
                "micro_batch_requests",
                "empty_drains",
            ),
            gauges=("depth", "depth_max", "micro_batch_max"),
        )

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    # ------------------------------------------------------------------ #
    def put(self, request: ServeRequest) -> None:
        """Admit one request, applying the back-pressure policy when full."""
        with self._cond:
            blocked = False
            while True:
                if self._closed:
                    raise ServingError(
                        f"shard {self.shard} request queue is closed; "
                        f"the serving loop no longer accepts requests"
                    )
                if len(self._items) < self.admission.max_queue_depth:
                    break
                # Raises QueueFullError under the reject policy; under the
                # block policy we sleep until a drain frees space (or the
                # queue closes), counting this request as blocked ONCE.
                self.admission.on_full(self.shard, len(self._items))
                if not blocked:
                    self.admission.on_blocked()
                    blocked = True
                self._cond.wait()
            # Admission is the queue-wait epoch: the drain-deadline window
            # and the queue-wait stats start here, not at envelope creation
            # (a back-pressure block is admission wait, not queue wait).
            request.enqueued_at = time.perf_counter()
            self._items.append(request)
            self.admission.on_admitted()
            depth = len(self._items)
            self._metrics.record(
                add={"enqueued": 1, "depth_sum": depth, "depth_samples": 1},
                max_={"depth_max": depth},
                set_={"depth": depth},
            )
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    def collect(self) -> "list[ServeRequest] | None":
        """Block for the next micro-batch; ``None`` once closed and empty."""
        with self._cond:
            while not self._items and not self._closed:
                self._cond.wait()
            if not self._items:
                return None  # closed and drained dry: the drain thread exits
            deadline = self._items[0].enqueued_at + self.admission.drain_deadline
            while (
                not self._closed
                and len(self._items) < self.admission.max_queue_depth
            ):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
                if not self._items:  # pragma: no cover - only collect() pops
                    break
            return self._pop_batch_locked()

    def pop_all(self) -> "list[ServeRequest]":
        """Pop whatever is queued right now without blocking (may be empty).

        The empty-drain entry point: callers draining opportunistically
        (tests, shutdown sweeps) get ``[]`` instead of a wait, and an empty
        batch is a no-op downstream (``plan_for_requests([]) == []``).
        """
        with self._cond:
            return self._pop_batch_locked()

    def _pop_batch_locked(self) -> "list[ServeRequest]":
        batch = list(self._items)
        self._items.clear()
        if batch:
            self._metrics.record(
                add={"micro_batches": 1, "micro_batch_requests": len(batch)},
                max_={"micro_batch_max": len(batch)},
                set_={"depth": 0},
            )
        else:
            self._metrics.record(add={"empty_drains": 1}, set_={"depth": 0})
        self._cond.notify_all()  # wake producers blocked on back-pressure
        return batch

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop admissions; pending requests stay drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """One atomic registry snapshot of this queue's counters."""
        values = self._metrics.values()
        return self._shape_stats(self.shard, values)

    @staticmethod
    def _shape_stats(shard: int, values: dict) -> dict:
        """Reshape a flat counter mapping into the public stats dict.

        Shared with :meth:`ServingLoop.stats`, which reads every queue's
        counters out of ONE whole-tree registry snapshot and shapes each
        queue's slice through here.
        """
        return {
            "shard": shard,
            "depth": values["depth"],
            "enqueued": values["enqueued"],
            "depth_max": values["depth_max"],
            "depth_sum": values["depth_sum"],
            "depth_samples": values["depth_samples"],
            "depth_mean": (
                round(values["depth_sum"] / values["depth_samples"], 3)
                if values["depth_samples"]
                else 0.0
            ),
            "micro_batches": values["micro_batches"],
            "micro_batch_requests": values["micro_batch_requests"],
            "micro_batch_max": values["micro_batch_max"],
            "micro_batch_mean": (
                round(values["micro_batch_requests"] / values["micro_batches"], 3)
                if values["micro_batches"]
                else 0.0
            ),
            "empty_drains": values["empty_drains"],
        }
