"""Asynchronous serving subsystem: request queues, micro-batching, latency.

The fourth rung of the performance ladder (batching → caching → sharding →
**async serving**).  :class:`~repro.serve.loop.ServingLoop` turns the
synchronous planning entry points into a futures-based front-end: requests
hash-route to bounded per-worker-shard queues, an
:class:`~repro.serve.admission.AdmissionController` applies back-pressure
(reject or block at the depth bound), and per-shard drain threads answer
everything pending as one fused micro-batch through
:meth:`~repro.core.beam.BeamSearchPlanner.plan_for_requests` — responses
bit-identical to sequential serving, measured by the traffic drivers in
:mod:`repro.serve.driver` and the ``async_serving`` bench section.
"""

from repro.serve.admission import AdmissionController
from repro.serve.api import (
    KGPathRequest,
    NextStepRequest,
    PlanRequest,
    RankRequest,
    Response,
)
from repro.serve.driver import (
    latency_percentiles,
    poisson_arrival_offsets,
    replay_lockstep,
    run_open_loop,
)
from repro.serve.loop import ServingLoop
from repro.serve.queue import RequestQueue
from repro.serve.request import ServeRequest

__all__ = [
    "AdmissionController",
    "KGPathRequest",
    "NextStepRequest",
    "PlanRequest",
    "RankRequest",
    "RequestQueue",
    "Response",
    "ServeRequest",
    "ServingLoop",
    "latency_percentiles",
    "poisson_arrival_offsets",
    "replay_lockstep",
    "run_open_loop",
]
