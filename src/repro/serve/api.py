"""The typed request/response API of the serving stack.

Every serving front-end (:class:`~repro.serve.loop.ServingLoop`,
:class:`~repro.replica.set.ReplicaSet`,
:class:`~repro.distributed.remote.RemoteReplicaSet`) speaks one surface:

    ``serve(request) -> Future[Response]``

where ``request`` is one of four frozen dataclasses sharing a common
envelope (tenant id, deadline, and the derived routing key):

* :class:`NextStepRequest` — the next item of an evolving influence plan
  (the stepwise serving workload of PRs 4–9);
* :class:`PlanRequest` — a full influence path to an objective;
* :class:`RankRequest` — top-``k`` next-item ranking from any
  :mod:`repro.models` recommender (the objective slot of the positional
  protocol carries ``k``, the path slot carries the exclusion set);
* :class:`KGPathRequest` — a knowledge-graph-constrained item path from a
  source to a target item (:mod:`repro.kg`).

Each typed request lowers to the positional
:class:`~repro.serve.request.ServeRequest` envelope (the queueable unit
the drains micro-batch), and the answered envelope lifts back into a
typed :class:`Response` carrying the answer, the tenant, the
``served_generation``/``batch_tag`` stamps and both latency endpoints.

:meth:`Response.stamp` is the one place completion timestamps are
written.  The in-process drain and the process transport historically
duplicated this logic (``loop.py`` stamped ``drain_started_at`` /
``completed_at`` directly; ``remote.py`` stamped a parent-clock
``completed_at`` and re-based the worker-shipped durations with its own
``max(..., 0.0)`` clamps) — both now call :meth:`Response.stamp`, and the
never-negative regression tests live alongside it in
``tests/serve/test_response_stamp.py``.

The old positional ``submit(kind, history, objective, ...)`` path remains
as a deprecation shim for one release; new call sites construct typed
requests.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import ClassVar, Sequence

from repro.serve.request import ServeRequest

__all__ = [
    "Request",
    "NextStepRequest",
    "PlanRequest",
    "RankRequest",
    "KGPathRequest",
    "Response",
    "TypedServingSurface",
    "REQUEST_TYPES",
    "warn_positional_submit",
]

#: the positional-``submit`` deprecation fires once per process, not once
#: per request — the shim sits on serving hot paths
_POSITIONAL_SUBMIT_WARNED = False


def warn_positional_submit() -> None:
    """Emit the one-per-process deprecation warning for ``submit(kind, ...)``."""
    global _POSITIONAL_SUBMIT_WARNED
    if not _POSITIONAL_SUBMIT_WARNED:
        _POSITIONAL_SUBMIT_WARNED = True
        warnings.warn(
            "positional submit(kind, ...) is deprecated; construct a typed "
            "request (repro.serve.api) and call serve(request) instead",
            DeprecationWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class Request:
    """The common envelope of every typed serving request.

    ``tenant`` routes the request to its tenant's model, objective policy
    and admission scope (``None`` = the single-tenant surface);
    ``deadline`` is an optional absolute ``time.perf_counter()`` instant
    after which the caller no longer wants the answer — admission rejects
    already-expired requests instead of wasting a drain slot on them.
    """

    tenant: "str | None" = field(default=None, kw_only=True)
    deadline: "float | None" = field(default=None, kw_only=True)

    #: the positional-protocol kind this request lowers to
    kind: ClassVar[str] = ""

    def to_envelope(self) -> ServeRequest:
        raise NotImplementedError

    def routing_key(self) -> tuple:
        """The stable shard/dispatch routing key (tenant-prefixed)."""
        return self.to_envelope().routing_key()


@dataclass(frozen=True)
class NextStepRequest(Request):
    """Serve the next item of the current influence plan for one context."""

    history: Sequence[int] = ()
    objective: int = 0
    path_so_far: Sequence[int] = ()
    user_index: "int | None" = None

    kind: ClassVar[str] = "next_step"

    def to_envelope(self) -> ServeRequest:
        return ServeRequest.create(
            "next_step",
            self.history,
            self.objective,
            self.path_so_far,
            self.user_index,
            None,
            tenant=self.tenant,
            deadline=self.deadline,
        )


@dataclass(frozen=True)
class PlanRequest(Request):
    """Plan one full influence path to ``objective``."""

    history: Sequence[int] = ()
    objective: int = 0
    user_index: "int | None" = None
    max_length: "int | None" = None

    kind: ClassVar[str] = "plan_paths"

    def to_envelope(self) -> ServeRequest:
        return ServeRequest.create(
            "plan_paths",
            self.history,
            self.objective,
            (),
            self.user_index,
            self.max_length,
            tenant=self.tenant,
            deadline=self.deadline,
        )


@dataclass(frozen=True)
class RankRequest(Request):
    """Rank the top-``k`` next items for a history (the model-zoo workload).

    Lowers onto the positional protocol with ``k`` in the objective slot
    and the exclusion set in the path slot, so the same wire rows and
    dedup/wave machinery serve it unchanged.
    """

    history: Sequence[int] = ()
    k: int = 10
    user_index: "int | None" = None
    exclude: Sequence[int] = ()

    kind: ClassVar[str] = "rank"

    def to_envelope(self) -> ServeRequest:
        return ServeRequest.create(
            "rank",
            self.history,
            self.k,
            self.exclude,
            self.user_index,
            None,
            tenant=self.tenant,
            deadline=self.deadline,
        )


@dataclass(frozen=True)
class KGPathRequest(Request):
    """A knowledge-graph-constrained item path from ``source`` to ``target``."""

    source: int = 0
    target: int = 0

    kind: ClassVar[str] = "kg_path"

    def to_envelope(self) -> ServeRequest:
        return ServeRequest.create(
            "kg_path",
            (self.source,),
            self.target,
            (),
            None,
            None,
            tenant=self.tenant,
            deadline=self.deadline,
        )


REQUEST_TYPES = (NextStepRequest, PlanRequest, RankRequest, KGPathRequest)


@dataclass
class Response:
    """One answered serving request, with its stamps and latency endpoints."""

    kind: str
    answer: object
    tenant: "str | None" = None
    served_generation: "int | None" = None
    batch_tag: "int | None" = None
    replica_index: "int | None" = None
    enqueued_at: float = 0.0
    drain_started_at: "float | None" = None
    completed_at: "float | None" = None
    #: worker-measured durations for requests served across the process
    #: boundary (``None`` in-process — both derive from the stamps there)
    remote_queue_wait_s: "float | None" = None
    remote_service_s: "float | None" = None

    @property
    def latency_s(self) -> float:
        """End-to-end sojourn on the caller's clock (never negative: both
        endpoints are stamped by the same process)."""
        if self.completed_at is None:
            return 0.0
        return max(self.completed_at - self.enqueued_at, 0.0)

    @property
    def queue_wait_s(self) -> float:
        """Time between admission and the answering drain's start."""
        if self.remote_queue_wait_s is not None:
            return self.remote_queue_wait_s
        if self.drain_started_at is None:
            return 0.0
        return max(self.drain_started_at - self.enqueued_at, 0.0)

    @property
    def service_s(self) -> float:
        """Time inside the answering drain."""
        if self.remote_service_s is not None:
            return max(self.remote_service_s - (self.remote_queue_wait_s or 0.0), 0.0)
        if self.completed_at is None or self.drain_started_at is None:
            return 0.0
        return max(self.completed_at - self.drain_started_at, 0.0)

    # ------------------------------------------------------------------ #
    @staticmethod
    def stamp(
        request: ServeRequest,
        *,
        completed_at: "float | None" = None,
        drain_started_at: "float | None" = None,
        served_generation: "int | None" = None,
        batch_tag: "int | None" = None,
        replica_index: "int | None" = None,
        remote_queue_wait_s: "float | None" = None,
        remote_service_s: "float | None" = None,
    ) -> float:
        """Write the completion stamps of one envelope, in one place.

        Rules enforced here (previously duplicated between the in-process
        drain and the process transport, and easy to drift):

        * both latency endpoints are instants of the *caller's* clock —
          worker processes ship durations, never timestamps, so a latency
          subtraction can never go negative however far apart the
          ``perf_counter`` epochs sit;
        * remote durations re-base onto the caller's clock anchored at the
          response receipt, clamped at zero (``drain_started_at = done -
          max(service - queue_wait, 0)``), so derived spans are sane even
          when a worker measured a shorter service than queue wait;
        * stamps are written BEFORE the future resolves (the callers'
          contract), so any thread woken by ``future.result()`` reads a
          complete envelope.

        Returns the effective ``drain_started_at`` (the trace-span anchor).
        """
        done = time.perf_counter() if completed_at is None else completed_at
        if remote_service_s is not None:
            queue_wait = remote_queue_wait_s or 0.0
            drain_started_at = done - max(remote_service_s - queue_wait, 0.0)
            request.remote_queue_wait_s = remote_queue_wait_s
            request.remote_service_s = remote_service_s
        request.completed_at = done
        if drain_started_at is not None:
            request.drain_started_at = drain_started_at
        request.served_generation = served_generation
        request.batch_tag = batch_tag
        if replica_index is not None:
            request.replica_index = replica_index
        return drain_started_at if drain_started_at is not None else done

    @classmethod
    def from_envelope(cls, request: ServeRequest, answer: object) -> "Response":
        """Lift one answered envelope into the typed response."""
        return cls(
            kind=request.kind,
            answer=answer,
            tenant=request.tenant,
            served_generation=request.served_generation,
            batch_tag=request.batch_tag,
            replica_index=request.replica_index,
            enqueued_at=request.enqueued_at,
            drain_started_at=request.drain_started_at,
            completed_at=request.completed_at,
            remote_queue_wait_s=request.remote_queue_wait_s,
            remote_service_s=request.remote_service_s,
        )


class TypedServingSurface:
    """The one ``serve(request) -> Future[Response]`` entrypoint.

    Mixed into every serving front-end; requires only the host's
    ``enqueue(envelope)`` method, so the three transports stay identical
    from the caller's side.
    """

    def serve(self, request: Request) -> "Future[Response]":
        """Admit one typed request; the future resolves to a :class:`Response`."""
        envelope = request.to_envelope()
        response_future: "Future[Response]" = Future()

        def _lift(inner: Future) -> None:
            exc = inner.exception()
            if exc is not None:
                response_future.set_exception(exc)
            else:
                response_future.set_result(
                    Response.from_envelope(envelope, inner.result())
                )

        envelope.future.add_done_callback(_lift)
        self.enqueue(envelope)
        return response_future
