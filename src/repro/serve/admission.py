"""Admission control: the serving loop's back-pressure policy.

One :class:`AdmissionController` is shared by every shard queue of a
:class:`~repro.serve.loop.ServingLoop`.  It owns the three knobs the issue
names — bounded queue depth, reject-or-block policy, and the drain-deadline
micro-batching window — and the fleet-wide admitted/rejected/blocked
counters, which live in the process-wide metrics registry
(:mod:`repro.obs.registry`) so :meth:`counters` is one atomic registry read
and the serving loop's ``stats()`` can fold them into a single snapshot.

The controller decides, it does not wait: a queue at its depth bound asks
:meth:`AdmissionController.on_full` whether the producer should block until
a drain frees space (``block``) or fail fast
(:class:`~repro.utils.exceptions.QueueFullError`, ``reject``).  The actual
waiting happens on the queue's own condition variable, so back-pressure is
per-shard — a hot shard never stalls traffic routed elsewhere.
"""

from __future__ import annotations

import logging

from repro.obs.registry import MetricGroup, get_registry
from repro.serve.config import (
    resolve_admission_policy,
    resolve_drain_deadline,
    resolve_max_queue_depth,
)
from repro.utils.exceptions import QueueFullError

__all__ = ["AdmissionController"]

logger = logging.getLogger(__name__)


class AdmissionController:
    """Bounded-depth admission with a reject-or-block full-queue policy."""

    def __init__(
        self,
        max_queue_depth: "int | None" = None,
        policy: "str | None" = None,
        drain_deadline: "float | None" = None,
        scope: "str | None" = None,
        metrics_scope: "str | None" = None,
    ) -> None:
        self.max_queue_depth = resolve_max_queue_depth(max_queue_depth)
        self.policy = resolve_admission_policy(policy)
        self.drain_deadline = resolve_drain_deadline(drain_deadline)
        #: Accounting label for fleets of loops (the replica set names each
        #: replica's controller ``replica-<id>``): it appears in counters(),
        #: describe() and back-pressure errors, so per-replica queue depth
        #: stays attributable after aggregation.
        self.scope = scope
        registry = get_registry()
        #: Registry namespace: the owning loop passes ``<loop>.admission`` so
        #: its whole stats tree shares one snapshot prefix; standalone
        #: controllers get an auto-indexed scope.
        self.metrics_scope = (
            metrics_scope if metrics_scope is not None else registry.scope("serve.admission")
        )
        self._metrics = MetricGroup(
            registry, self.metrics_scope, counters=("admitted", "rejected", "blocked")
        )

    # ------------------------------------------------------------------ #
    def on_full(self, shard: int, depth: int) -> None:
        """A producer hit the depth bound: raise under ``reject``.

        Returning (instead of raising) means "block": the caller must wait
        on its queue condition and re-check, recording the blocked request
        ONCE via :meth:`on_blocked` — re-checks after spurious wakeups or
        lost notify races must not inflate the counter.
        """
        if self.policy == "reject":
            self._metrics.record(add={"rejected": 1})
            where = f"{self.scope} shard {shard}" if self.scope else f"shard {shard}"
            logger.warning(
                "admission rejected request: %s queue full (depth %d >= max %d)",
                where,
                depth,
                self.max_queue_depth,
            )
            raise QueueFullError(
                f"{where} request queue is full "
                f"(depth {depth} >= max_queue_depth {self.max_queue_depth}); "
                f"retry later or use admission_policy='block'"
            )

    def on_expired(self, lateness_s: float) -> None:
        """A request arrived after its own deadline: reject, never enqueue.

        Expired requests count as rejections on this controller's scope —
        spending a queue slot and a drain share on an answer nobody wants
        would let one late tenant's backlog crowd out live traffic.
        """
        self._metrics.record(add={"rejected": 1})
        where = f"{self.scope}: " if self.scope else ""
        raise QueueFullError(
            f"{where}request deadline expired {1000.0 * lateness_s:.1f}ms "
            "before admission; not enqueuing an answer nobody wants"
        )

    def on_blocked(self) -> None:
        """One request entered the blocked state (counted once per request)."""
        self._metrics.record(add={"blocked": 1})

    def on_admitted(self) -> None:
        self._metrics.record(add={"admitted": 1})

    # ------------------------------------------------------------------ #
    def counters(self) -> dict:
        """One atomic registry snapshot of the admission counters."""
        counters = self._metrics.values()
        if self.scope is not None:
            counters["scope"] = self.scope
        return counters

    def describe(self) -> dict:
        """The resolved knob values (for reports and stats endpoints)."""
        described = {
            "max_queue_depth": self.max_queue_depth,
            "policy": self.policy,
            "drain_deadline": self.drain_deadline,
        }
        if self.scope is not None:
            described["scope"] = self.scope
        return described
