"""Configuration surface of the asynchronous serving subsystem.

The five knobs (``max_queue_depth`` / ``REPRO_MAX_QUEUE_DEPTH``,
``admission_policy`` / ``REPRO_ADMISSION_POLICY``, ``drain_deadline`` /
``REPRO_DRAIN_DEADLINE``, ``arrival_rate`` / ``REPRO_ARRIVAL_RATE``,
``serve_duration`` / ``REPRO_SERVE_DURATION``) now live as rows of the
declarative resolver table in :mod:`repro.config` — precedence (explicit
argument > environment variable > built-in default), parsing and error
wording are table-driven and shared with every other subsystem.  This
module re-exports the serving rows' resolvers for compatibility.
"""

from __future__ import annotations

from repro.config import (
    CONFIG_FIELDS,
    VALID_ADMISSION_POLICIES,
    resolve_admission_policy,
    resolve_arrival_rate,
    resolve_drain_deadline,
    resolve_max_queue_depth,
    resolve_serve_duration,
)

__all__ = [
    "VALID_ADMISSION_POLICIES",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_ADMISSION_POLICY",
    "DEFAULT_DRAIN_DEADLINE",
    "DEFAULT_ARRIVAL_RATE",
    "DEFAULT_SERVE_DURATION",
    "resolve_max_queue_depth",
    "resolve_admission_policy",
    "resolve_drain_deadline",
    "resolve_arrival_rate",
    "resolve_serve_duration",
]

DEFAULT_MAX_QUEUE_DEPTH = CONFIG_FIELDS["max_queue_depth"].default
DEFAULT_ADMISSION_POLICY = CONFIG_FIELDS["admission_policy"].default
DEFAULT_DRAIN_DEADLINE = CONFIG_FIELDS["drain_deadline"].default
DEFAULT_ARRIVAL_RATE = CONFIG_FIELDS["arrival_rate"].default
DEFAULT_SERVE_DURATION = CONFIG_FIELDS["serve_duration"].default
