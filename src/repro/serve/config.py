"""Configuration surface of the asynchronous serving subsystem.

Five knobs, resolved with the sharding subsystem's precedence rule
(explicit argument > environment variable > built-in default):

* ``max_queue_depth`` (``REPRO_MAX_QUEUE_DEPTH``) — bound of each worker
  shard's request queue; the admission controller's back-pressure trips at
  this depth.
* ``admission_policy`` (``REPRO_ADMISSION_POLICY``) — what a full queue
  does to a new request: ``block`` (the producer waits for a drain to free
  space) or ``reject`` (raise :class:`~repro.utils.exceptions.QueueFullError`
  immediately).
* ``drain_deadline`` (``REPRO_DRAIN_DEADLINE``) — seconds a drain waits
  after the first enqueue for more requests to join the micro-batch before
  planning.  ``0`` drains whatever is queued immediately; larger values
  trade first-request latency for wider fused planning calls.  A full queue
  always drains without waiting out the deadline.
* ``arrival_rate`` (``REPRO_ARRIVAL_RATE``) — mean requests/second of the
  synthetic open-loop Poisson traffic driver.
* ``serve_duration`` (``REPRO_SERVE_DURATION``) — seconds of synthetic
  traffic the ``repro-irs serve-sim`` simulation generates.

The environment hooks mirror the ``REPRO_NUM_WORKERS`` family: CI and fleet
operators can reshape serving behaviour without touching any call site, and
every constructor defaulting a knob to ``None`` picks the forced value up.
"""

from __future__ import annotations

import os

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "VALID_ADMISSION_POLICIES",
    "resolve_max_queue_depth",
    "resolve_admission_policy",
    "resolve_drain_deadline",
    "resolve_arrival_rate",
    "resolve_serve_duration",
]

VALID_ADMISSION_POLICIES = ("block", "reject")

_ENV_MAX_QUEUE_DEPTH = "REPRO_MAX_QUEUE_DEPTH"
_ENV_ADMISSION_POLICY = "REPRO_ADMISSION_POLICY"
_ENV_DRAIN_DEADLINE = "REPRO_DRAIN_DEADLINE"
_ENV_ARRIVAL_RATE = "REPRO_ARRIVAL_RATE"
_ENV_SERVE_DURATION = "REPRO_SERVE_DURATION"

DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_ADMISSION_POLICY = "block"
DEFAULT_DRAIN_DEADLINE = 0.002
DEFAULT_ARRIVAL_RATE = 100.0
DEFAULT_SERVE_DURATION = 2.0


def _positive_int(value, name: str, source: str) -> int:
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be an integer, got {value!r} (from {source})"
        ) from None
    if parsed < 1:
        raise ConfigurationError(f"{name} must be at least 1, got {parsed} (from {source})")
    return parsed


def _finite_float(value, name: str, source: str) -> float:
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be a number, got {value!r} (from {source})"
        ) from None
    if parsed != parsed or parsed in (float("inf"), float("-inf")):
        raise ConfigurationError(f"{name} must be finite, got {parsed} (from {source})")
    return parsed


def _resolve(value, env_var: str, default, parse):
    if value is not None:
        return parse(value, "argument")
    env = os.environ.get(env_var)
    if env is not None and env != "":
        return parse(env, f"${env_var}")
    return default


def resolve_max_queue_depth(value: "int | None" = None) -> int:
    """Queue bound: explicit > ``REPRO_MAX_QUEUE_DEPTH`` > 64."""
    return _resolve(
        value,
        _ENV_MAX_QUEUE_DEPTH,
        DEFAULT_MAX_QUEUE_DEPTH,
        lambda raw, source: _positive_int(raw, "max_queue_depth", source),
    )


def resolve_admission_policy(value: "str | None" = None) -> str:
    """Back-pressure policy: explicit > ``REPRO_ADMISSION_POLICY`` > block."""

    def parse(raw, source):
        policy = str(raw).lower()
        if policy not in VALID_ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission_policy must be one of {', '.join(VALID_ADMISSION_POLICIES)}, "
                f"got {raw!r} (from {source})"
            )
        return policy

    return _resolve(value, _ENV_ADMISSION_POLICY, DEFAULT_ADMISSION_POLICY, parse)


def resolve_drain_deadline(value: "float | None" = None) -> float:
    """Micro-batch window: explicit > ``REPRO_DRAIN_DEADLINE`` > 0.002 s."""

    def parse(raw, source):
        deadline = _finite_float(raw, "drain_deadline", source)
        if deadline < 0:
            raise ConfigurationError(
                f"drain_deadline must be non-negative seconds, got {deadline} "
                f"(from {source}); use 0 to drain immediately"
            )
        return deadline

    return _resolve(value, _ENV_DRAIN_DEADLINE, DEFAULT_DRAIN_DEADLINE, parse)


def resolve_arrival_rate(value: "float | None" = None) -> float:
    """Poisson arrival rate: explicit > ``REPRO_ARRIVAL_RATE`` > 100 req/s."""

    def parse(raw, source):
        rate = _finite_float(raw, "arrival_rate", source)
        if rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be positive requests/second, got {rate} (from {source})"
            )
        return rate

    return _resolve(value, _ENV_ARRIVAL_RATE, DEFAULT_ARRIVAL_RATE, parse)


def resolve_serve_duration(value: "float | None" = None) -> float:
    """Simulated traffic duration: explicit > ``REPRO_SERVE_DURATION`` > 2 s."""

    def parse(raw, source):
        duration = _finite_float(raw, "serve_duration", source)
        if duration <= 0:
            raise ConfigurationError(
                f"serve_duration must be positive seconds, got {duration} (from {source})"
            )
        return duration

    return _resolve(value, _ENV_SERVE_DURATION, DEFAULT_SERVE_DURATION, parse)
