"""Synthetic serving traffic over the asynchronous loop.

Two drivers, two purposes:

* :func:`replay_lockstep` — the deterministic parity workload: the stepwise
  lockstep of :func:`repro.evaluation.protocol.rollout_next_step` replayed
  through the serving loop (every live context's request in flight
  concurrently each round, so shard queues genuinely micro-batch).  Its
  returned paths must be bit-identical to the sequential rollout on the
  same planner — the acceptance contract of the async-serving rung, and
  what the parity suite in ``tests/serve`` asserts.

* :func:`run_open_loop` — the latency workload: open-loop Poisson arrivals
  (seeded, so the offered trace is reproducible) over the evaluation
  contexts, each arrival one ``next_step`` request against that context's
  evolving session.  Open loop means arrivals never wait for responses —
  the driver measures latency from the *scheduled* arrival instant, so
  queueing delay under overload is charged to the system, not hidden by
  coordinated omission.  Produces the throughput / p50-p95-p99 latency /
  queue-depth report behind the ``async_serving`` bench section and
  ``repro-irs serve-sim``.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.serve.api import NextStepRequest
from repro.serve.config import resolve_arrival_rate, resolve_serve_duration
from repro.serve.loop import ServingLoop
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ConfigurationError, QueueFullError
from repro.utils.rng import as_rng

__all__ = [
    "replay_lockstep",
    "poisson_arrival_offsets",
    "latency_percentiles",
    "run_open_loop",
]

Context = "tuple[Sequence[int], int, int | None]"


def replay_lockstep(
    loop: ServingLoop, contexts: "Sequence[Context]", max_length: int
) -> "list[list[int]]":
    """Serve the lockstep stepwise workload through the loop (parity driver).

    Mirrors :func:`~repro.evaluation.protocol.rollout_next_step` exactly —
    same round structure, same index order — except that every round's
    requests are submitted before any response is awaited, so they queue and
    micro-batch.  The returned paths are bit-identical to the sequential
    rollout on the same planner.
    """
    if max_length <= 0:
        raise ConfigurationError(f"max_length must be positive, got {max_length}")
    paths: "list[list[int]]" = [[] for _ in contexts]
    live = set(range(len(contexts)))
    for _ in range(max_length):
        if not live:
            break
        futures = {
            index: loop.serve(
                NextStepRequest(
                    history=tuple(contexts[index][0]),
                    objective=int(contexts[index][1]),
                    path_so_far=tuple(paths[index]),
                    user_index=contexts[index][2],
                )
            )
            for index in sorted(live)
        }
        for index in sorted(live):
            item = futures[index].result().answer
            if item is None:
                live.discard(index)
                continue
            paths[index].append(int(item))
            if int(item) == int(contexts[index][1]):
                live.discard(index)
    return paths


def poisson_arrival_offsets(
    arrival_rate: float,
    rng,
    num_requests: "int | None" = None,
    duration: "float | None" = None,
) -> np.ndarray:
    """Cumulative Poisson arrival offsets (seconds from traffic start).

    Exactly one of ``num_requests`` (fixed-size trace, the bench's
    deterministic mode) and ``duration`` (fixed-window trace, the
    ``serve-sim`` mode) must be given.
    """
    if (num_requests is None) == (duration is None):
        raise ConfigurationError(
            "pass exactly one of num_requests and duration to the traffic driver"
        )
    rng = as_rng(rng)
    mean_gap = 1.0 / float(arrival_rate)
    if num_requests is not None:
        if num_requests < 1:
            raise ConfigurationError(
                f"num_requests must be at least 1, got {num_requests}"
            )
        return np.cumsum(rng.exponential(mean_gap, size=int(num_requests)))
    offsets: "list[float]" = []
    elapsed = 0.0
    while True:
        elapsed += float(rng.exponential(mean_gap))
        if elapsed >= duration:
            break
        offsets.append(elapsed)
    return np.asarray(offsets, dtype=np.float64)


def latency_percentiles(latencies_ms: "Sequence[float]") -> dict:
    """The latency summary recorded in the bench: p50/p95/p99, mean, max."""
    if not len(latencies_ms):
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        "count": int(values.size),
        "mean": round(float(values.mean()), 3),
        "p50": round(float(np.percentile(values, 50)), 3),
        "p95": round(float(np.percentile(values, 95)), 3),
        "p99": round(float(np.percentile(values, 99)), 3),
        "max": round(float(values.max()), 3),
    }


def run_open_loop(
    loop: ServingLoop,
    contexts: "Sequence[Context]",
    arrival_rate: "float | None" = None,
    num_requests: "int | None" = None,
    duration: "float | None" = None,
    seed: "int | np.random.Generator | None" = 0,
    max_length: "int | None" = None,
    raise_on_error: bool = True,
    collect_samples: bool = False,
) -> dict:
    """Offer open-loop Poisson traffic to the serving loop and measure it.

    Each arrival issues a ``next_step`` request for the next context in
    round-robin order against that context's evolving session (sessions
    reset once they reach the objective, exhaust the horizon, or the
    planner returns ``None``).  Open-loop discipline: if a context's
    previous request is still in flight when its next arrival fires, the
    new request is offered anyway with the last known session state —
    arrivals never wait for *responses*.  The one thing that can slow the
    offered process is the loop's own ``block`` admission policy: a full
    queue then stalls the arrival thread (that is what back-pressure
    means), so under overload the trace degrades toward closed-loop.  The
    report's ``max_schedule_lag_ms`` records how far behind its schedule
    the driver fell — near zero means the offered trace was delivered as
    generated; use the ``reject`` policy for a strictly open trace under
    overload.  Latency is always measured from each request's *scheduled*
    arrival instant to the drain that answered it, so any admission stall
    or queueing delay is charged to the system, never silently omitted.

    With neither ``num_requests`` nor ``duration``, the configured
    ``REPRO_SERVE_DURATION`` window (default 2 s) applies.

    ``loop`` is anything with the serving-loop surface (``enqueue``,
    ``stats``, ``admission``, ``planner``) — a
    :class:`~repro.serve.loop.ServingLoop` or a
    :class:`~repro.replica.ReplicaSet`.  ``raise_on_error=False`` turns a
    failed drain from a loud re-raise into an ``errored_requests`` count
    (the replicated hot-refit bench gates on that count being zero rather
    than dying on the first failure), and ``collect_samples=True`` adds a
    per-admitted-request ``samples`` list — arrival offset, latency and the
    generation/replica that answered — so callers can split percentiles
    around a mid-run model flip.
    """
    if not contexts:
        raise ConfigurationError("the open-loop driver needs at least one serving context")
    rate = resolve_arrival_rate(arrival_rate)
    if num_requests is None and duration is None:
        duration = resolve_serve_duration(None)
    offsets = poisson_arrival_offsets(
        rate, as_rng(seed), num_requests=num_requests, duration=duration
    )
    if max_length is None:
        max_length = int(getattr(loop.planner, "max_length", 20))

    sessions: "list[list[int]]" = [[] for _ in contexts]
    finished = [False] * len(contexts)
    #: per-context in-flight request tracked for session advancement (extra
    #: open-loop requests for a busy context offer load but do not advance
    #: the session — their responses duplicate the tracked one).
    in_flight: "list[ServeRequest | None]" = [None] * len(contexts)
    admitted: "list[tuple[float, ServeRequest]]" = []
    rejected = 0

    def advance(index: int) -> None:
        request = in_flight[index]
        if request is None or not request.future.done():
            return
        in_flight[index] = None
        try:
            item = request.future.result()
        except Exception:
            if raise_on_error:
                raise
            # Counted once, in the final collection loop (this request is in
            # `admitted` too); the session just resets and the trace goes on.
            finished[index] = True
            return
        if item is None:
            finished[index] = True
            return
        sessions[index].append(int(item))
        if int(item) == int(contexts[index][1]) or len(sessions[index]) >= max_length:
            finished[index] = True

    start = time.perf_counter()
    max_schedule_lag = 0.0
    for arrival, offset in enumerate(offsets):
        target = start + float(offset)
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        else:
            max_schedule_lag = max(max_schedule_lag, -delay)
        index = arrival % len(contexts)
        advance(index)
        if finished[index]:
            sessions[index] = []
            finished[index] = False
        history, objective, user_index = contexts[index]
        request = ServeRequest.create(
            "next_step",
            history,
            objective,
            path_so_far=sessions[index],
            user_index=user_index,
        )
        try:
            loop.enqueue(request)
        except QueueFullError:
            rejected += 1
            continue
        admitted.append((target, request))
        if in_flight[index] is None:
            in_flight[index] = request

    latencies_ms = []
    samples: "list[dict]" = []
    errored = 0
    for target, request in admitted:
        try:
            request.future.result()  # propagate drain failures loudly
        except Exception:
            # Drain failures only: KeyboardInterrupt/SystemExit propagate —
            # a non-raising run must still be interruptible.
            if raise_on_error:
                raise
            errored += 1
            continue
        latency_ms = 1000.0 * (request.completed_at - target)
        latencies_ms.append(latency_ms)
        if collect_samples:
            samples.append(
                {
                    "offset_s": round(target - start, 4),
                    "latency_ms": round(latency_ms, 3),
                    "generation": request.served_generation,
                    "replica": request.replica_index,
                }
            )
    wall = max(time.perf_counter() - start, 1e-9)

    stats = loop.stats()
    report = {
        "arrival_rate": rate,
        "offered_requests": int(len(offsets)),
        "admitted_requests": len(admitted),
        "rejected_requests": rejected,
        "errored_requests": errored,
        "num_contexts": len(contexts),
        "max_length": max_length,
        "duration_seconds": round(wall, 4),
        "throughput_rps": round(len(admitted) / wall, 2),
        "max_schedule_lag_ms": round(1000.0 * max_schedule_lag, 3),
        "latency_ms": latency_percentiles(latencies_ms),
        "queue_depth": stats["queue_depth"],
        "micro_batches": stats["micro_batches"],
        "admission": {**loop.admission.describe(), **stats["admission"]},
    }
    if collect_samples:
        report["samples"] = samples
    return report
