"""Path diagnostics: genre transitions, diversity/novelty and framework reports.

The paper argues qualitatively (Table VII) that IRN's influence paths shift
smoothly between genres.  This subpackage turns that case study into
repeatable, quantitative diagnostics that work on any collection of
:class:`~repro.evaluation.protocol.PathRecord` objects:

* :mod:`~repro.analysis.genres` — genre transition tables (the generalised
  Table VII), per-path genre-shift smoothness and a genre-to-genre transition
  matrix.
* :mod:`~repro.analysis.diversity` — intra-list diversity, popularity-based
  novelty and catalog coverage of the generated paths.
* :mod:`~repro.analysis.reports` — one-row-per-framework summaries combining
  the above with reach statistics.
"""

from repro.analysis.diversity import catalog_coverage, intra_list_diversity, novelty
from repro.analysis.genres import (
    genre_shift_smoothness,
    genre_transition_matrix,
    genre_transition_table,
)
from repro.analysis.reports import framework_path_report, path_length_statistics

__all__ = [
    "catalog_coverage",
    "framework_path_report",
    "genre_shift_smoothness",
    "genre_transition_matrix",
    "genre_transition_table",
    "intra_list_diversity",
    "novelty",
    "path_length_statistics",
]
