"""Genre-level diagnostics of influence paths (the generalised Table VII).

All functions take :class:`~repro.evaluation.protocol.PathRecord` objects (or
raw item sequences) plus a corpus with genre metadata, and degrade gracefully
— returning empty / neutral values — when the corpus has no genres.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.protocol import PathRecord

__all__ = ["genre_transition_table", "genre_shift_smoothness", "genre_transition_matrix"]


def _format_genres(corpus: SequenceCorpus, item: int) -> str:
    genres = corpus.item_genres(item)
    return ", ".join(genres) if genres else "-"


def genre_transition_table(
    record: "PathRecord", corpus: SequenceCorpus
) -> list[dict[str, str]]:
    """The Table VII view of one path: role, item label and genres per row.

    Rows: the last history item, every path step, and the objective (with a
    marker noting whether it was reached).
    """
    rows: list[dict[str, str]] = []
    if record.history:
        last = record.history[-1]
        rows.append(
            {
                "role": "history (last item)",
                "item": str(corpus.vocab.item(last)),
                "genres": _format_genres(corpus, last),
            }
        )
    for step, item in enumerate(record.path, start=1):
        rows.append(
            {
                "role": f"path step {step}",
                "item": str(corpus.vocab.item(item)),
                "genres": _format_genres(corpus, item),
            }
        )
    reached = record.objective in record.path
    rows.append(
        {
            "role": "objective (reached)" if reached else "objective (not reached)",
            "item": str(corpus.vocab.item(record.objective)),
            "genres": _format_genres(corpus, record.objective),
        }
    )
    return rows


def _pairwise_share(corpus: SequenceCorpus, sequence: Sequence[int]) -> list[bool]:
    shares = []
    for previous, current in zip(sequence[:-1], sequence[1:]):
        previous_genres = set(corpus.item_genres(previous))
        current_genres = set(corpus.item_genres(current))
        shares.append(bool(previous_genres & current_genres))
    return shares


def genre_shift_smoothness(
    records: "Sequence[PathRecord]", corpus: SequenceCorpus, include_history_link: bool = True
) -> float:
    """Fraction of consecutive path transitions that share at least one genre.

    A value of 1.0 means every step stays within a genre the user just saw
    (maximally smooth); 0.0 means every step jumps to unrelated genres.  With
    ``include_history_link=True`` the transition from the last history item
    to the first path item is counted as well.
    """
    if not records:
        raise ConfigurationError("no path records to analyse")
    if corpus.item_genre_matrix is None:
        return float("nan")
    shares: list[bool] = []
    for record in records:
        sequence = list(record.path)
        if include_history_link and record.history and sequence:
            sequence = [record.history[-1]] + sequence
        shares.extend(_pairwise_share(corpus, sequence))
    if not shares:
        return float("nan")
    return float(np.mean(shares))


def genre_transition_matrix(
    records: "Sequence[PathRecord]", corpus: SequenceCorpus
) -> tuple[list[str], np.ndarray]:
    """Counts of genre-to-genre transitions along the paths.

    Returns the genre names and a ``(G, G)`` count matrix where entry
    ``(a, b)`` counts path transitions whose previous item carries genre
    ``a`` and next item carries genre ``b``.  Multi-genre items contribute to
    every combination of their genres.
    """
    if not records:
        raise ConfigurationError("no path records to analyse")
    if corpus.item_genre_matrix is None or not corpus.genre_names:
        raise ConfigurationError(f"corpus '{corpus.name}' has no genre metadata")
    genres = list(corpus.genre_names)
    index = {name: position for position, name in enumerate(genres)}
    matrix = np.zeros((len(genres), len(genres)), dtype=np.int64)
    for record in records:
        sequence = list(record.path)
        if record.history and sequence:
            sequence = [record.history[-1]] + sequence
        for previous, current in zip(sequence[:-1], sequence[1:]):
            for source in corpus.item_genres(previous):
                for target in corpus.item_genres(current):
                    matrix[index[source], index[target]] += 1
    return genres, matrix
