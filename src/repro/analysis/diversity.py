"""Diversity, novelty and coverage diagnostics of influence paths.

These metrics complement the paper's smoothness/reach metrics with the
standard beyond-accuracy dimensions of recommendation quality:

* **Intra-list diversity** — average pairwise item distance within a path.
  An influence path should be diverse enough to move the user somewhere new,
  but a maximally diverse path is just noise.
* **Novelty** — average self-information ``-log2 p(item)`` of the path items
  under the corpus popularity distribution; higher values mean the path digs
  into the long tail.
* **Catalog coverage** — fraction of the catalogue recommended at least once
  across all paths of a framework; low coverage signals that a framework
  funnels every user through the same few items.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.distance import ItemDistance
from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.protocol import PathRecord

__all__ = ["intra_list_diversity", "novelty", "catalog_coverage"]


def _require_records(records: Sequence["PathRecord"]) -> None:
    if not records:
        raise ConfigurationError("no path records to analyse")


def intra_list_diversity(
    records: Sequence["PathRecord"], distance: ItemDistance
) -> float:
    """Mean pairwise distance between items of the same path.

    Paths with fewer than two items are skipped; returns ``nan`` when every
    path is that short.
    """
    _require_records(records)
    per_path: list[float] = []
    for record in records:
        items = list(record.path)
        if len(items) < 2:
            continue
        pair_distances = [
            distance.distance(first, second)
            for position, first in enumerate(items)
            for second in items[position + 1 :]
        ]
        per_path.append(float(np.mean(pair_distances)))
    if not per_path:
        return float("nan")
    return float(np.mean(per_path))


def novelty(records: Sequence["PathRecord"], corpus: SequenceCorpus) -> float:
    """Mean self-information (bits) of recommended items under corpus popularity."""
    _require_records(records)
    popularity = corpus.item_popularity().astype(np.float64)
    total = popularity.sum()
    if total <= 0:
        raise ConfigurationError("corpus popularity is empty")
    probabilities = popularity / total
    values: list[float] = []
    for record in records:
        for item in record.path:
            probability = max(float(probabilities[item]), 1e-12)
            values.append(-float(np.log2(probability)))
    if not values:
        return float("nan")
    return float(np.mean(values))


def catalog_coverage(records: Sequence["PathRecord"], corpus: SequenceCorpus) -> float:
    """Fraction of catalogue items that appear in at least one path."""
    _require_records(records)
    recommended = {int(item) for record in records for item in record.path}
    recommended.discard(0)
    catalogue = corpus.vocab.num_items
    if catalogue <= 0:
        raise ConfigurationError("empty catalogue")
    return len(recommended) / catalogue
