"""Per-framework path reports combining reach, smoothness and diversity."""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.analysis.diversity import catalog_coverage, intra_list_diversity, novelty
from repro.analysis.genres import genre_shift_smoothness
from repro.core.distance import ItemDistance
from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.protocol import PathRecord

__all__ = ["path_length_statistics", "framework_path_report"]


def path_length_statistics(records: Sequence["PathRecord"]) -> dict[str, float]:
    """Reach rate plus mean/median path lengths (overall and for successful paths)."""
    if not records:
        raise ConfigurationError("no path records to analyse")
    lengths = [len(record.path) for record in records]
    successful = [len(record.path) for record in records if record.reached]
    return {
        "reach_rate": sum(1 for record in records if record.reached) / len(records),
        "mean_length": float(np.mean(lengths)),
        "median_length": float(np.median(lengths)),
        "mean_length_on_success": float(np.mean(successful)) if successful else float("nan"),
        "empty_paths": sum(1 for record in records if not record.path) / len(records),
    }


def framework_path_report(
    records_by_framework: Mapping[str, Sequence["PathRecord"]],
    corpus: SequenceCorpus,
    distance: ItemDistance | None = None,
) -> list[dict[str, float | str]]:
    """One summary row per framework.

    Columns: reach rate, mean path length (overall / successful), genre-shift
    smoothness, intra-list diversity (when a distance is provided), novelty
    and catalogue coverage.
    """
    if not records_by_framework:
        raise ConfigurationError("no frameworks to report on")
    if distance is None and corpus.item_genre_matrix is not None:
        distance = ItemDistance.from_genres(corpus)

    rows: list[dict[str, float | str]] = []
    for framework, records in records_by_framework.items():
        statistics = path_length_statistics(records)
        row: dict[str, float | str] = {
            "framework": framework,
            "reach_rate": round(statistics["reach_rate"], 4),
            "mean_length": round(statistics["mean_length"], 2),
            "length_on_success": round(statistics["mean_length_on_success"], 2)
            if np.isfinite(statistics["mean_length_on_success"])
            else float("nan"),
            "genre_smoothness": round(genre_shift_smoothness(records, corpus), 4),
            "novelty_bits": round(novelty(records, corpus), 3),
            "coverage": round(catalog_coverage(records, corpus), 4),
        }
        if distance is not None:
            row["diversity"] = round(intra_list_diversity(records, distance), 4)
        rows.append(row)
    return rows
