"""Experiment configuration.

An :class:`ExperimentConfig` fixes one dataset (MovieLens- or Lastfm-like),
its scale, the splitting parameters (``l_min`` / ``l_max`` of §IV-A2), the
IRS protocol parameters (maximum path length ``M``, candidate-set size ``k``)
and the per-model training budgets.  Three presets are provided:

* :meth:`ExperimentConfig.default` — the "full" reproduction scale used by
  ``examples/`` and the benchmark harness (minutes of NumPy training).
* :meth:`ExperimentConfig.fast` — a seconds-scale profile for unit and
  integration tests (tiny corpus, Markov evaluator, 1-2 epochs).
* :meth:`ExperimentConfig.paper` — the hyperparameters reported in Table VI
  of the paper, for reference and for users with the real datasets and a
  faster backend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.interactions import InteractionDataset, SequenceCorpus
from repro.data.lastfm import load_lastfm, synthetic_lastfm
from repro.data.movielens import load_movielens_1m, synthetic_movielens
from repro.data.preprocessing import build_corpus
from repro.data.splitting import DatasetSplit, split_corpus
from repro.utils.exceptions import ConfigurationError

__all__ = ["ExperimentConfig", "PAPER_HYPERPARAMETERS"]


#: Table VI of the paper: hyperparameter ranges and per-dataset optima.
PAPER_HYPERPARAMETERS: list[dict[str, object]] = [
    {"name": "l_max", "range": "[30, 40, 50, 60, 70, 80]", "lastfm": 50, "movielens-1m": 60},
    {"name": "l_min", "range": "-", "lastfm": 20, "movielens-1m": 20},
    {"name": "batch_size", "range": "{64, 128, 256, 512}", "lastfm": 128, "movielens-1m": 128},
    {"name": "lr", "range": "[1e-4, 1e-2]", "lastfm": 8e-3, "movielens-1m": 3e-3},
    {"name": "d", "range": "{10, 20, 30, 40}", "lastfm": 40, "movielens-1m": 30},
    {"name": "d_prime", "range": "{4, 6, 8, 10, 12}", "lastfm": 10, "movielens-1m": 10},
    {"name": "L", "range": "{4, 5, 6, 7, 8}", "lastfm": 5, "movielens-1m": 6},
    {"name": "w_t", "range": "{0, 0.25, 0.5, 0.75, 1}", "lastfm": 1, "movielens-1m": 1},
    {"name": "h", "range": "{1, 2, 3, 4, 5, 6, 7, 8}", "lastfm": 4, "movielens-1m": 6},
]


@dataclass
class ExperimentConfig:
    """All knobs of one experimental setup."""

    # Dataset ----------------------------------------------------------------
    dataset: str = "movielens"
    #: multiplier on the synthetic corpus size (users / items)
    scale: float = 1.0
    #: path to a real MovieLens-1M / Lastfm dump; when set, the synthetic
    #: generator is bypassed and the original files are loaded
    data_directory: str | None = None
    min_interactions: int = 5
    seed: int = 0

    # Splitting (§IV-A2) -----------------------------------------------------
    l_min: int = 12
    l_max: int = 30
    validation_fraction: float = 0.1

    # IRS protocol (§IV-B) ---------------------------------------------------
    max_path_length: int = 20
    candidate_k: int = 15
    min_objective_interactions: int = 5
    max_eval_instances: int | None = 80
    history_window: int = 40

    # Sharded execution (repro.shard) ----------------------------------------
    #: instances per batched Algorithm-1 rollout call (bounds the fused
    #: logits tensor); protocol-level knob surfaced on the CLI
    rollout_chunk_size: int = 64
    #: worker shards for planning/evaluation; None reads REPRO_NUM_WORKERS
    num_workers: int | None = None
    #: 'serial' / 'thread' / 'process'; None reads REPRO_SHARD_BACKEND
    shard_backend: str | None = None
    #: column shards of the item axis for top-k; None reads REPRO_VOCAB_SHARDS
    vocab_shards: int | None = None

    # Model budgets ----------------------------------------------------------
    embedding_dim: int = 32
    evaluator_epochs: int = 10
    baseline_epochs: int = 6
    irn_epochs: int = 15
    irn_layers: int = 2
    irn_heads: int = 2
    irn_user_dim: int = 8
    irn_objective_weight: float = 1.0
    irn_objective_logit_scale: float = 4.5
    irn_learning_rate: float = 3e-3
    item2vec_init: bool = True
    max_sequence_length: int = 32
    #: use the cheap Markov evaluator instead of training BERT4Rec (tests)
    use_markov_evaluator: bool = False
    #: restrict the baseline set to the cheap models (tests)
    light_baselines: bool = False

    def __post_init__(self) -> None:
        if self.dataset not in {"movielens", "lastfm"}:
            raise ConfigurationError(
                f"dataset must be 'movielens' or 'lastfm', got '{self.dataset}'"
            )
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.max_path_length <= 0:
            raise ConfigurationError("max_path_length must be positive")
        if not isinstance(self.rollout_chunk_size, int) or self.rollout_chunk_size <= 0:
            raise ConfigurationError(
                f"rollout_chunk_size must be a positive integer, "
                f"got {self.rollout_chunk_size!r}"
            )
        # Resolve (and thereby validate) the sharding knobs eagerly so a bad
        # --num-workers / --shard-backend / --vocab-shards fails at config
        # time with a clear message, not mid-experiment.
        from repro.shard.config import (
            resolve_num_workers,
            resolve_shard_backend,
            resolve_vocab_shards,
        )

        self.num_workers = resolve_num_workers(self.num_workers)
        self.shard_backend = resolve_shard_backend(
            self.shard_backend, num_workers=self.num_workers
        )
        self.vocab_shards = resolve_vocab_shards(self.vocab_shards)

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls, dataset: str = "movielens", seed: int = 0) -> "ExperimentConfig":
        """The standard reproduction profile (NumPy-minutes scale)."""
        return cls(dataset=dataset, seed=seed)

    @classmethod
    def fast(cls, dataset: str = "movielens", seed: int = 0) -> "ExperimentConfig":
        """A seconds-scale profile for tests and smoke runs."""
        return cls(
            dataset=dataset,
            seed=seed,
            scale=0.35,
            l_min=8,
            l_max=20,
            max_path_length=10,
            candidate_k=10,
            max_eval_instances=25,
            history_window=25,
            embedding_dim=16,
            evaluator_epochs=2,
            baseline_epochs=2,
            irn_epochs=3,
            irn_layers=1,
            irn_user_dim=4,
            max_sequence_length=22,
            item2vec_init=False,
            use_markov_evaluator=True,
            light_baselines=True,
        )

    @classmethod
    def paper(cls, dataset: str = "movielens") -> "ExperimentConfig":
        """The Table VI hyperparameters (for use with the real datasets)."""
        if dataset == "lastfm":
            return cls(
                dataset="lastfm",
                l_min=20,
                l_max=50,
                candidate_k=50,
                max_eval_instances=None,
                embedding_dim=40,
                irn_layers=5,
                irn_heads=4,
                irn_user_dim=10,
                irn_learning_rate=8e-3,
                irn_epochs=100,
                evaluator_epochs=100,
                baseline_epochs=100,
                max_sequence_length=50,
                history_window=50,
            )
        return cls(
            dataset="movielens",
            l_min=20,
            l_max=60,
            candidate_k=50,
            max_eval_instances=None,
            embedding_dim=30,
            irn_layers=6,
            irn_heads=6,
            irn_user_dim=10,
            irn_learning_rate=3e-3,
            irn_epochs=100,
            evaluator_epochs=100,
            baseline_epochs=100,
            max_sequence_length=60,
            history_window=60,
        )

    def with_dataset(self, dataset: str) -> "ExperimentConfig":
        """Return a copy of this config targeting another dataset."""
        return replace(self, dataset=dataset)

    # ------------------------------------------------------------------ #
    # Data loading
    # ------------------------------------------------------------------ #
    def load_dataset(self) -> InteractionDataset:
        """Load the raw interaction log (real files if configured, else synthetic)."""
        if self.data_directory is not None:
            if self.dataset == "movielens":
                return load_movielens_1m(self.data_directory)
            return load_lastfm(self.data_directory)
        if self.dataset == "movielens":
            return synthetic_movielens(scale=self.scale, seed=self.seed)
        return synthetic_lastfm(scale=self.scale, seed=self.seed)

    def build_corpus(self) -> SequenceCorpus:
        """Load and preprocess the dataset into a sequence corpus."""
        dataset = self.load_dataset()
        merge = self.dataset == "lastfm"
        return build_corpus(
            dataset, min_interactions=self.min_interactions, merge_consecutive=merge
        )

    def load_split(self) -> DatasetSplit:
        """Full pipeline: load, preprocess and split the configured dataset."""
        corpus = self.build_corpus()
        return split_corpus(
            corpus,
            l_min=self.l_min,
            l_max=self.l_max,
            validation_fraction=self.validation_fraction,
            seed=self.seed,
        )
