"""Regeneration of the paper's evaluation figures (§IV-D) as numeric series.

No plotting backend is available offline, so every function returns the data
behind the figure (dict of named series / histogram arrays); the benchmark
harness prints them with :func:`repro.experiments.reporting.format_series`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.evaluation.aggressiveness import (
    sweep_irn_aggressiveness,
    sweep_rec2inf_aggressiveness,
)
from repro.experiments.pipeline import ExperimentPipeline

__all__ = [
    "figure6_success_vs_length",
    "figure7_aggressiveness",
    "figure8_impressionability_distribution",
    "figure9_stepwise_evolution",
]


# --------------------------------------------------------------------------- #
# Figure 6 — SR_M versus maximum path length M
# --------------------------------------------------------------------------- #
def figure6_success_vs_length(
    pipeline: ExperimentPipeline,
    lengths: Sequence[int] = (5, 10, 15, 20),
    backbone_names: Sequence[str] | None = None,
) -> dict[str, dict[int, float]]:
    """Success rate as a function of the maximum path length.

    Returns ``{framework: {M: SR_M}}`` for IRN and the Rec2Inf adaptations of
    the strongest baselines.
    """
    if backbone_names is None:
        available = list(pipeline.baselines)
        preferred = [name for name in ("Caser", "SASRec", "GRU4Rec", "POP") if name in available]
        backbone_names = preferred[:3] if preferred else available[:3]

    curves: dict[str, dict[int, float]] = {"IRN": {}}
    for name in backbone_names:
        curves[f"Rec2Inf {name}"] = {}

    irn = pipeline.irn()
    adapted = {name: pipeline.rec2inf(name) for name in backbone_names}
    for length in lengths:
        protocol = pipeline.protocol(max_length=length)
        curves["IRN"][length] = protocol.evaluate(irn).success
        for name, framework in adapted.items():
            curves[f"Rec2Inf {name}"][length] = protocol.evaluate(framework).success
    return curves


# --------------------------------------------------------------------------- #
# Figure 7 — SR20 and log(PPL) versus aggressiveness degree
# --------------------------------------------------------------------------- #
def figure7_aggressiveness(
    pipeline: ExperimentPipeline,
    rec2inf_levels: Sequence[int] | None = None,
    irn_levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    backbone_name: str | None = None,
    retrain_irn: bool = False,
) -> dict[str, list[dict[str, float]]]:
    """SR and log(PPL) at five aggressiveness levels for Rec2Inf and IRN.

    ``rec2inf_levels`` defaults to five candidate-set sizes spread between a
    tenth of the catalog and half of it (the paper uses k in {10..50} on a
    ~3k-item catalog).
    """
    protocol = pipeline.protocol()
    num_items = pipeline.split.corpus.num_items
    if rec2inf_levels is None:
        top = max(5, num_items // 2)
        rec2inf_levels = sorted({max(2, int(round(top * f))) for f in (0.2, 0.4, 0.6, 0.8, 1.0)})
    if backbone_name is None:
        backbone_name = next(iter(pipeline.baselines))

    backbone = pipeline.baselines[backbone_name]
    rec_points = sweep_rec2inf_aggressiveness(
        backbone, pipeline.split, protocol, levels=rec2inf_levels
    )
    irn_points = sweep_irn_aggressiveness(
        pipeline.split,
        protocol,
        levels=irn_levels,
        retrain=retrain_irn,
        base_model=None if retrain_irn else pipeline.irn(),
    )
    return {
        f"Rec2Inf {backbone_name}": [point.as_row() for point in rec_points],
        "IRN": [point.as_row() for point in irn_points],
    }


# --------------------------------------------------------------------------- #
# Figure 8 — distribution of the personalized impressionability factor
# --------------------------------------------------------------------------- #
def figure8_impressionability_distribution(
    pipeline: ExperimentPipeline, bins: int = 10
) -> dict[str, object]:
    """Histogram of the learned ``r_u`` and its correlation with ground truth.

    For synthetic corpora the generator's latent per-user impressionability is
    available, so in addition to the histogram the Pearson correlation between
    learned and true impressionability is reported (not part of the paper,
    but a stronger check than eyeballing the shape).
    """
    irn = pipeline.irn()
    factors = irn.impressionability_factors()
    counts, edges = np.histogram(factors, bins=bins)
    result: dict[str, object] = {
        "factors": factors.tolist(),
        "histogram_counts": counts.tolist(),
        "histogram_edges": edges.tolist(),
        "mean": float(np.mean(factors)),
        "std": float(np.std(factors)),
    }
    traits = pipeline.split.corpus.user_traits
    if traits is not None and np.std(factors) > 0 and np.std(traits[~np.isnan(traits)]) > 0:
        valid = ~np.isnan(traits)
        if valid.sum() >= 2:
            correlation = np.corrcoef(factors[valid], traits[valid])[0, 1]
            result["correlation_with_ground_truth"] = float(correlation)
    return result


# --------------------------------------------------------------------------- #
# Figure 9 — stepwise evolution of user interests
# --------------------------------------------------------------------------- #
def figure9_stepwise_evolution(
    pipeline: ExperimentPipeline,
    backbone_names: Sequence[str] | None = None,
) -> dict[str, dict[str, list[float]]]:
    """Average objective / item log-probability at each step of the path.

    Returns ``{framework: {"objective": [...], "item": [...]}}`` for IRN and
    the Rec2Inf adaptations of a few baselines; the paper's claim is that the
    IRN objective curve rises steadily while the baselines stay flat.
    """
    protocol = pipeline.protocol()
    if backbone_names is None:
        available = list(pipeline.baselines)
        preferred = [name for name in ("Caser", "SASRec", "POP") if name in available]
        backbone_names = preferred[:2] if preferred else available[:2]

    series: dict[str, dict[str, list[float]]] = {}
    irn_records = protocol.generate_records(pipeline.irn())
    series["IRN"] = protocol.stepwise_probabilities(irn_records)
    for name in backbone_names:
        records = protocol.generate_records(pipeline.rec2inf(name))
        series[f"Rec2Inf {name}"] = protocol.stepwise_probabilities(records)
    return series
