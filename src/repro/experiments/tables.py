"""Regeneration of every table in the paper's evaluation section (§IV).

Each function returns a list of dict rows (one per table row); use
:func:`repro.experiments.reporting.format_table` to render them.  Absolute
numbers differ from the paper (synthetic corpora, NumPy training budgets) but
the orderings the paper claims are expected to hold; EXPERIMENTS.md records
both sides.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pim import MaskType
from repro.evaluation.metrics import hit_ratio_at_k, mean_reciprocal_rank
from repro.evaluation.nextitem import evaluate_next_item
from repro.evaluation.protocol import EvaluationInstance
from repro.experiments.config import PAPER_HYPERPARAMETERS, ExperimentConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.models.base import SequentialRecommender
from repro.core.rec2inf import Rec2Inf
from repro.core.irn import IRN

__all__ = [
    "table1_dataset_statistics",
    "table2_evaluator_selection",
    "table3_main_comparison",
    "table4_next_item",
    "table5_mask_ablation",
    "table6_hyperparameters",
    "table7_case_study",
]


# --------------------------------------------------------------------------- #
# Table I — dataset statistics
# --------------------------------------------------------------------------- #
def table1_dataset_statistics(configs: Sequence[ExperimentConfig]) -> list[dict[str, object]]:
    """Users / items / interactions / density / avg. items per user per dataset."""
    rows = []
    for config in configs:
        corpus = config.build_corpus()
        rows.append(corpus.statistics().as_row())
    return rows


# --------------------------------------------------------------------------- #
# Table II — evaluator selection
# --------------------------------------------------------------------------- #
def table2_evaluator_selection(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """HR@20 / MRR of every evaluator candidate; the best becomes the evaluator."""
    selection = pipeline.evaluator_selection
    rows = []
    for name, metrics in selection.scores.items():
        rows.append(
            {
                "dataset": pipeline.split.corpus.name,
                "method": name,
                "hr@20": round(metrics["hr@20"], 4),
                "mrr": round(metrics["mrr"], 4),
                "selected": name == selection.best_name(),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table III — main comparison
# --------------------------------------------------------------------------- #
def table3_main_comparison(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """SR / IoI / IoR / log(PPL) for Pf2Inf, vanilla, Rec2Inf and IRN (M = 20)."""
    protocol = pipeline.protocol()
    rows = []
    for label, framework in pipeline.frameworks_for_comparison().items():
        result = protocol.evaluate(framework, name=label)
        row: dict[str, object] = {"dataset": pipeline.split.corpus.name}
        row.update(result.as_row())
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table IV — next-item accuracy of vanilla vs. IRS-adapted models
# --------------------------------------------------------------------------- #
def _rec2inf_rank(
    adapted: Rec2Inf, history: list[int], target: int, objective: int, user_index: int
) -> int:
    """Rank of the true next item under the Rec2Inf re-ranked recommendation list.

    The top-``k`` backbone candidates are re-sorted by distance to the
    objective; items outside the candidate set keep their backbone order
    below the candidates.  This models the ranking the user actually sees
    under the IRS adaptation.
    """
    backbone = adapted.backbone
    assert adapted.distance is not None
    candidates = backbone.top_k(history, adapted.candidate_k, user_index=user_index)
    distances = adapted.distance.distances_to(objective)
    reranked = sorted(candidates, key=lambda item: (distances[item], candidates.index(item)))
    if target in reranked:
        return reranked.index(target) + 1
    backbone_rank = backbone.rank_of(history, target, user_index=user_index)
    # The target sits below every re-ranked candidate; its relative order among
    # non-candidates is unchanged.
    return max(backbone_rank, len(reranked) + 1)


def _irn_rank_with_objective(
    model: IRN, history: list[int], target: int, objective: int, user_index: int
) -> int:
    scores = model.score_with_objective(history, objective, user_index=user_index).copy()
    return int(np.sum(scores > scores[target])) + 1


def table4_next_item(
    pipeline: ExperimentPipeline, k: int = 20
) -> list[dict[str, object]]:
    """HR@20 / MRR of next-item RS vs. the same models under the IRS framework."""
    split = pipeline.split
    protocol = pipeline.protocol()
    dataset_name = split.corpus.name
    rows: list[dict[str, object]] = []

    # Vanilla next-item recommenders (plus the evaluator candidates' scores).
    sequential_models: dict[str, SequentialRecommender] = dict(pipeline.baselines)
    if not pipeline.config.use_markov_evaluator:
        sequential_models.setdefault("Bert4Rec", pipeline.evaluator.model)
    for name, model in sequential_models.items():
        result = evaluate_next_item(
            model,
            split,
            k=k,
            max_instances=pipeline.config.max_eval_instances,
            num_workers=pipeline.config.num_workers,
            shard_backend=pipeline.config.shard_backend,
        )
        rows.append(
            {
                "dataset": dataset_name,
                "group": "Next-item RS",
                "method": name,
                f"hr@{k}": round(result.hit_ratio, 4),
                "mrr": round(result.mrr, 4),
            }
        )

    # IRS-adapted versions: the ranking each framework would actually show,
    # evaluated against the held-out next item (objective sampled as in §IV-B1).
    instances: list[EvaluationInstance] = protocol.instances
    target_by_user = {t.user_index: t.target for t in split.test}

    for name in pipeline.baselines:
        adapted = pipeline.rec2inf(name)
        ranks = []
        for instance in instances:
            target = target_by_user.get(instance.user_index)
            if target is None:
                continue
            ranks.append(
                _rec2inf_rank(
                    adapted,
                    list(instance.history),
                    target,
                    instance.objective,
                    instance.user_index,
                )
            )
        if not ranks:
            continue
        rows.append(
            {
                "dataset": dataset_name,
                "group": "IRS",
                "method": name,
                f"hr@{k}": round(hit_ratio_at_k(ranks, k=k), 4),
                "mrr": round(mean_reciprocal_rank(ranks), 4),
            }
        )

    irn = pipeline.irn()
    ranks = []
    for instance in instances:
        target = target_by_user.get(instance.user_index)
        if target is None:
            continue
        ranks.append(
            _irn_rank_with_objective(
                irn, list(instance.history), target, instance.objective, instance.user_index
            )
        )
    rows.append(
        {
            "dataset": dataset_name,
            "group": "IRS",
            "method": "IRN",
            f"hr@{k}": round(hit_ratio_at_k(ranks, k=k), 4),
            "mrr": round(mean_reciprocal_rank(ranks), 4),
        }
    )
    return rows


# --------------------------------------------------------------------------- #
# Table V — mask ablation
# --------------------------------------------------------------------------- #
def table5_mask_ablation(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """Compare PIM Type 1 (causal), Type 2 (uniform w_t) and Type 3 (personalized)."""
    protocol = pipeline.protocol()
    rows = []
    for mask_type, label in [
        (MaskType.CAUSAL, "Type 1 (no objective)"),
        (MaskType.OBJECTIVE, "Type 2 (uniform w_t)"),
        (MaskType.PERSONALIZED, "Type 3 (personalized r_u w_t)"),
    ]:
        model = pipeline.irn(mask_type=mask_type)
        result = protocol.evaluate(model, name=label)
        row: dict[str, object] = {"dataset": pipeline.split.corpus.name, "mask": label}
        row.update({k: v for k, v in result.as_row().items() if k != "framework"})
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table VI — hyperparameters
# --------------------------------------------------------------------------- #
def table6_hyperparameters(pipeline: ExperimentPipeline | None = None) -> list[dict[str, object]]:
    """The paper's hyperparameter grid (Table VI) plus this repo's effective values."""
    rows = [dict(row) for row in PAPER_HYPERPARAMETERS]
    if pipeline is not None:
        config = pipeline.config
        effective = {
            "l_max": config.l_max,
            "l_min": config.l_min,
            "batch_size": 64,
            "lr": config.irn_learning_rate,
            "d": config.embedding_dim,
            "d_prime": config.irn_user_dim,
            "L": config.irn_layers,
            "w_t": config.irn_objective_weight,
            "h": config.irn_heads,
        }
        for row in rows:
            row["this_repro"] = effective.get(str(row["name"]), "")
    return rows


# --------------------------------------------------------------------------- #
# Table VII — case study
# --------------------------------------------------------------------------- #
def table7_case_study(
    pipeline: ExperimentPipeline, instance_index: int | None = None
) -> list[dict[str, object]]:
    """One concrete influence path with item genres (the genre-shift example).

    The paper's Table VII presents an illustrative *successful* persuasion
    (the path ends at the objective item).  When ``instance_index`` is None
    the first evaluation instance whose IRN path reaches the objective is
    selected (falling back to the first instance if none succeeds within the
    scan window); pass an explicit index to inspect a specific user instead.
    """
    split = pipeline.split
    corpus = split.corpus
    protocol = pipeline.protocol()
    irn = pipeline.irn()
    instances = protocol.instances
    max_length = pipeline.config.max_path_length

    def _path_for(candidate: EvaluationInstance) -> list[int]:
        return irn.generate_path(
            list(candidate.history),
            candidate.objective,
            user_index=candidate.user_index,
            max_length=max_length,
        )

    if instance_index is None:
        instance, path = instances[0], None
        for candidate in instances[:25]:
            candidate_path = _path_for(candidate)
            if candidate.objective in candidate_path:
                instance, path = candidate, candidate_path
                break
        if path is None:
            path = _path_for(instance)
    else:
        instance = instances[instance_index % len(instances)]
        path = _path_for(instance)
    history = list(instance.history)

    def genre_string(item: int) -> str:
        genres = corpus.item_genres(item)
        return ", ".join(genres) if genres else "-"

    rows: list[dict[str, object]] = [
        {
            "role": "history (last item)",
            "item": str(corpus.vocab.item(history[-1])),
            "genres": genre_string(history[-1]),
        }
    ]
    for step, item in enumerate(path, start=1):
        role = "objective *" if item == instance.objective else f"path step {step}"
        rows.append(
            {"role": role, "item": str(corpus.vocab.item(item)), "genres": genre_string(item)}
        )
    if instance.objective not in path:
        rows.append(
            {
                "role": "objective (not reached)",
                "item": str(corpus.vocab.item(instance.objective)),
                "genres": genre_string(instance.objective),
            }
        )
    return rows
