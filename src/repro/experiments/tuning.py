"""Hyper-parameter grid search (the tuning procedure of §IV-D6).

The paper finds its hyperparameters (Table VI) "using grid search" on the
validation split.  This module provides that procedure for any recommender in
the package:

* :func:`grid_search` — exhaustively (or up to ``max_combinations``) trains a
  model factory over the cartesian product of a parameter grid and scores
  each candidate on the validation/test data.
* :func:`irn_grid_search` — convenience wrapper with the IRN-specific
  defaults (selection by validation perplexity, i.e. the training objective
  of Eq. 8-9, falling back to held-out MRR for non-neural models).

Scores, parameters and the selected optimum are returned as plain rows so
they can be rendered with :func:`repro.experiments.reporting.format_table`
or dumped next to the Table VI report.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.irn import IRN
from repro.data.splitting import DatasetSplit
from repro.evaluation.nextitem import evaluate_next_item
from repro.models.base import NeuralSequentialRecommender, SequentialRecommender
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

__all__ = ["GridSearchCandidate", "GridSearchResult", "grid_search", "irn_grid_search"]

_LOGGER = get_logger("experiments.tuning")

#: metrics where larger values are better
_MAXIMISE = {"hr", "mrr"}
#: metrics where smaller values are better
_MINIMISE = {"validation_loss"}


@dataclass(frozen=True)
class GridSearchCandidate:
    """One evaluated point of the grid."""

    parameters: dict[str, object]
    score: float
    metric: str

    def as_row(self) -> dict[str, object]:
        """Flat row: every swept parameter plus the selection score."""
        row: dict[str, object] = dict(self.parameters)
        row[self.metric] = round(self.score, 4) if math.isfinite(self.score) else self.score
        return row


@dataclass
class GridSearchResult:
    """All evaluated candidates plus the selected optimum."""

    metric: str
    candidates: list[GridSearchCandidate] = field(default_factory=list)

    @property
    def best(self) -> GridSearchCandidate:
        """The candidate with the best score under the selection metric."""
        if not self.candidates:
            raise ConfigurationError("the grid search evaluated no candidates")
        if self.metric in _MINIMISE:
            return min(self.candidates, key=lambda candidate: candidate.score)
        return max(self.candidates, key=lambda candidate: candidate.score)

    @property
    def best_parameters(self) -> dict[str, object]:
        """Parameters of the best candidate."""
        return dict(self.best.parameters)

    def rows(self) -> list[dict[str, object]]:
        """One row per candidate, best first."""
        ordered = sorted(
            self.candidates,
            key=lambda candidate: candidate.score,
            reverse=self.metric not in _MINIMISE,
        )
        return [candidate.as_row() for candidate in ordered]


def _score(
    model: SequentialRecommender,
    split: DatasetSplit,
    metric: str,
    max_instances: int | None,
) -> float:
    if metric == "validation_loss":
        if not isinstance(model, NeuralSequentialRecommender) or not model.training_history:
            raise ConfigurationError(
                "validation_loss selection needs a trained NeuralSequentialRecommender"
            )
        losses = [
            record["validation_loss"]
            for record in model.training_history
            if math.isfinite(record["validation_loss"])
        ]
        if not losses:
            # No validation split: fall back to the final training loss.
            losses = [record["train_loss"] for record in model.training_history]
        return float(min(losses))
    result = evaluate_next_item(model, split, max_instances=max_instances)
    if metric == "hr":
        return result.hit_ratio
    if metric == "mrr":
        return result.mrr
    raise ConfigurationError(f"unknown selection metric '{metric}'")


def grid_search(
    factory: Callable[..., SequentialRecommender],
    split: DatasetSplit,
    grid: Mapping[str, Sequence[object]],
    metric: str = "mrr",
    base_parameters: Mapping[str, object] | None = None,
    max_combinations: int | None = None,
    max_instances: int | None = None,
) -> GridSearchResult:
    """Exhaustive grid search over ``grid`` for any recommender factory.

    Parameters
    ----------
    factory:
        Callable returning an *unfitted* recommender; called as
        ``factory(**base_parameters, **point)`` for every grid point.
    split:
        The dataset split; models are fitted on its training sequences and
        scored per ``metric``.
    grid:
        Mapping from parameter name to the sequence of values to sweep.
    metric:
        ``"validation_loss"`` (minimised; neural models only, the paper's
        IRN selection criterion), ``"hr"`` or ``"mrr"`` (maximised, computed
        on the held-out next-item task).
    base_parameters:
        Fixed keyword arguments shared by every candidate.
    max_combinations:
        Optional cap on the number of evaluated grid points (taken in
        cartesian-product order) to bound the search budget.
    max_instances:
        Cap on evaluation users for the hr/mrr metrics.
    """
    if not grid:
        raise ConfigurationError("grid_search needs a non-empty parameter grid")
    if metric not in _MAXIMISE | _MINIMISE:
        raise ConfigurationError(f"unknown selection metric '{metric}'")
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"grid parameter '{name}' has no values to sweep")
    if max_combinations is not None and max_combinations <= 0:
        raise ConfigurationError("max_combinations must be positive")

    base = dict(base_parameters or {})
    names = list(grid)
    combinations = itertools.product(*(grid[name] for name in names))
    result = GridSearchResult(metric=metric)
    for count, values in enumerate(combinations):
        if max_combinations is not None and count >= max_combinations:
            _LOGGER.info("grid search stopped at the %d-combination budget", max_combinations)
            break
        point = dict(zip(names, values))
        _LOGGER.info("grid search candidate %d: %s", count + 1, point)
        model = factory(**{**base, **point})
        model.fit(split)
        score = _score(model, split, metric, max_instances)
        result.candidates.append(
            GridSearchCandidate(parameters=point, score=score, metric=metric)
        )
    if not result.candidates:
        raise ConfigurationError("the grid search evaluated no candidates")
    _LOGGER.info(
        "grid search best (%s=%.4f): %s", metric, result.best.score, result.best_parameters
    )
    return result


def irn_grid_search(
    split: DatasetSplit,
    grid: Mapping[str, Sequence[object]] | None = None,
    metric: str = "validation_loss",
    base_parameters: Mapping[str, object] | None = None,
    max_combinations: int | None = None,
    max_instances: int | None = None,
) -> GridSearchResult:
    """Grid search over IRN hyperparameters (the paper's Table VI procedure).

    The default grid sweeps a small subset of the paper's ranges that matters
    most at this repo's scale (embedding size, depth and the objective mask
    weight); pass an explicit ``grid`` for a larger sweep.
    """
    default_grid: dict[str, Sequence[object]] = {
        "embedding_dim": (16, 32),
        "num_layers": (1, 2),
        "objective_weight": (0.5, 1.0),
    }
    return grid_search(
        IRN,
        split,
        grid or default_grid,
        metric=metric,
        base_parameters=base_parameters,
        max_combinations=max_combinations,
        max_instances=max_instances,
    )
