"""Experiment configuration, runners and table/figure regeneration.

Every table and figure of the paper's evaluation section (§IV) has a
regeneration function here:

======================  =====================================================
Paper artefact          Function
======================  =====================================================
Table I                 :func:`~repro.experiments.tables.table1_dataset_statistics`
Table II                :func:`~repro.experiments.tables.table2_evaluator_selection`
Table III               :func:`~repro.experiments.tables.table3_main_comparison`
Table IV                :func:`~repro.experiments.tables.table4_next_item`
Table V                 :func:`~repro.experiments.tables.table5_mask_ablation`
Table VI                :func:`~repro.experiments.tables.table6_hyperparameters`
Table VII               :func:`~repro.experiments.tables.table7_case_study`
Figure 6                :func:`~repro.experiments.figures.figure6_success_vs_length`
Figure 7                :func:`~repro.experiments.figures.figure7_aggressiveness`
Figure 8                :func:`~repro.experiments.figures.figure8_impressionability_distribution`
Figure 9                :func:`~repro.experiments.figures.figure9_stepwise_evolution`
======================  =====================================================

All of them consume an :class:`~repro.experiments.pipeline.ExperimentPipeline`,
which lazily builds (and caches) the dataset split, the IRS evaluator, the
baseline recommenders and the IRN model for one dataset configuration.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.reporting import format_series, format_table
from repro.experiments import ablations, extensions, figures, tables, tuning

__all__ = [
    "ExperimentConfig",
    "ExperimentPipeline",
    "ablations",
    "extensions",
    "figures",
    "format_series",
    "format_table",
    "tables",
    "tuning",
]
