"""Experiments for the paper's future-work extensions implemented in this repo.

These are *not* tables or figures of the paper; they exercise the extension
subpackages end to end on the same pipeline used for the reproduction:

* :func:`extension_interactive_comparison` — the stepwise user-response
  simulation (future-work direction 4): every framework faces the same
  simulated users who may reject recommendations.
* :func:`extension_kg_comparison` — the knowledge-graph path-finding
  recommender (direction 1) against the plain Pf2Inf baselines and IRN under
  the standard offline protocol.
* :func:`extension_category_objectives` — objective sets (direction 3):
  success rate of leading users toward a whole category instead of a single
  item.
* :func:`extension_path_quality_report` — beyond-accuracy diagnostics
  (genre smoothness, diversity, novelty, coverage) per framework.
"""

from __future__ import annotations

from repro.analysis.reports import framework_path_report
from repro.core.distance import ItemDistance
from repro.core.objectives import CategoryObjective, generate_path_to_set, set_success_rate
from repro.experiments.pipeline import ExperimentPipeline
from repro.kg.kg2inf import Kg2Inf
from repro.simulation.experiment import run_interactive_experiment
from repro.simulation.policies import ExcludeRejectedPolicy
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

__all__ = [
    "extension_interactive_comparison",
    "extension_kg_comparison",
    "extension_category_objectives",
    "extension_path_quality_report",
]

_LOGGER = get_logger("experiments.extensions")


def _comparison_frameworks(pipeline: ExperimentPipeline, include_vanilla: bool = True):
    """A compact framework set: IRN, two Rec2Inf backbones and one vanilla baseline."""
    preferred = ["GRU4Rec", "SASRec", "Caser", "POP", "Markov", "BPR"]
    available = [name for name in preferred if name in pipeline.baselines]
    if not available:
        available = list(pipeline.baselines)
    frameworks = {"IRN": pipeline.irn()}
    for name in available[:2]:
        frameworks[f"Rec2Inf {name}"] = pipeline.rec2inf(name)
    if include_vanilla and available:
        frameworks[f"Vanilla {available[0]}"] = pipeline.vanilla(available[0])
    return frameworks


# --------------------------------------------------------------------------- #
def extension_interactive_comparison(
    pipeline: ExperimentPipeline,
    max_steps: int | None = None,
    patience: int = 3,
) -> list[dict[str, object]]:
    """Interactive (accept/reject) evaluation of the main frameworks."""
    protocol = pipeline.protocol()
    frameworks = _comparison_frameworks(pipeline)
    _LOGGER.info("interactive extension: %d frameworks, %d users", len(frameworks), len(protocol.instances))
    comparison = run_interactive_experiment(
        frameworks,
        protocol.instances,
        pipeline.evaluator,
        policy=ExcludeRejectedPolicy(),
        max_steps=max_steps or pipeline.config.max_path_length,
        patience=patience,
        seed=pipeline.config.seed,
    )
    rows = []
    for row in comparison.rows():
        full_row: dict[str, object] = {"dataset": pipeline.split.corpus.name}
        full_row.update(row)
        rows.append(full_row)
    return rows


def extension_kg_comparison(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """Knowledge-graph subgraph expansion vs. plain path-finding vs. IRN."""
    protocol = pipeline.protocol()
    frameworks = {
        "Pf2Inf Dijkstra": pipeline.pf2inf("dijkstra"),
        "Kg2Inf (subgraph expansion)": Kg2Inf().fit(pipeline.split),
        "IRN": pipeline.irn(),
    }
    rows = []
    for label, framework in frameworks.items():
        result = protocol.evaluate(framework, name=label)
        row: dict[str, object] = {"dataset": pipeline.split.corpus.name}
        row.update(result.as_row())
        rows.append(row)
    return rows


def extension_category_objectives(
    pipeline: ExperimentPipeline, max_genres: int = 4
) -> list[dict[str, object]]:
    """Success rate of influencing users toward whole categories (genres)."""
    corpus = pipeline.split.corpus
    if not corpus.genre_names:
        raise ConfigurationError("category objectives need genre metadata")
    protocol = pipeline.protocol()
    distance = (
        ItemDistance.from_genres(corpus) if corpus.item_genre_matrix is not None else None
    )
    irn = pipeline.irn()
    max_length = pipeline.config.max_path_length

    rows: list[dict[str, object]] = []
    for genre in corpus.genre_names[:max_genres]:
        objective = CategoryObjective(genre, min_interactions=pipeline.config.min_objective_interactions)
        records = []
        for instance in protocol.instances:
            records.append(
                generate_path_to_set(
                    irn,
                    instance.history,
                    objective,
                    corpus,
                    distance=distance,
                    user_index=instance.user_index,
                    max_length=max_length,
                )
            )
        rows.append(
            {
                "dataset": corpus.name,
                "objective": objective.name,
                "members": len(objective.members(corpus)),
                f"SR{max_length}": round(set_success_rate(records), 4),
                "mean_path_length": round(
                    sum(len(record.path) for record in records) / len(records), 2
                ),
            }
        )
    return rows


def extension_path_quality_report(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """Genre smoothness / diversity / novelty / coverage per framework."""
    protocol = pipeline.protocol()
    frameworks = _comparison_frameworks(pipeline)
    records = {
        name: protocol.generate_records(framework) for name, framework in frameworks.items()
    }
    corpus = pipeline.split.corpus
    distance = (
        ItemDistance.from_genres(corpus) if corpus.item_genre_matrix is not None else None
    )
    rows = []
    for row in framework_path_report(records, corpus, distance=distance):
        full_row: dict[str, object] = {"dataset": corpus.name}
        full_row.update(row)
        rows.append(full_row)
    return rows
