"""Plain-text rendering of result tables and figure series.

No plotting dependency is available offline, so figures are reported as
aligned numeric series; they can be pasted into any plotting tool.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of dict rows as an aligned text table.

    Columns are the union of all keys in first-appearance order.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(value.ljust(width) for value, width in zip(line, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x_label: str = "step", title: str | None = None) -> str:
    """Render named numeric series (a "figure") as an aligned text table."""
    if not series:
        return f"{title}\n(empty)" if title else "(empty)"
    length = max(len(values) for values in series.values())
    rows = []
    for index in range(length):
        row: dict[str, object] = {x_label: index + 1}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)
