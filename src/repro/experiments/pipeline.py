"""The experiment pipeline: lazily builds and caches every trained component.

Training the NumPy models is the expensive part of regenerating the paper's
tables, and several tables/figures share the same trained models (the
evaluator, the baselines, IRN).  :class:`ExperimentPipeline` builds each of
them once per configuration and hands them to the table/figure functions.
"""

from __future__ import annotations


from repro.core.base import InfluentialRecommender
from repro.core.irn import IRN
from repro.core.pf2inf import Pf2Inf
from repro.core.pim import MaskType
from repro.core.rec2inf import Rec2Inf
from repro.core.vanilla import VanillaInfluential
from repro.data.splitting import DatasetSplit
from repro.evaluation.evaluator import EvaluatorSelection, IRSEvaluator, select_evaluator
from repro.evaluation.protocol import IRSEvaluationProtocol
from repro.experiments.config import ExperimentConfig
from repro.models.base import SequentialRecommender
from repro.models.bert4rec import Bert4Rec
from repro.models.bpr import BPR
from repro.models.caser import Caser
from repro.models.gru4rec import GRU4Rec
from repro.models.markov import MarkovChainRecommender
from repro.models.pop import Popularity
from repro.models.sasrec import SASRec
from repro.models.transrec import TransRec
from repro.utils.logging import get_logger

__all__ = ["ExperimentPipeline"]

_LOGGER = get_logger("experiments.pipeline")


class ExperimentPipeline:
    """Builds and caches the split, evaluator, baselines, IRN and protocol."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._split: DatasetSplit | None = None
        self._evaluator_selection: EvaluatorSelection | None = None
        self._baselines: dict[str, SequentialRecommender] | None = None
        self._irns: dict[tuple[MaskType, float], IRN] = {}
        self._protocols: dict[int, IRSEvaluationProtocol] = {}

    # ------------------------------------------------------------------ #
    # Data
    # ------------------------------------------------------------------ #
    @property
    def split(self) -> DatasetSplit:
        """The (cached) train/validation/test split."""
        if self._split is None:
            self._split = self.config.load_split()
        return self._split

    # ------------------------------------------------------------------ #
    # Evaluator (Table II)
    # ------------------------------------------------------------------ #
    def _evaluator_candidates(self) -> dict[str, SequentialRecommender]:
        config = self.config
        if config.use_markov_evaluator:
            return {"Markov": MarkovChainRecommender()}
        common = dict(
            embedding_dim=config.embedding_dim,
            epochs=config.evaluator_epochs,
            max_sequence_length=config.max_sequence_length,
            seed=config.seed,
        )
        return {
            "GRU4Rec": GRU4Rec(hidden_size=config.embedding_dim, **common),
            "Caser": Caser(**common),
            "SASRec": SASRec(**common),
            "Bert4Rec": Bert4Rec(**common),
        }

    @property
    def evaluator_selection(self) -> EvaluatorSelection:
        """Fit the evaluator candidates and select the best one (Table II)."""
        if self._evaluator_selection is None:
            _LOGGER.info("training IRS evaluator candidates for %s", self.config.dataset)
            self._evaluator_selection = select_evaluator(self._evaluator_candidates(), self.split)
        return self._evaluator_selection

    @property
    def evaluator(self) -> IRSEvaluator:
        """The selected IRS evaluator."""
        return self.evaluator_selection.evaluator

    # ------------------------------------------------------------------ #
    # Baseline recommenders (Rec2Inf backbones / vanilla baselines)
    # ------------------------------------------------------------------ #
    def _baseline_factories(self) -> dict[str, SequentialRecommender]:
        config = self.config
        if config.light_baselines:
            return {
                "POP": Popularity(),
                "Markov": MarkovChainRecommender(),
                "BPR": BPR(embedding_dim=config.embedding_dim, epochs=2, seed=config.seed),
            }
        common = dict(
            embedding_dim=config.embedding_dim,
            epochs=config.baseline_epochs,
            max_sequence_length=config.max_sequence_length,
            seed=config.seed,
        )
        return {
            "POP": Popularity(),
            "BPR": BPR(
                embedding_dim=config.embedding_dim,
                epochs=config.baseline_epochs,
                seed=config.seed,
            ),
            "TransRec": TransRec(
                embedding_dim=config.embedding_dim,
                epochs=config.baseline_epochs,
                seed=config.seed,
            ),
            "GRU4Rec": GRU4Rec(hidden_size=config.embedding_dim, **common),
            "Caser": Caser(**common),
            "SASRec": SASRec(**common),
        }

    @property
    def baselines(self) -> dict[str, SequentialRecommender]:
        """All fitted baseline recommenders, keyed by their table name."""
        if self._baselines is None:
            self._baselines = {}
            for name, model in self._baseline_factories().items():
                _LOGGER.info("fitting baseline %s", name)
                self._baselines[name] = model.fit(self.split)
        return self._baselines

    # ------------------------------------------------------------------ #
    # IRS frameworks
    # ------------------------------------------------------------------ #
    def irn(
        self,
        mask_type: MaskType = MaskType.PERSONALIZED,
        objective_weight: float | None = None,
    ) -> IRN:
        """A fitted IRN with the given PIM variant (cached per variant)."""
        config = self.config
        weight = config.irn_objective_weight if objective_weight is None else objective_weight
        key = (MaskType(mask_type), float(weight))
        if key not in self._irns:
            _LOGGER.info("training IRN (mask_type=%s, w_t=%.2f)", MaskType(mask_type).name, weight)
            model = IRN(
                embedding_dim=config.embedding_dim,
                user_dim=config.irn_user_dim,
                num_heads=config.irn_heads,
                num_layers=config.irn_layers,
                objective_weight=weight,
                objective_logit_scale=config.irn_objective_logit_scale,
                mask_type=MaskType(mask_type),
                item2vec_init=config.item2vec_init,
                epochs=config.irn_epochs,
                learning_rate=config.irn_learning_rate,
                max_sequence_length=config.max_sequence_length,
                seed=config.seed,
            )
            self._irns[key] = model.fit(self.split)
        return self._irns[key]

    def pf2inf(self, method: str = "dijkstra") -> Pf2Inf:
        """A fitted path-finding framework."""
        return Pf2Inf(method=method).fit(self.split)

    def rec2inf(self, backbone_name: str, candidate_k: int | None = None) -> Rec2Inf:
        """The Rec2Inf adaptation of one fitted baseline."""
        backbone = self.baselines[backbone_name]
        adapted = Rec2Inf(
            backbone,
            candidate_k=candidate_k or self.config.candidate_k,
            fit_backbone=False,
        )
        return adapted.fit(self.split)

    def vanilla(self, backbone_name: str) -> VanillaInfluential:
        """The vanilla (objective-agnostic) adaptation of one fitted baseline."""
        adapted = VanillaInfluential(self.baselines[backbone_name], fit_backbone=False)
        return adapted.fit(self.split)

    def frameworks_for_comparison(self) -> dict[str, InfluentialRecommender]:
        """Every framework of Table III, keyed by its row label."""
        frameworks: dict[str, InfluentialRecommender] = {
            "Pf2Inf Dijkstra": self.pf2inf("dijkstra"),
            "Pf2Inf MST": self.pf2inf("mst"),
        }
        for name in self.baselines:
            frameworks[f"Vanilla {name}"] = self.vanilla(name)
        for name in self.baselines:
            frameworks[f"Rec2Inf {name}"] = self.rec2inf(name)
        frameworks["IRN"] = self.irn()
        return frameworks

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def protocol(self, max_length: int | None = None) -> IRSEvaluationProtocol:
        """The IRS evaluation protocol for a given maximum path length ``M``."""
        length = max_length or self.config.max_path_length
        if length not in self._protocols:
            self._protocols[length] = IRSEvaluationProtocol(
                self.split,
                self.evaluator,
                max_length=length,
                min_objective_interactions=self.config.min_objective_interactions,
                max_instances=self.config.max_eval_instances,
                history_window=self.config.history_window,
                rollout_chunk_size=self.config.rollout_chunk_size,
                num_workers=self.config.num_workers,
                shard_backend=self.config.shard_backend,
                seed=self.config.seed,
            )
        return self._protocols[length]

    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        """A small description of the pipeline state (for logging / examples)."""
        stats = self.split.corpus.statistics()
        return {
            "dataset": stats.name,
            "users": stats.num_users,
            "items": stats.num_items,
            "interactions": stats.num_interactions,
            "train_sequences": len(self.split.train),
            "test_instances": len(self.split.test),
            "seed": self.config.seed,
        }
