"""Ablation experiments for the design choices called out in DESIGN.md.

Each function takes a shared :class:`~repro.experiments.pipeline.ExperimentPipeline`
and returns flat table rows, mirroring the style of
:mod:`repro.experiments.tables`:

* :func:`ablation_embedding_init` — random vs. item2vec-initialised item
  embeddings (§III-D1 motivates pre-trained initialisation).
* :func:`ablation_padding_scheme` — pre- vs. post-padding of the training
  windows (§III-D5 argues for pre-padding so the objective sits at a fixed
  position).
* :func:`ablation_decoding` — greedy Algorithm 1 vs. beam-search planning on
  the *same* trained IRN (the greedy-gets-stuck limitation discussed for
  Rec2Inf in §III-C applies to any stepwise decoder).
"""

from __future__ import annotations

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.experiments.pipeline import ExperimentPipeline
from repro.utils.logging import get_logger

__all__ = [
    "ablation_embedding_init",
    "ablation_padding_scheme",
    "ablation_decoding",
]

_LOGGER = get_logger("experiments.ablations")


def _irn_variant(pipeline: ExperimentPipeline, **overrides) -> IRN:
    """Build and fit an IRN sharing the pipeline's configuration, with overrides."""
    config = pipeline.config
    parameters = dict(
        embedding_dim=config.embedding_dim,
        user_dim=config.irn_user_dim,
        num_heads=config.irn_heads,
        num_layers=config.irn_layers,
        objective_weight=config.irn_objective_weight,
        objective_logit_scale=config.irn_objective_logit_scale,
        item2vec_init=config.item2vec_init,
        epochs=config.irn_epochs,
        learning_rate=config.irn_learning_rate,
        max_sequence_length=config.max_sequence_length,
        seed=config.seed,
    )
    parameters.update(overrides)
    model = IRN(**parameters)
    return model.fit(pipeline.split)


def _evaluate(pipeline: ExperimentPipeline, variant_name: str, recommender) -> dict[str, object]:
    protocol = pipeline.protocol()
    result = protocol.evaluate(recommender, name=variant_name)
    row: dict[str, object] = {"dataset": pipeline.split.corpus.name, "variant": variant_name}
    row.update({key: value for key, value in result.as_row().items() if key != "framework"})
    return row


# --------------------------------------------------------------------------- #
def ablation_embedding_init(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """Compare random item-embedding initialisation against item2vec pre-training."""
    rows = []
    _LOGGER.info("embedding-init ablation: training IRN with random initialisation")
    random_init = _irn_variant(pipeline, item2vec_init=False)
    rows.append(_evaluate(pipeline, "random init", random_init))

    _LOGGER.info("embedding-init ablation: training IRN with item2vec initialisation")
    pretrained = (
        pipeline.irn()
        if pipeline.config.item2vec_init
        else _irn_variant(pipeline, item2vec_init=True)
    )
    rows.append(_evaluate(pipeline, "item2vec init", pretrained))
    return rows


def ablation_padding_scheme(pipeline: ExperimentPipeline) -> list[dict[str, object]]:
    """Compare the paper's pre-padding against post-padding of training windows.

    With post-padding the objective item no longer sits at the fixed final
    column of the window, so the PIM's objective column points at padding for
    short sequences — the model effectively loses part of the objective
    signal during training, which is exactly the paper's argument for
    pre-padding (§III-D5).
    """
    rows = []
    _LOGGER.info("padding ablation: evaluating the pre-padded IRN")
    rows.append(_evaluate(pipeline, "pre-padding", pipeline.irn()))

    _LOGGER.info("padding ablation: training IRN with post-padding")
    post = _irn_variant(pipeline, padding_scheme="post")
    rows.append(_evaluate(pipeline, "post-padding", post))
    return rows


def ablation_decoding(
    pipeline: ExperimentPipeline, beam_width: int = 4, branch_factor: int = 4
) -> list[dict[str, object]]:
    """Compare greedy Algorithm 1 decoding with beam-search planning.

    Both variants use the *same* trained IRN; only the path decoder differs,
    so the comparison isolates the effect of long-range planning at inference
    time.
    """
    irn = pipeline.irn()
    rows = [_evaluate(pipeline, "greedy (Algorithm 1)", irn)]

    config = pipeline.config
    planner = BeamSearchPlanner(
        irn,
        beam_width=beam_width,
        branch_factor=branch_factor,
        num_workers=config.num_workers,
        shard_backend=config.shard_backend,
        vocab_shards=config.vocab_shards,
    ).fit(pipeline.split)
    rows.append(_evaluate(pipeline, f"beam search (width {beam_width})", planner))
    return rows
