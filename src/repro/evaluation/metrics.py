"""Evaluation metrics (§IV-B2).

The IRS metrics operate on *path records*: for each test user we have the
history ``s_h``, the sampled objective ``i_t`` and the generated influence
path ``s_p``.  All probability terms ``P(i | s)`` come from the
:class:`~repro.evaluation.evaluator.IRSEvaluator`.

* ``SR_M`` — fraction of paths that reach the objective within ``M`` steps (Eq. 11).
* ``IoI_M`` — average increase of ``log P(i_t | ·)`` after the path (Eq. 12).
* ``IoR_M`` — average decrease of the objective's rank after the path (Eq. 13).
* ``log(PPL)`` — average negative log-likelihood of path items, i.e. how
  natural the path is (Eq. 14; lower is smoother).
* ``HR@K`` / ``MRR`` — classic next-item metrics (Eq. 18) used for the
  evaluator selection (Table II) and the Table IV comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.evaluator import IRSEvaluator
    from repro.evaluation.protocol import PathRecord

__all__ = [
    "success_rate",
    "increase_of_interest",
    "increment_of_rank",
    "log_perplexity",
    "hit_ratio_at_k",
    "mean_reciprocal_rank",
]


def _require_records(records: Sequence["PathRecord"]) -> None:
    if not records:
        raise ConfigurationError("no path records to evaluate")


def success_rate(records: Sequence["PathRecord"]) -> float:
    """``SR_M``: fraction of influence paths containing the objective item."""
    _require_records(records)
    hits = sum(1 for record in records if record.objective in record.path)
    return hits / len(records)


def increase_of_interest(records: Sequence["PathRecord"], evaluator: "IRSEvaluator") -> float:
    """``IoI_M``: mean change of ``log P(i_t | s_h ⊕ s_p) - log P(i_t | s_h)``."""
    _require_records(records)
    deltas = []
    for record in records:
        before = evaluator.log_probability(record.objective, record.history)
        after = evaluator.log_probability(
            record.objective, list(record.history) + list(record.path)
        )
        deltas.append(after - before)
    return float(np.mean(deltas))


def increment_of_rank(records: Sequence["PathRecord"], evaluator: "IRSEvaluator") -> float:
    """``IoR_M``: mean rank improvement of the objective after the path.

    Positive values mean the objective climbed the ranking (closer to 1).
    """
    _require_records(records)
    deltas = []
    for record in records:
        before = evaluator.rank(record.objective, record.history)
        after = evaluator.rank(record.objective, list(record.history) + list(record.path))
        deltas.append(-(after - before))
    return float(np.mean(deltas))


def log_perplexity(records: Sequence["PathRecord"], evaluator: "IRSEvaluator") -> float:
    """``log(PPL)``: average negative log-likelihood per path item (Eq. 14).

    Lower values mean the path items are more acceptable to the (simulated)
    user at each step.  Empty paths are skipped.
    """
    _require_records(records)
    per_path: list[float] = []
    for record in records:
        if not record.path:
            continue
        log_probs = evaluator.path_log_probabilities(record.history, record.path)
        per_path.append(-float(np.mean(log_probs)))
    if not per_path:
        raise ConfigurationError("all influence paths are empty; cannot compute PPL")
    return float(np.mean(per_path))


def hit_ratio_at_k(ranks: Sequence[int], k: int = 20) -> float:
    """``HR@K``: fraction of instances whose target ranks within the top ``k``."""
    if not ranks:
        raise ConfigurationError("no ranks provided")
    hits = sum(1 for rank in ranks if rank <= k)
    return hits / len(ranks)


def mean_reciprocal_rank(ranks: Sequence[int]) -> float:
    """``MRR``: mean of ``1 / rank`` over all instances."""
    if not ranks:
        raise ConfigurationError("no ranks provided")
    return float(np.mean([1.0 / rank for rank in ranks]))
