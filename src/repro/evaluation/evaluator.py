"""The IRS Evaluator (§IV-B3).

Because influence paths contain sequence-item interactions that never occur
in the logged dataset, the paper trains an independent next-item recommender
(the best of GRU4Rec / Caser / SASRec / BERT4Rec on the next-item task) and
uses its softmax distribution as ``P(i | s)`` when computing IoI, IoR and
PPL.  :class:`IRSEvaluator` wraps any fitted
:class:`~repro.models.base.SequentialRecommender` for this purpose and
:func:`select_evaluator` reproduces the Table II model-selection step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger

__all__ = ["IRSEvaluator", "EvaluatorSelection", "select_evaluator"]

_LOGGER = get_logger("evaluation.evaluator")


class IRSEvaluator:
    """Probability oracle ``P(i | s)`` backed by a trained next-item model."""

    def __init__(self, model: SequentialRecommender) -> None:
        if model.corpus is None:
            raise ConfigurationError("the evaluator backbone must be fitted first")
        self.model = model

    @property
    def name(self) -> str:
        """Name of the underlying recommender."""
        return self.model.name

    # ------------------------------------------------------------------ #
    def probability(self, item: int, sequence: Sequence[int]) -> float:
        """``P(item | sequence)`` under the evaluator's softmax distribution."""
        probabilities = self.model.probabilities(list(sequence))
        return float(probabilities[item])

    def log_probability(self, item: int, sequence: Sequence[int]) -> float:
        """``log P(item | sequence)`` (clamped away from zero)."""
        return float(np.log(max(self.probability(item, sequence), 1e-12)))

    def rank(self, item: int, sequence: Sequence[int]) -> int:
        """1-based rank of ``item`` given ``sequence``."""
        return self.model.rank_of(list(sequence), item)

    def distribution(self, sequence: Sequence[int]) -> np.ndarray:
        """The full next-item distribution ``D(s)`` (Eq. 17)."""
        return self.model.probabilities(list(sequence))

    # ------------------------------------------------------------------ #
    def path_log_probabilities(
        self, history: Sequence[int], path: Sequence[int]
    ) -> list[float]:
        """``log P(i_k | s_h ⊕ i_<k)`` for every step ``k`` of the path."""
        log_probs: list[float] = []
        sequence = list(history)
        for item in path:
            log_probs.append(self.log_probability(item, sequence))
            sequence.append(item)
        return log_probs

    def objective_log_probabilities(
        self, history: Sequence[int], path: Sequence[int], objective: int
    ) -> list[float]:
        """``log P(i_t | s_h ⊕ i_<k)`` before each step (and after the last).

        Returns ``len(path) + 1`` values: index 0 is the probability given the
        bare history, index ``k`` the probability after ``k`` path items.
        """
        values: list[float] = []
        sequence = list(history)
        values.append(self.log_probability(objective, sequence))
        for item in path:
            sequence.append(item)
            values.append(self.log_probability(objective, sequence))
        return values


@dataclass(frozen=True)
class EvaluatorSelection:
    """Result of the Table II evaluator-selection step."""

    evaluator: IRSEvaluator
    scores: dict[str, dict[str, float]]

    def best_name(self) -> str:
        """Name of the selected (best HR@20) candidate."""
        return self.evaluator.name


def select_evaluator(
    candidates: dict[str, SequentialRecommender],
    split: DatasetSplit,
    fit: bool = True,
) -> EvaluatorSelection:
    """Fit every candidate, score them on the next-item task, keep the best.

    The paper selects by HR@20 (with MRR as tie-breaker); BERT4Rec wins on
    both datasets (Table II).
    """
    from repro.evaluation.nextitem import evaluate_next_item

    if not candidates:
        raise ConfigurationError("select_evaluator needs at least one candidate")
    scores: dict[str, dict[str, float]] = {}
    best_name, best_key = None, (-np.inf, -np.inf)
    for name, model in candidates.items():
        if fit:
            model.fit(split)
        result = evaluate_next_item(model, split)
        scores[name] = {"hr@20": result.hit_ratio, "mrr": result.mrr}
        _LOGGER.info("evaluator candidate %s: HR@20=%.4f MRR=%.4f", name, result.hit_ratio, result.mrr)
        key = (result.hit_ratio, result.mrr)
        if key > best_key:
            best_key, best_name = key, name
    assert best_name is not None
    return EvaluatorSelection(evaluator=IRSEvaluator(candidates[best_name]), scores=scores)
