"""Offline evaluation of influential recommenders (§IV-B of the paper).

* :class:`~repro.evaluation.evaluator.IRSEvaluator` wraps a trained next-item
  recommender and supplies ``P(i | s)`` for sequence-item pairs that never
  occur in the logged data.
* :mod:`~repro.evaluation.metrics` implements SR_M, IoI_M, IoR_M, log(PPL),
  HR@K and MRR.
* :mod:`~repro.evaluation.nextitem` is the classic leave-last-item-out
  next-item protocol (Tables II and IV).
* :mod:`~repro.evaluation.protocol` is the full IRS protocol: objective
  sampling, path generation with Algorithm 1 and metric aggregation
  (Tables III/V, Figures 6/7/9).
* :mod:`~repro.evaluation.aggressiveness` sweeps the aggressiveness degree
  (candidate-set size ``k`` / objective weight ``w_t``) for Figure 7.
"""

from repro.evaluation.evaluator import IRSEvaluator, select_evaluator
from repro.evaluation.metrics import (
    hit_ratio_at_k,
    increase_of_interest,
    increment_of_rank,
    log_perplexity,
    mean_reciprocal_rank,
    success_rate,
)
from repro.evaluation.nextitem import NextItemResult, evaluate_next_item
from repro.evaluation.protocol import (
    EvaluationInstance,
    IRSEvaluationProtocol,
    IRSResult,
    PathRecord,
    sample_objectives,
)

__all__ = [
    "EvaluationInstance",
    "IRSEvaluationProtocol",
    "IRSEvaluator",
    "IRSResult",
    "NextItemResult",
    "PathRecord",
    "evaluate_next_item",
    "hit_ratio_at_k",
    "increase_of_interest",
    "increment_of_rank",
    "log_perplexity",
    "mean_reciprocal_rank",
    "sample_objectives",
    "select_evaluator",
    "success_rate",
]
