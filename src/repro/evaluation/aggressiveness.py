"""Aggressiveness-degree sweeps (§IV-D3, Figure 7).

The aggressiveness degree (AD) of an influential recommender controls how
strongly it pulls toward the objective item:

* for Rec2Inf baselines AD is the candidate-set size ``k`` (``k=1`` is the
  vanilla recommender, ``k=|I|`` can jump straight to the objective);
* for IRN it is the objective mask weight ``w_t``.

Both sweeps reuse the same evaluation protocol so SR and log(PPL) curves are
directly comparable (Figure 7a-d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.irn import IRN
from repro.core.rec2inf import Rec2Inf
from repro.data.splitting import DatasetSplit
from repro.evaluation.protocol import IRSEvaluationProtocol, IRSResult
from repro.models.base import SequentialRecommender

__all__ = ["AggressivenessPoint", "sweep_rec2inf_aggressiveness", "sweep_irn_aggressiveness"]


@dataclass(frozen=True)
class AggressivenessPoint:
    """One (AD level, metrics) point of a Figure 7 curve."""

    framework: str
    level: float
    result: IRSResult

    def as_row(self) -> dict[str, float | str]:
        """Flatten to a table row."""
        row: dict[str, float | str] = {"framework": self.framework, "level": self.level}
        row.update({k: v for k, v in self.result.as_row().items() if k != "framework"})
        return row


def sweep_rec2inf_aggressiveness(
    backbone: SequentialRecommender,
    split: DatasetSplit,
    protocol: IRSEvaluationProtocol,
    levels: Sequence[int] = (10, 20, 30, 40, 50),
) -> list[AggressivenessPoint]:
    """Evaluate a (pre-fitted) Rec2Inf backbone at several candidate-set sizes.

    The backbone is fitted once and shared across levels — only the greedy
    re-ranking changes — matching the paper's setup.
    """
    if backbone.corpus is None:
        backbone.fit(split)
    points: list[AggressivenessPoint] = []
    for level in levels:
        adapted = Rec2Inf(backbone, candidate_k=int(level), fit_backbone=False)
        adapted.fit(split)
        result = protocol.evaluate(adapted, name=f"Rec2Inf-{backbone.name}(k={level})")
        points.append(AggressivenessPoint(framework=f"Rec2Inf-{backbone.name}", level=float(level), result=result))
    return points


def sweep_irn_aggressiveness(
    split: DatasetSplit,
    protocol: IRSEvaluationProtocol,
    levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    irn_factory: Callable[[float], IRN] | None = None,
    retrain: bool = False,
    base_model: IRN | None = None,
) -> list[AggressivenessPoint]:
    """Evaluate IRN at several objective mask weights ``w_t``.

    Two modes are supported:

    * ``retrain=True`` — train a fresh IRN per level (the paper's grid);
      supply ``irn_factory`` to control hyperparameters.
    * ``retrain=False`` (default) — reuse ``base_model`` and only change the
      inference-time mask weight, a cheap approximation that preserves the
      monotone SR-vs-AD shape.
    """
    points: list[AggressivenessPoint] = []
    for level in levels:
        if retrain:
            model = irn_factory(float(level)) if irn_factory else IRN(objective_weight=float(level))
            model.fit(split)
        else:
            if base_model is None or base_model.corpus is None:
                raise ValueError("sweep with retrain=False requires a fitted base_model")
            model = base_model
            model.objective_weight = float(level)
        result = protocol.evaluate(model, name=f"IRN(wt={level})")
        points.append(AggressivenessPoint(framework="IRN", level=float(level), result=result))
    if not retrain and base_model is not None:
        base_model.objective_weight = 1.0
    return points
