"""Leave-last-item-out next-item evaluation (Tables II and IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.splitting import DatasetSplit
from repro.evaluation.metrics import hit_ratio_at_k, mean_reciprocal_rank
from repro.models.base import SequentialRecommender
from repro.shard.executor import ShardedExecutor
from repro.shard.partition import context_key
from repro.utils.exceptions import ConfigurationError

__all__ = ["NextItemResult", "evaluate_next_item"]


@dataclass(frozen=True)
class NextItemResult:
    """HR@K and MRR of one model on the held-out next-item task."""

    model: str
    hit_ratio: float
    mrr: float
    k: int = 20

    def as_row(self) -> dict[str, float | str]:
        """Return the result as a flat table row."""
        return {"model": self.model, f"hr@{self.k}": round(self.hit_ratio, 4), "mrr": round(self.mrr, 4)}


def evaluate_next_item(
    model: SequentialRecommender,
    split: DatasetSplit,
    k: int = 20,
    max_instances: int | None = None,
    num_workers: "int | None" = None,
    shard_backend: "str | None" = None,
) -> NextItemResult:
    """Rank every held-out target item given its user history.

    ``max_instances`` caps the number of evaluated users (useful in smoke
    tests); the paper uses all of them.  With ``num_workers > 1`` the test
    instances hash-partition across worker shards by their
    ``(history, target, user)`` context and each shard ranks its own
    chunked batches; ranks are position-independent, so the merged metrics
    are identical to the serial ones.  ``num_workers=None`` reads
    ``REPRO_NUM_WORKERS``.
    """
    instances = split.test[:max_instances] if max_instances else split.test
    if not instances:
        raise ConfigurationError("the split has no test instances")
    executor = ShardedExecutor(num_workers, shard_backend)

    # Rank in batched chunks: one model forward per chunk for batched models
    # (IRN), a transparent scalar loop for the rest.  Chunking bounds the
    # (chunk, vocab) score matrix the batched path materialises.
    chunk_size = 256

    def rank_shard(_shard: int, shard_instances: list) -> list[int]:
        ranks: list[int] = []
        for start in range(0, len(shard_instances), chunk_size):
            chunk = shard_instances[start : start + chunk_size]
            ranks.extend(
                model.rank_of_batch(
                    [list(instance.history) for instance in chunk],
                    [instance.target for instance in chunk],
                    [instance.user_index for instance in chunk],
                )
            )
        return ranks

    ranks = executor.map_partitioned(
        list(instances),
        [
            context_key(instance.history, instance.target, instance.user_index)
            for instance in instances
        ],
        rank_shard,
    )
    return NextItemResult(
        model=model.name,
        hit_ratio=hit_ratio_at_k(ranks, k=k),
        mrr=mean_reciprocal_rank(ranks),
        k=k,
    )
