"""Leave-last-item-out next-item evaluation (Tables II and IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.splitting import DatasetSplit
from repro.evaluation.metrics import hit_ratio_at_k, mean_reciprocal_rank
from repro.models.base import SequentialRecommender
from repro.utils.exceptions import ConfigurationError

__all__ = ["NextItemResult", "evaluate_next_item"]


@dataclass(frozen=True)
class NextItemResult:
    """HR@K and MRR of one model on the held-out next-item task."""

    model: str
    hit_ratio: float
    mrr: float
    k: int = 20

    def as_row(self) -> dict[str, float | str]:
        """Return the result as a flat table row."""
        return {"model": self.model, f"hr@{self.k}": round(self.hit_ratio, 4), "mrr": round(self.mrr, 4)}


def evaluate_next_item(
    model: SequentialRecommender,
    split: DatasetSplit,
    k: int = 20,
    max_instances: int | None = None,
) -> NextItemResult:
    """Rank every held-out target item given its user history.

    ``max_instances`` caps the number of evaluated users (useful in smoke
    tests); the paper uses all of them.
    """
    instances = split.test[:max_instances] if max_instances else split.test
    if not instances:
        raise ConfigurationError("the split has no test instances")
    # Rank in batched chunks: one model forward per chunk for batched models
    # (IRN), a transparent scalar loop for the rest.  Chunking bounds the
    # (chunk, vocab) score matrix the batched path materialises.
    ranks: list[int] = []
    chunk_size = 256
    for start in range(0, len(instances), chunk_size):
        chunk = instances[start : start + chunk_size]
        ranks.extend(
            model.rank_of_batch(
                [list(instance.history) for instance in chunk],
                [instance.target for instance in chunk],
                [instance.user_index for instance in chunk],
            )
        )
    return NextItemResult(
        model=model.name,
        hit_ratio=hit_ratio_at_k(ranks, k=k),
        mrr=mean_reciprocal_rank(ranks),
        k=k,
    )
