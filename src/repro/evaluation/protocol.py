"""The full offline IRS evaluation protocol (§IV-B).

Steps:

1. For every test user, sample an objective item uniformly at random subject
   to the paper's two constraints: it must be new to the user and must have
   at least ``min_objective_interactions`` training interactions.
2. Ask the influential recommender under evaluation to generate an influence
   path with Algorithm 1 (maximum length ``M``).
3. Score the paths with the IRS evaluator: SR_M, IoI_M, IoR_M and log(PPL).

The same sampled objectives are reused across every framework being
compared, exactly as in the paper ("each IRS model generates influence paths
based on the same test set independently").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.base import InfluentialRecommender
from repro.data.splitting import DatasetSplit, TestInstance
from repro.evaluation.evaluator import IRSEvaluator
from repro.evaluation.metrics import (
    increase_of_interest,
    increment_of_rank,
    log_perplexity,
    success_rate,
)
from repro.shard.executor import ShardedExecutor
from repro.shard.partition import context_key
from repro.utils.exceptions import ConfigurationError
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

__all__ = [
    "EvaluationInstance",
    "PathRecord",
    "IRSResult",
    "IRSEvaluationProtocol",
    "sample_objectives",
    "rollout_next_step",
]

_LOGGER = get_logger("evaluation.protocol")


@dataclass(frozen=True)
class EvaluationInstance:
    """A test user's history plus the sampled objective item."""

    user_index: int
    history: tuple[int, ...]
    objective: int


@dataclass(frozen=True)
class PathRecord:
    """One generated influence path together with its evaluation context."""

    user_index: int
    history: tuple[int, ...]
    objective: int
    path: tuple[int, ...]

    @property
    def reached(self) -> bool:
        """Whether the path contains the objective item."""
        return self.objective in self.path


@dataclass
class IRSResult:
    """Aggregated IRS metrics for one framework (one row of Table III/V)."""

    framework: str
    max_length: int
    success: float
    increase_of_interest: float
    increment_of_rank: float
    log_ppl: float
    records: list[PathRecord] = field(default_factory=list)

    def as_row(self) -> dict[str, float | str]:
        """Return the metrics as a flat table row."""
        return {
            "framework": self.framework,
            f"SR{self.max_length}": round(self.success, 4),
            f"IoI{self.max_length}": round(self.increase_of_interest, 4),
            f"IoR{self.max_length}": round(self.increment_of_rank, 2),
            "log(PPL)": round(self.log_ppl, 3),
        }


def sample_objectives(
    split: DatasetSplit,
    min_objective_interactions: int = 5,
    seed: "int | np.random.Generator | None" = 0,
    max_instances: int | None = None,
) -> list[EvaluationInstance]:
    """Sample one objective per test user following §IV-B1.

    Constraints: the objective is not in the user's history, and it has at
    least ``min_objective_interactions`` occurrences in the corpus.
    """
    rng = as_rng(seed)
    corpus = split.corpus
    popularity = corpus.item_popularity()
    eligible = np.flatnonzero(popularity >= min_objective_interactions)
    eligible = eligible[eligible != 0]
    if eligible.size == 0:
        raise ConfigurationError(
            "no item satisfies the objective-popularity constraint; "
            "lower min_objective_interactions"
        )

    instances: list[EvaluationInstance] = []
    test: Sequence[TestInstance] = split.test[:max_instances] if max_instances else split.test
    for instance in test:
        history = set(instance.history)
        candidates = eligible[~np.isin(eligible, list(history))]
        if candidates.size == 0:
            continue
        objective = int(rng.choice(candidates))
        instances.append(
            EvaluationInstance(
                user_index=instance.user_index,
                history=instance.history,
                objective=objective,
            )
        )
    if not instances:
        raise ConfigurationError("objective sampling produced no evaluation instances")
    return instances


def rollout_next_step(
    recommender: InfluentialRecommender,
    contexts: "Sequence[tuple[Sequence[int], int, int | None]]",
    max_length: int,
) -> list[list[int]]:
    """Drive ``next_step`` in lockstep across many serving contexts.

    ``contexts`` holds ``(history, objective, user_index)`` triples; at every
    step each still-live context asks the recommender for its next path item,
    mirroring an online serving loop where requests from many users
    interleave.  This is the ``next_step``-driven counterpart of
    ``generate_paths_batch`` and the workload behind the
    ``irs_stepwise_replanning`` benchmark: a planner with only a single
    replan slot replans from scratch at almost every call here, while the
    :class:`~repro.cache.memo.PlanCache`-backed planner plans each context
    once and serves the rest from memory.
    """
    if max_length <= 0:
        raise ConfigurationError(f"max_length must be positive, got {max_length}")
    paths: list[list[int]] = [[] for _ in contexts]
    live = set(range(len(contexts)))
    for _ in range(max_length):
        if not live:
            break
        for index in sorted(live):
            history, objective, user_index = contexts[index]
            item = recommender.next_step(
                history, objective, paths[index], user_index=user_index
            )
            if item is None:
                live.discard(index)
                continue
            paths[index].append(int(item))
            if int(item) == int(objective):
                live.discard(index)
    return paths


class IRSEvaluationProtocol:
    """Evaluate influential recommenders on a fixed set of (history, objective) pairs.

    Path generation goes through ``generate_paths_batch``; recommenders with
    plan memoisation (the beam planner's
    :class:`~repro.cache.memo.PlanCache`) are consulted per instance before
    any replanning happens, so repeated evaluations over the same sampled
    objectives reuse finished plans.

    With ``num_workers > 1`` the protocol partitions its evaluation
    instances across worker shards by the stable hash of their
    ``(history, objective, user)`` context
    (:class:`~repro.shard.executor.ShardedExecutor`): each shard rolls out
    its own instance partition — chunked batched rollouts in
    :meth:`generate_records`, an independent lockstep ``next_step`` loop in
    :meth:`generate_records_stepwise` — and the merged records are
    bit-identical to the serial ones (instances never interact across a
    rollout).  ``num_workers=None`` reads ``REPRO_NUM_WORKERS``.
    """

    def __init__(
        self,
        split: DatasetSplit,
        evaluator: IRSEvaluator,
        max_length: int = 20,
        min_objective_interactions: int = 5,
        max_instances: int | None = None,
        history_window: int | None = 50,
        rollout_chunk_size: int = 64,
        num_workers: "int | None" = None,
        shard_backend: "str | None" = None,
        seed: int = 0,
    ) -> None:
        if not isinstance(rollout_chunk_size, int) or rollout_chunk_size <= 0:
            raise ConfigurationError(
                f"rollout_chunk_size must be a positive integer, got {rollout_chunk_size!r}"
            )
        self.split = split
        self.evaluator = evaluator
        self.max_length = max_length
        self.history_window = history_window
        self.rollout_chunk_size = rollout_chunk_size
        self.executor = ShardedExecutor(num_workers, shard_backend)
        self.num_workers = self.executor.num_workers
        self.shard_backend = self.executor.backend
        self.instances = sample_objectives(
            split,
            min_objective_interactions=min_objective_interactions,
            seed=seed,
            max_instances=max_instances,
        )

    # ------------------------------------------------------------------ #
    def _history_for(self, instance: EvaluationInstance) -> list[int]:
        history = list(instance.history)
        if self.history_window and len(history) > self.history_window:
            history = history[-self.history_window :]
        return history

    def _instance_keys(self, histories: "list[list[int]]") -> list[tuple]:
        """The ``(history, objective, user)`` partition key of every instance."""
        return [
            context_key(history, instance.objective, instance.user_index)
            for history, instance in zip(histories, self.instances)
        ]

    def _rollout_batched(
        self,
        recommender: InfluentialRecommender,
        contexts: "list[tuple[list[int], int, int | None]]",
    ) -> list[list[int]]:
        """Chunked ``generate_paths_batch`` over one shard's contexts."""
        paths: list[list[int]] = []
        for start in range(0, len(contexts), self.rollout_chunk_size):
            chunk = contexts[start : start + self.rollout_chunk_size]
            paths.extend(
                recommender.generate_paths_batch(
                    [context[0] for context in chunk],
                    [context[1] for context in chunk],
                    user_indices=[context[2] for context in chunk],
                    max_length=self.max_length,
                )
            )
        return paths

    def generate_records(self, recommender: InfluentialRecommender) -> list[PathRecord]:
        """Run Algorithm 1 for every evaluation instance.

        Rollouts go through ``generate_paths_batch`` so recommenders with
        batched scoring (IRN, the beam planner) fuse all instances that share
        a step index into single transformer forwards; recommenders without
        it transparently fall back to the per-instance loop.  Instances are
        processed in chunks of ``rollout_chunk_size`` so the fused logits
        tensor (``chunk * beam_width`` rows × vocab) stays bounded however
        many test users the split has.  With ``num_workers > 1`` the
        instances first hash-partition across worker shards, each shard
        running its own chunked rollout; the merged paths are identical.
        """
        histories = [self._history_for(instance) for instance in self.instances]
        contexts = [
            (history, instance.objective, instance.user_index)
            for history, instance in zip(histories, self.instances)
        ]
        paths = self.executor.map_partitioned(
            contexts,
            self._instance_keys(histories),
            lambda _shard, shard_contexts: self._rollout_batched(
                recommender, shard_contexts
            ),
        )
        return [
            PathRecord(
                user_index=instance.user_index,
                history=tuple(history),
                objective=instance.objective,
                path=tuple(path),
            )
            for instance, history, path in zip(self.instances, histories, paths)
        ]

    def generate_records_stepwise(self, recommender: InfluentialRecommender) -> list[PathRecord]:
        """Generate records by driving ``next_step`` in lockstep (serving mode).

        Unlike :meth:`generate_records` (one batched Algorithm-1 rollout per
        chunk) this interleaves single ``next_step`` requests across all
        instances, the way an online IRS would see them.  For planners whose
        serving cache covers the instance set the resulting paths match the
        per-instance dedicated serving semantics; it exists both as a serving
        entry point and as the measured workload of the
        ``irs_stepwise_replanning`` benchmark.

        ``next_step`` has no horizon argument, so a recommender that plans
        toward its own ``max_length`` (the beam planner) only yields records
        comparable to :meth:`generate_records` when that horizon equals this
        protocol's ``max_length`` — otherwise the rollout is a truncation of
        longer-horizon plans, not a shorter-horizon plan.  A mismatch is
        logged loudly rather than silently producing incomparable metrics.

        With ``num_workers > 1`` the serving contexts hash-partition across
        worker shards and each shard drives its own lockstep loop; because
        ``next_step`` is deterministic per context (caches only skip work,
        never change answers), the merged paths equal the serial lockstep's.
        """
        recommender_horizon = getattr(recommender, "max_length", None)
        if recommender_horizon is not None and recommender_horizon != self.max_length:
            _LOGGER.warning(
                "stepwise evaluation: %s plans with horizon %d but the protocol "
                "truncates at %d; records are not comparable to generate_records()",
                getattr(recommender, "name", type(recommender).__name__),
                recommender_horizon,
                self.max_length,
            )
        histories = [self._history_for(instance) for instance in self.instances]
        contexts = [
            (history, instance.objective, instance.user_index)
            for history, instance in zip(histories, self.instances)
        ]
        paths = self.executor.map_partitioned(
            contexts,
            self._instance_keys(histories),
            lambda _shard, shard_contexts: rollout_next_step(
                recommender, shard_contexts, self.max_length
            ),
        )
        return [
            PathRecord(
                user_index=instance.user_index,
                history=tuple(history),
                objective=instance.objective,
                path=tuple(path),
            )
            for instance, history, path in zip(self.instances, histories, paths)
        ]

    def score_records(self, framework: str, records: list[PathRecord]) -> IRSResult:
        """Aggregate SR / IoI / IoR / log(PPL) over generated path records."""
        return IRSResult(
            framework=framework,
            max_length=self.max_length,
            success=success_rate(records),
            increase_of_interest=increase_of_interest(records, self.evaluator),
            increment_of_rank=increment_of_rank(records, self.evaluator),
            log_ppl=log_perplexity(records, self.evaluator),
            records=records,
        )

    def evaluate(self, recommender: InfluentialRecommender, name: str | None = None) -> IRSResult:
        """Generate and score influence paths for ``recommender``."""
        framework = name or recommender.name
        _LOGGER.info("evaluating %s on %d instances", framework, len(self.instances))
        records = self.generate_records(recommender)
        return self.score_records(framework, records)

    # ------------------------------------------------------------------ #
    def stepwise_probabilities(
        self,
        records: Sequence[PathRecord],
        exclude_early_success: bool = True,
    ) -> dict[str, list[float]]:
        """Per-step averages of objective/item probability (Figure 9).

        Returns ``{"objective": [...], "item": [...]}`` where index ``k`` of
        the objective series is the average ``log P(i_t | s_h ⊕ i_<k)`` before
        step ``k`` and index ``k`` of the item series is the average
        ``log P(i_k | s_h ⊕ i_<k)`` for the item recommended at step ``k``.
        Paths that reach the objective before ``max_length`` are excluded by
        default, as in the paper.
        """
        kept = [
            record
            for record in records
            if record.path
            and not (exclude_early_success and record.reached and len(record.path) < self.max_length)
        ]
        if not kept:
            kept = [record for record in records if record.path]
        if not kept:
            raise ConfigurationError("no non-empty paths for stepwise analysis")

        max_steps = max(len(record.path) for record in kept)
        objective_sums = np.zeros(max_steps)
        item_sums = np.zeros(max_steps)
        counts = np.zeros(max_steps)
        for record in kept:
            objective_logs = self.evaluator.objective_log_probabilities(
                record.history, record.path, record.objective
            )
            item_logs = self.evaluator.path_log_probabilities(record.history, record.path)
            for step in range(len(record.path)):
                objective_sums[step] += objective_logs[step]
                item_sums[step] += item_logs[step]
                counts[step] += 1
        counts[counts == 0] = 1
        return {
            "objective": list(objective_sums / counts),
            "item": list(item_sums / counts),
        }
