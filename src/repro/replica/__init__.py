"""Replicated serving with generation-aware hot refit.

The fifth rung of the performance ladder (batching → caching → sharding →
async serving → **replication**).  A :class:`~repro.replica.set.ReplicaSet`
puts N independently fitted backbone replicas behind the admission layer —
each replica owns its planner (with its own sharded executor and plan-cache
shards) and its own serving loop — and a
:class:`~repro.replica.dispatch.Dispatcher` routes every request to the
least-loaded healthy replica (EWMA in-flight depth + recent p95 drain
latency, session affinity for ``next_step``, round-robin while cold)
instead of queueing behind a busy one.  The
:class:`~repro.replica.refit.RefitCoordinator` makes retrains invisible to
callers: a standby replica set trains off-path, one atomic flip of the
``fit_generation`` double-buffer redirects new arrivals, and the old
replicas drain dry so in-flight requests finish on the generation that
admitted them — serving never pauses.

Responses are bit-identical to single-replica serving whenever all
replicas share one generation (the parity suite in ``tests/replica``), and
the whole protocol is measured by the ``replicated_serving`` bench section
and ``repro-irs serve-sim --replicas N --refit-at T``.
"""

from repro.replica.config import (
    VALID_DISPATCH_POLICIES,
    resolve_dispatch_policy,
    resolve_num_replicas,
    resolve_refit_at,
)
from repro.replica.dispatch import Dispatcher
from repro.replica.driver import run_replicated_open_loop
from repro.replica.refit import RefitCoordinator, RefitHandle, schedule_refit
from repro.replica.replica import Replica
from repro.replica.set import ReplicaSet

__all__ = [
    "Dispatcher",
    "RefitCoordinator",
    "RefitHandle",
    "Replica",
    "ReplicaSet",
    "VALID_DISPATCH_POLICIES",
    "resolve_dispatch_policy",
    "resolve_num_replicas",
    "resolve_refit_at",
    "run_replicated_open_loop",
    "schedule_refit",
]
