"""Configuration surface of the replicated serving subsystem.

The three knobs (``num_replicas`` / ``REPRO_REPLICAS``, ``refit_at`` /
``REPRO_REFIT_AT``, ``dispatch_policy`` / ``REPRO_DISPATCH_POLICY``) are
rows of the declarative resolver table in :mod:`repro.config`; this module
re-exports their resolvers for compatibility.
"""

from __future__ import annotations

from repro.config import (
    CONFIG_FIELDS,
    VALID_DISPATCH_POLICIES,
    resolve_dispatch_policy,
    resolve_num_replicas,
    resolve_refit_at,
)

__all__ = [
    "VALID_DISPATCH_POLICIES",
    "DEFAULT_NUM_REPLICAS",
    "DEFAULT_DISPATCH_POLICY",
    "resolve_num_replicas",
    "resolve_refit_at",
    "resolve_dispatch_policy",
]

DEFAULT_NUM_REPLICAS = CONFIG_FIELDS["num_replicas"].default
DEFAULT_DISPATCH_POLICY = CONFIG_FIELDS["dispatch_policy"].default
