"""Configuration surface of the replicated serving subsystem.

Three knobs, resolved with the established precedence rule (explicit
argument > environment variable > built-in default):

* ``num_replicas`` (``REPRO_REPLICAS``) — backbone replicas behind the
  dispatcher.  ``1`` reproduces the single-loop serving of :mod:`repro.serve`
  exactly (the dispatcher degenerates to a pass-through); CI forces ``2`` on
  one matrix leg so replicated parity runs on every PR.
* ``refit_at`` (``REPRO_REFIT_AT``) — seconds into a ``serve-sim`` traffic
  window at which a hot refit is triggered.  Unset (or an empty string)
  means no refit; the CLI additionally requires the value to fall strictly
  inside ``--duration``.
* ``dispatch_policy`` (``REPRO_DISPATCH_POLICY``) — ``least_loaded`` (EWMA
  in-flight depth + recent p95 drain latency, the default) or
  ``round_robin`` (the cold-start fallback, forced always-on).
"""

from __future__ import annotations

import os

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "VALID_DISPATCH_POLICIES",
    "resolve_num_replicas",
    "resolve_refit_at",
    "resolve_dispatch_policy",
]

VALID_DISPATCH_POLICIES = ("least_loaded", "round_robin")

_ENV_REPLICAS = "REPRO_REPLICAS"
_ENV_REFIT_AT = "REPRO_REFIT_AT"
_ENV_DISPATCH_POLICY = "REPRO_DISPATCH_POLICY"

DEFAULT_NUM_REPLICAS = 1
DEFAULT_DISPATCH_POLICY = "least_loaded"


def resolve_num_replicas(value: "int | None" = None) -> int:
    """Replica count: explicit > ``REPRO_REPLICAS`` > 1."""
    source = "argument"
    if value is None:
        env = os.environ.get(_ENV_REPLICAS)
        if env is None or env == "":
            return DEFAULT_NUM_REPLICAS
        value, source = env, f"${_ENV_REPLICAS}"
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"num_replicas must be an integer, got {value!r} (from {source})"
        ) from None
    if parsed < 1:
        raise ConfigurationError(
            f"num_replicas must be at least 1, got {parsed} (from {source})"
        )
    return parsed


def resolve_refit_at(value: "float | None" = None) -> "float | None":
    """Hot-refit trigger offset: explicit > ``REPRO_REFIT_AT`` > no refit.

    ``None`` (and an unset/empty environment variable) means "never refit";
    any resolved value must be a positive finite number of seconds.
    """
    source = "argument"
    if value is None:
        env = os.environ.get(_ENV_REFIT_AT)
        if env is None or env == "":
            return None
        value, source = env, f"${_ENV_REFIT_AT}"
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"refit_at must be a number of seconds, got {value!r} (from {source})"
        ) from None
    if parsed != parsed or parsed in (float("inf"), float("-inf")) or parsed <= 0:
        raise ConfigurationError(
            f"refit_at must be positive finite seconds, got {parsed} (from {source})"
        )
    return parsed


def resolve_dispatch_policy(value: "str | None" = None) -> str:
    """Routing policy: explicit > ``REPRO_DISPATCH_POLICY`` > least_loaded."""
    source = "argument"
    if value is None:
        env = os.environ.get(_ENV_DISPATCH_POLICY)
        if env is None or env == "":
            return DEFAULT_DISPATCH_POLICY
        value, source = env, f"${_ENV_DISPATCH_POLICY}"
    policy = str(value).lower()
    if policy not in VALID_DISPATCH_POLICIES:
        raise ConfigurationError(
            f"dispatch_policy must be one of {', '.join(VALID_DISPATCH_POLICIES)}, "
            f"got {value!r} (from {source})"
        )
    return policy
