"""The replica set: N independent serving replicas behind one dispatcher.

:class:`ReplicaSet` is drop-in compatible with the
:class:`~repro.serve.loop.ServingLoop` surface (``submit`` /
``submit_next_step`` / ``submit_plan_paths`` / ``enqueue`` / ``stats`` /
context manager), so every traffic driver in :mod:`repro.serve.driver`
runs against it unchanged.  Behind the surface:

* each replica is built by the caller's ``planner_factory`` — an
  independently fitted backbone wrapped in a generation-pinned
  :class:`~repro.core.beam.BeamSearchPlanner`, with its own
  :class:`~repro.serve.loop.ServingLoop` (own queues, drain threads and a
  per-replica admission scope) — nothing is shared between replicas;
* a :class:`~repro.replica.dispatch.Dispatcher` routes each request to the
  least-loaded healthy replica (session affinity for ``next_step``, EWMA
  depth + recent-p95 scoring, round-robin while cold);
* a :class:`~repro.replica.refit.RefitCoordinator` owns the hot model
  swap: it trains a standby replica set off-path, flips the dispatcher to
  it atomically (one lock swap — the ``fit_generation`` double-buffer),
  and retires the old replicas by draining them dry, so in-flight requests
  finish on the old generation while new arrivals land on the new one and
  serving never pauses.

Exactness contract: with every replica at one shared generation (identical
weights — the factory is deterministic), responses are bit-identical to
single-replica serving for the same request trace, any replica count and
any dispatch interleaving; the parity suite in ``tests/replica`` mirrors
``tests/serve``'s.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Future
from typing import Callable, Sequence

from repro.replica.config import resolve_num_replicas
from repro.replica.dispatch import Dispatcher
from repro.replica.refit import RefitCoordinator
from repro.replica.replica import Replica
from repro.serve.admission import AdmissionController
from repro.serve.api import TypedServingSurface, warn_positional_submit
from repro.serve.loop import ServingLoop
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ConfigurationError, QueueFullError, ServingError

__all__ = ["ReplicaSet"]

logger = logging.getLogger(__name__)


class _FleetAdmission:
    """Aggregate admission view over every replica's controller.

    Duck-types the two :class:`~repro.serve.admission.AdmissionController`
    read methods the traffic drivers use: :meth:`describe` returns the
    shared knob values, :meth:`counters` the fleet-wide sums (active and
    retired replicas — requests served during a refit still count).
    """

    def __init__(self, replica_set: "ReplicaSet", template: AdmissionController) -> None:
        self._set = replica_set
        self._template = template

    def describe(self) -> dict:
        return self._template.describe()

    def counters(self) -> dict:
        totals = {"admitted": 0, "rejected": 0, "blocked": 0}
        per_replica = []
        snapshots = [
            replica.loop.admission.counters() for replica in self._set.all_replicas()
        ] + [archived["admission"] for archived in self._set.archived_stats()]
        for counters in snapshots:
            for key in totals:
                totals[key] += counters[key]
            per_replica.append(counters)
        totals["per_replica"] = per_replica
        return totals


class ReplicaSet(TypedServingSurface):
    """N independently fitted serving replicas behind one dispatcher.

    Parameters
    ----------
    planner_factory:
        Zero-arg callable returning a *fresh, fitted* planner (anything
        with ``plan_for_requests``; in practice a
        :class:`~repro.core.beam.BeamSearchPlanner` over an independently
        fitted backbone).  Called once per replica at construction and once
        per replica again on every refit — it must be deterministic for the
        shared-generation parity contract to hold.
    num_replicas:
        Replica count; ``None`` reads ``REPRO_REPLICAS`` and defaults to 1.
    num_queues / max_queue_depth / admission_policy / drain_deadline:
        Forwarded to every replica's :class:`~repro.serve.loop.ServingLoop`
        (each gets its own queues and admission controller, labelled
        ``replica-<id>`` for per-replica depth accounting).
    dispatch_policy:
        ``least_loaded`` (default) or ``round_robin``; ``None`` reads
        ``REPRO_DISPATCH_POLICY``.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` shared by every replica's
        serving loop; ``None`` leaves tracing off (the zero-cost default).
    tenant_factory:
        Optional zero-arg callable returning a *fresh*
        :class:`~repro.tenant.registry.TenantRegistry` — called once per
        replica (and again per replica on every refit, mirroring
        ``planner_factory``), so each replica serves its own copies of the
        tenants' models and a refit re-fits every tenant.  ``None`` keeps
        the replicas single-tenant (or lets ``REPRO_TENANTS`` synthesize a
        degenerate registry inside each loop).
    """

    #: Dispatch retries across a concurrent generation flip: an enqueue can
    #: race the retirement of the replica it picked; re-picking from the
    #: post-flip active list always succeeds unless the set itself closed.
    _MAX_DISPATCH_ATTEMPTS = 8

    def __init__(
        self,
        planner_factory: "Callable[[], object]",
        num_replicas: "int | None" = None,
        num_queues: "int | None" = None,
        max_queue_depth: "int | None" = None,
        admission_policy: "str | None" = None,
        drain_deadline: "float | None" = None,
        dispatch_policy: "str | None" = None,
        tracer: "object | None" = None,
        tenant_factory: "Callable[[], object] | None" = None,
    ) -> None:
        if not callable(planner_factory):
            raise ConfigurationError(
                "ReplicaSet needs a zero-arg planner_factory returning a fitted "
                "planner (one independently fitted backbone per call)"
            )
        if tenant_factory is not None and not callable(tenant_factory):
            raise ConfigurationError(
                "tenant_factory must be a zero-arg callable returning a "
                "TenantRegistry (one fresh set of tenant models per replica)"
            )
        self._factory = planner_factory
        self._tenant_factory = tenant_factory
        self.num_replicas = resolve_num_replicas(num_replicas)
        # One tracer is shared by every replica's loop (including standby
        # generations built mid-refit), so a request traced across a flip
        # boundary lands in the same retained-trace list.
        self._loop_kwargs = dict(
            num_queues=num_queues,
            max_queue_depth=max_queue_depth,
            admission_policy=admission_policy,
            drain_deadline=drain_deadline,
            tracer=tracer,
        )
        # Resolves (and validates) the admission knobs once; every replica
        # loop resolves the same values again from the same arguments.
        self._admission_template = AdmissionController(
            max_queue_depth=max_queue_depth,
            policy=admission_policy,
            drain_deadline=drain_deadline,
        )
        self._flip_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._started = False
        self._closed = False
        self._next_replica_id = 0
        self._generation = 1
        self._active: "list[Replica]" = [
            self._build_replica(self._generation) for _ in range(self.num_replicas)
        ]
        #: Replicas flipped out but not yet archived (the coordinator is
        #: still draining them); once drained dry they collapse into
        #: counter snapshots in :attr:`_retired_stats` so a long-lived set
        #: doing periodic refits never retains old generations' models.
        self._retired: "list[Replica]" = []
        self._retired_stats: "list[dict]" = []
        self.dispatcher = Dispatcher(self._active, policy=dispatch_policy)
        self.refit_coordinator = RefitCoordinator(self)
        self.admission = _FleetAdmission(self, self._admission_template)

    # ------------------------------------------------------------------ #
    # Replica construction (also used by the refit coordinator)
    # ------------------------------------------------------------------ #
    def _build_replica(self, generation: int) -> Replica:
        """Build one replica at ``generation``: fresh planner, pinned, with
        its own serving loop (not yet started)."""
        planner = self._factory()
        if not hasattr(planner, "plan_for_requests"):
            raise ConfigurationError(
                "planner_factory must return a planner with plan_for_requests() "
                f"(got {type(planner).__name__})"
            )
        with self._state_lock:
            index = self._next_replica_id
            self._next_replica_id += 1
        pin = getattr(planner, "pin_generation", None)
        if pin is not None:
            pin(serving_generation=generation)
        else:
            planner.serving_generation = generation
        tenants = None if self._tenant_factory is None else self._tenant_factory()
        if tenants is not None:
            tenants.pin_generation(generation)
        loop = ServingLoop(
            planner,
            admission_scope=f"replica-{index}",
            tenants=tenants,
            **self._loop_kwargs,
        )
        return Replica(index, planner, loop, generation)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ReplicaSet":
        """Start every active replica's drain threads (idempotent).

        The active list is read through :meth:`active_replicas` (the flip
        lock) AFTER the started flag is set, and the refit coordinator
        re-checks the flag after its flip — so whichever of a racing
        ``start()`` / refit flip runs second sees the other's write and the
        post-flip active set always ends up with live drain threads
        (``ServingLoop.start`` is idempotent, double starts are no-ops).
        """
        with self._state_lock:
            if self._closed:
                raise ServingError("cannot restart a closed replica set")
            self._started = True
        for replica in self.active_replicas():
            replica.loop.start()
        return self

    def close(self) -> None:
        """Stop admissions on every replica, drain them dry, join threads.

        Idempotent; accepted futures always resolve (the underlying loops
        guarantee it)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for replica in self.all_replicas():
            replica.loop.close()

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def started(self) -> bool:
        with self._state_lock:
            return self._started

    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._closed

    # ------------------------------------------------------------------ #
    # Generation bookkeeping (the double-buffer the refit flips)
    # ------------------------------------------------------------------ #
    @property
    def fit_generation(self) -> int:
        """The generation new arrivals are served at (bumped by every flip)."""
        with self._flip_lock:
            return self._generation

    def active_replicas(self) -> "list[Replica]":
        with self._flip_lock:
            return list(self._active)

    def all_replicas(self) -> "list[Replica]":
        """Active replicas plus any flipped-out ones still draining (the
        archived generations live on as counter snapshots, see
        :meth:`archived_stats`)."""
        with self._flip_lock:
            return list(self._active) + list(self._retired)

    def archived_stats(self) -> "list[dict]":
        """Final counter snapshots of fully retired generations."""
        with self._flip_lock:
            return [dict(archived) for archived in self._retired_stats]

    def _archive_retired(self, replicas: "list[Replica]") -> None:
        """Collapse drained-dry retired replicas into counter snapshots.

        Called by the refit coordinator once the old generation's loops are
        closed and joined: keeping whole planner+backbone objects for every
        past generation would grow a long-lived set's memory without bound,
        but the stats contract (fleet-wide served/admission totals keep
        counting pre-flip work) only needs the final numbers.
        """
        snapshots = [
            {
                "replica": replica.stats(),
                "loop": replica.loop.stats(),
                "admission": replica.loop.admission.counters(),
            }
            for replica in replicas
        ]
        with self._flip_lock:
            self._retired = [
                replica for replica in self._retired if replica not in replicas
            ]
            self._retired_stats.extend(snapshots)

    def _flip_to(self, standby: "list[Replica]", generation: int) -> "list[Replica]":
        """Atomically make ``standby`` the serving set (the refit flip).

        Returns the replaced replicas; the caller (the refit coordinator)
        retires them by draining their loops dry.  Everything inside the
        lock is pointer swaps — the flip window is microseconds, which is
        what "serving never pauses" means operationally.

        Refuses (``ServingError``) when the set closed while the standby
        was training: ``close()`` marks the set closed and then closes
        ``all_replicas()``, so a flip that landed afterwards would install
        live drain threads nobody will ever join.  The closed flag is read
        under the same lock ordering ``close()`` writes it, and
        ``all_replicas()`` takes the flip lock, so either the flip lands
        first (and ``close()`` sees the standby replicas) or the flip
        refuses — never a leaked active set.
        """
        with self._flip_lock:
            with self._state_lock:
                if self._closed:
                    raise ServingError(
                        "replica set closed while the standby generation was "
                        "training; the flip is abandoned"
                    )
            previous = self._active
            self._active = list(standby)
            self._generation = generation
            self._retired.extend(previous)
            self.dispatcher.reset(self._active)
        logger.info(
            "refit flip: generation %d active on %d replica(s); %d replica(s) retiring",
            generation,
            len(standby),
            len(previous),
        )
        return previous

    # ------------------------------------------------------------------ #
    # Refit
    # ------------------------------------------------------------------ #
    def refit(self) -> dict:
        """Hot model swap: see
        :meth:`repro.replica.refit.RefitCoordinator.refit`."""
        return self.refit_coordinator.refit()

    # ------------------------------------------------------------------ #
    # Submission (the ServingLoop-compatible surface)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        kind: str,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        """Positional submission (deprecated — see
        :meth:`~repro.serve.api.TypedServingSurface.serve`)."""
        warn_positional_submit()
        return self.enqueue(
            ServeRequest.create(
                kind,
                history,
                objective,
                path_so_far=path_so_far,
                user_index=user_index,
                max_length=max_length,
            )
        )

    def submit_next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
    ) -> Future:
        return self.submit(
            "next_step", history, objective, path_so_far=path_so_far, user_index=user_index
        )

    def submit_plan_paths(
        self,
        history: Sequence[int],
        objective: int,
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        return self.submit(
            "plan_paths", history, objective, user_index=user_index, max_length=max_length
        )

    def enqueue(self, request: ServeRequest) -> Future:
        """Dispatch one request to a healthy replica's queue.

        A dispatch can race a generation flip: the picked replica may close
        its queues between pick and put.  The request was *not* admitted in
        that case, so it simply re-dispatches against the post-flip active
        set — no accepted request is ever dropped by a refit.
        :class:`~repro.utils.exceptions.QueueFullError` (the ``reject``
        admission policy) is back-pressure, not a race, and propagates.
        """
        if self.closed:
            raise ServingError("replica set is closed; no new requests accepted")
        for _ in range(self._MAX_DISPATCH_ATTEMPTS):
            replica = self.dispatcher.pick(request)
            replica.on_dispatch()
            request.replica_index = replica.index
            try:
                replica.loop.enqueue(request)
            except QueueFullError:
                replica.on_dispatch_failed()
                raise
            except ServingError:
                # The replica retired (its loop closed) between pick and
                # put — or a producer blocked on its back-pressure was woken
                # by the close.  Either way nothing was admitted: undo the
                # accounting, drop any stale affinity, and re-dispatch.
                replica.on_dispatch_failed()
                self.dispatcher.forget(replica)
                if self.closed:
                    raise
                continue
            request.future.add_done_callback(
                lambda _future, replica=replica, request=request: replica.on_complete(
                    request
                )
            )
            return request.future
        raise ServingError(
            f"could not place request after {self._MAX_DISPATCH_ATTEMPTS} dispatch "
            f"attempts (replicas kept retiring under the dispatcher)"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def planner(self):
        """A representative planner (the traffic drivers read ``max_length``
        off it); with replicas at one generation any of them is exact."""
        return self.active_replicas()[0].planner

    def stats(self) -> dict:
        """Fleet-wide stats, shaped like ``ServingLoop.stats()`` plus the
        replication-specific sections (per-replica load, dispatcher picks,
        refit history)."""
        active = self.active_replicas()
        replicas = self.all_replicas()
        archived = self.archived_stats()
        loop_stats = [replica.loop.stats() for replica in replicas] + [
            snapshot["loop"] for snapshot in archived
        ]
        per_queue = [queue for stats in loop_stats for queue in stats["per_queue"]]
        depth_samples = sum(q["depth_samples"] for q in per_queue)
        batches = sum(q["micro_batches"] for q in per_queue)
        batch_requests = sum(q["micro_batch_requests"] for q in per_queue)
        admission = self.admission.counters()
        # Fleet-wide tenant view: per-replica loops each carry their own
        # binding counters; sum the volume fields per tenant id.
        tenants: "dict[str, dict]" = {}
        for stats in loop_stats:
            for name, tenant_stats in stats.get("tenants", {}).items():
                merged = tenants.setdefault(
                    name, {"tenant": name, "served": 0, "failed": 0}
                )
                merged["served"] += tenant_stats["served"]
                merged["failed"] += tenant_stats["failed"]
                merged["kinds"] = tenant_stats["kinds"]
        return {
            "num_replicas": self.num_replicas,
            **({"tenants": tenants} if tenants else {}),
            "generation": self.fit_generation,
            "served": sum(stats["served"] for stats in loop_stats),
            **self.admission.describe(),
            "admission": admission,
            "queue_depth": {
                "max": max((q["depth_max"] for q in per_queue), default=0),
                "mean": (
                    round(sum(q["depth_sum"] for q in per_queue) / depth_samples, 3)
                    if depth_samples
                    else 0.0
                ),
            },
            "micro_batches": {
                "count": batches,
                "mean_size": round(batch_requests / batches, 3) if batches else 0.0,
                "max_size": max((q["micro_batch_max"] for q in per_queue), default=0),
            },
            "dispatch": self.dispatcher.stats(),
            "replicas": [replica.stats() for replica in replicas],
            "retired_replicas": len(replicas) - len(active) + len(archived),
            "refits": self.refit_coordinator.history(),
        }
