"""Measurement harness for replicated serving with an optional hot refit.

:func:`run_replicated_open_loop` offers the same seeded open-loop Poisson
traffic as :func:`repro.serve.driver.run_open_loop` (the replica set
duck-types the serving-loop surface), optionally arming a hot refit
mid-trace, and post-processes the per-request samples into the report the
``replicated_serving`` bench section and ``repro-irs serve-sim
--refit-at`` publish:

* the standard throughput / latency-percentile / queue / admission block;
* ``generations_served`` — how many answers each generation produced;
* per-generation latency percentiles (the before/after view of the flip);
* the refit report (train seconds, microsecond flip, in-flight at flip);
* the ``no_pause`` bit — the acceptance contract of the replication rung:
  zero errored requests and zero rejections beyond what the configured
  admission policy allows (under ``block`` any rejection is a violation;
  under ``reject`` rejections *are* the policy).
"""

from __future__ import annotations

from typing import Sequence

from repro.replica.refit import schedule_refit
from repro.serve.driver import latency_percentiles, run_open_loop

__all__ = ["run_replicated_open_loop"]


def run_replicated_open_loop(
    replica_set,
    contexts: Sequence,
    arrival_rate: "float | None" = None,
    num_requests: "int | None" = None,
    duration: "float | None" = None,
    seed: int = 0,
    max_length: "int | None" = None,
    refit_at: "float | None" = None,
) -> dict:
    """Drive open-loop traffic at a replica set, optionally hot-refitting.

    ``refit_at`` arms the refit ``refit_at`` seconds after the call (traffic
    generation starts microseconds later, so the offset is measured from
    trace start for practical purposes).  The trace and the refit overlap
    freely: if training outlasts the trace the flip simply lands after the
    last arrival — the report's ``refit.completed_during_trace`` bit says
    which happened, and the refit is always joined before this returns.
    """
    handle = schedule_refit(replica_set, refit_at) if refit_at is not None else None
    report = run_open_loop(
        replica_set,
        contexts,
        arrival_rate=arrival_rate,
        num_requests=num_requests,
        duration=duration,
        seed=seed,
        max_length=max_length,
        raise_on_error=False,
        collect_samples=True,
    )
    if handle is not None:
        refit_report = handle.result()
        refit_report["scheduled_at_seconds"] = handle.delay_seconds
        refit_report["completed_during_trace"] = (
            handle.delay_seconds + refit_report["train_seconds"]
            <= report["duration_seconds"]
        )
        report["refit"] = refit_report

    samples = report.pop("samples")
    by_generation: "dict[int | None, list[float]]" = {}
    for sample in samples:
        by_generation.setdefault(sample["generation"], []).append(sample["latency_ms"])
    report["generations_served"] = {
        str(generation): len(latencies)
        for generation, latencies in sorted(
            by_generation.items(), key=lambda item: (item[0] is None, item[0])
        )
    }
    report["latency_ms_by_generation"] = {
        str(generation): latency_percentiles(latencies)
        for generation, latencies in sorted(
            by_generation.items(), key=lambda item: (item[0] is None, item[0])
        )
    }

    policy = report["admission"]["policy"]
    report["no_pause"] = report["errored_requests"] == 0 and (
        policy != "block" or report["rejected_requests"] == 0
    )

    stats = replica_set.stats()
    report["dispatch"] = stats["dispatch"]
    report["replicas"] = stats["replicas"]
    report["fit_generation"] = stats["generation"]
    return report
