"""One serving replica: a pinned planner, its loop, and its load signals.

A :class:`Replica` owns everything one backbone copy needs to serve
independently: the generation-pinned planner (which in turn owns its own
:class:`~repro.shard.executor.ShardedExecutor` and plan-cache shards), a
dedicated :class:`~repro.serve.loop.ServingLoop` (its own queues, drain
threads and per-replica :class:`~repro.serve.admission.AdmissionController`
scope), and the load accounting the dispatcher scores replicas by:

* **in-flight count** — requests dispatched here and not yet answered
  (queued *or* inside a drain's planning call), the primary load signal;
* **EWMA of in-flight depth** — sampled at every dispatch, so a replica
  that keeps a deep backlog scores worse than one that drains promptly;
* **recent p95 latency** — over a bounded window of answered-request
  latencies (enqueue → drain completion), the tail-latency half of the
  dispatcher's score.

Nothing is shared between replicas: no cache, no lock, no invalidation
traffic — the refit protocol swaps whole replicas instead of mutating one.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.registry import MetricGroup, get_registry
from repro.serve.request import ServeRequest

__all__ = ["Replica", "EWMA_ALPHA", "LATENCY_WINDOW", "MIN_WARM_SAMPLES"]

#: Weight of the newest in-flight depth sample in the EWMA.
EWMA_ALPHA = 0.2
#: Answered-request latencies kept for the recent-p95 estimate.
LATENCY_WINDOW = 64
#: Latency samples a replica needs before the dispatcher trusts its score
#: (below this the replica is "cold" and the dispatcher round-robins).
MIN_WARM_SAMPLES = 8
#: How many queued requests one second of recent p95 tail latency is worth
#: in the dispatch score — couples the two load signals into one number.
LATENCY_WEIGHT = 4.0


class Replica:
    """One backbone replica: pinned planner + serving loop + load tracking."""

    def __init__(self, index: int, planner, loop, generation: int) -> None:
        self.index = index
        self.planner = planner
        self.loop = loop
        #: The replica set's generation this replica serves (monotonic across
        #: refits; backbone ``fit_generation`` counters restart per model
        #: object so they cannot tell generations apart across replicas).
        self.generation = generation
        self._lock = threading.Lock()
        self._healthy = True
        self._inflight = 0
        self._dispatched = 0
        self._completed = 0
        self._ewma_depth = 0.0
        self._latencies_ms: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        # The replica's own lock stays authoritative for the read-modify-
        # write load math; the resulting signals mirror into registry gauges
        # so dispatcher load is visible in `repro-irs metrics` exports.
        registry = get_registry()
        self._metrics = MetricGroup(
            registry,
            registry.scope("replica.load"),
            gauges=("inflight", "dispatched", "completed", "ewma_depth"),
        )

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #
    @property
    def healthy(self) -> bool:
        with self._lock:
            return self._healthy

    def mark_unhealthy(self) -> None:
        """Take this replica out of dispatch (it keeps draining in-flight)."""
        with self._lock:
            self._healthy = False

    def mark_healthy(self) -> None:
        with self._lock:
            self._healthy = True

    # ------------------------------------------------------------------ #
    # Load accounting (driven by the replica set around every dispatch)
    # ------------------------------------------------------------------ #
    def on_dispatch(self) -> None:
        """A request is about to be enqueued here: count it in-flight and
        fold the new depth into the EWMA."""
        with self._lock:
            self._inflight += 1
            self._dispatched += 1
            self._ewma_depth = (
                EWMA_ALPHA * self._inflight + (1.0 - EWMA_ALPHA) * self._ewma_depth
            )
            self._metrics.record(
                set_={
                    "inflight": self._inflight,
                    "dispatched": self._dispatched,
                    "ewma_depth": round(self._ewma_depth, 6),
                }
            )

    def on_dispatch_failed(self) -> None:
        """The enqueue raised (queue full / replica retired): undo the
        in-flight count — the request never landed here."""
        with self._lock:
            self._inflight = max(self._inflight - 1, 0)
            self._dispatched -= 1
            self._metrics.record(
                set_={"inflight": self._inflight, "dispatched": self._dispatched}
            )

    def on_complete(self, request: ServeRequest) -> None:
        """A dispatched request's future resolved (answer or error)."""
        with self._lock:
            self._inflight = max(self._inflight - 1, 0)
            self._completed += 1
            if request.completed_at is not None and request.enqueued_at:
                self._latencies_ms.append(
                    1000.0 * (request.completed_at - request.enqueued_at)
                )
            self._metrics.record(
                set_={"inflight": self._inflight, "completed": self._completed}
            )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def cold(self) -> bool:
        """True until enough latency samples exist to trust :meth:`score`."""
        with self._lock:
            return len(self._latencies_ms) < MIN_WARM_SAMPLES

    def recent_p95_ms(self) -> float:
        """p95 of the bounded recent-latency window (0 when empty)."""
        with self._lock:
            if not self._latencies_ms:
                return 0.0
            ordered = sorted(self._latencies_ms)
            return ordered[min(int(0.95 * len(ordered)), len(ordered) - 1)]

    def score(self) -> float:
        """Dispatch score — lower is better.

        ``ewma_depth + LATENCY_WEIGHT * recent_p95_seconds``: the smoothed
        backlog this replica carries, plus its recent tail latency expressed
        in queued-request equivalents, so a replica that is shallow but slow
        loses to one that is slightly deeper but drains fast.
        """
        p95_s = self.recent_p95_ms() / 1000.0
        with self._lock:
            return self._ewma_depth + LATENCY_WEIGHT * p95_s

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """One snapshot of this replica's load and serving counters."""
        with self._lock:
            snapshot = {
                "index": self.index,
                "generation": self.generation,
                "healthy": self._healthy,
                "inflight": self._inflight,
                "dispatched": self._dispatched,
                "completed": self._completed,
                "ewma_depth": round(self._ewma_depth, 3),
                "latency_samples": len(self._latencies_ms),
            }
        snapshot["recent_p95_ms"] = round(self.recent_p95_ms(), 3)
        snapshot["queued"] = self.loop.current_depth()
        return snapshot
