"""Tail-latency-aware request routing across serving replicas.

The :class:`Dispatcher` answers one question per request: *which healthy
replica takes it* — routing **around** a busy replica instead of queueing
behind it.  Three rules, in order:

1. **Session affinity** — a ``next_step`` request whose serving context
   (``(history, objective, user)`` routing key) was seen before goes back
   to the replica that owns that context's evolving plan.  This is what
   keeps replicated responses bit-identical to single-replica serving: a
   session's per-context plan cache lives on exactly one replica, so the
   request sequence a context observes is the sequential one.  Stateless
   ``plan_paths`` requests carry no session and are always load-balanced.
2. **Least-loaded** — new sessions and stateless requests go to the
   replica with the lowest score (EWMA of in-flight depth plus recent p95
   drain latency, see :meth:`~repro.replica.replica.Replica.score`).
3. **Round-robin when cold** — until every healthy replica has enough
   latency samples to score meaningfully, assignment rotates, spreading
   the warm-up load evenly instead of dog-piling replica 0.

A generation flip (:class:`~repro.replica.refit.RefitCoordinator`) calls
:meth:`reset` with the new replica list: the affinity table clears, so
every session replans once on the new generation — exactly the semantics a
model swap requires.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from repro.obs.registry import MetricGroup, get_registry
from repro.replica.config import resolve_dispatch_policy
from repro.replica.replica import Replica
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ServingError

__all__ = ["Dispatcher", "MAX_PINNED_SESSIONS"]

#: Bound of the session-affinity LRU.  A long-lived set serving an
#: unbounded context stream must not grow a table forever; the oldest
#: (least recently served) session unpins first.  An unpinned session that
#: returns is simply re-placed — same caveat class as the serving step
#: cache: re-placement may replan mid-session on another replica, and the
#: default bound never evicts in the repo's workloads.
MAX_PINNED_SESSIONS = 4096


class Dispatcher:
    """Route each serve request to the least-loaded healthy replica."""

    def __init__(
        self,
        replicas: "Sequence[Replica]",
        policy: "str | None" = None,
        max_pinned_sessions: int = MAX_PINNED_SESSIONS,
    ) -> None:
        self.policy = resolve_dispatch_policy(policy)
        self.max_pinned_sessions = max_pinned_sessions
        self._lock = threading.Lock()
        self._replicas: "list[Replica]" = list(replicas)
        self._affinity: "OrderedDict[tuple, Replica]" = OrderedDict()
        self._rr_position = 0
        # Routing-decision counters: registry-backed so `repro-irs metrics`
        # and stats() read the same atomic snapshot.
        registry = get_registry()
        self._metrics = MetricGroup(
            registry,
            registry.scope("replica.dispatch"),
            counters=(
                "picks_affinity",
                "picks_least_loaded",
                "picks_round_robin",
                "sessions_evicted",
            ),
            gauges=("sessions_pinned",),
        )

    # ------------------------------------------------------------------ #
    def reset(self, replicas: "Sequence[Replica]") -> None:
        """Swap the replica list (the refit flip): affinity clears so every
        session replans once on the new generation."""
        with self._lock:
            self._replicas = list(replicas)
            self._affinity.clear()
            self._metrics.record(set_={"sessions_pinned": 0})

    def forget(self, replica: Replica) -> None:
        """Drop a replica's affinity entries (it stopped accepting work)."""
        with self._lock:
            stale = [key for key, owner in self._affinity.items() if owner is replica]
            for key in stale:
                del self._affinity[key]
            self._metrics.record(set_={"sessions_pinned": len(self._affinity)})

    # ------------------------------------------------------------------ #
    def pick(self, request: ServeRequest) -> Replica:
        """Choose the replica for one request (raises
        :class:`~repro.utils.exceptions.ServingError` with no healthy
        replica to route to)."""
        key = request.routing_key() if request.kind == "next_step" else None
        with self._lock:
            healthy = [replica for replica in self._replicas if replica.healthy]
            if not healthy:
                raise ServingError(
                    "no healthy replica available to dispatch to "
                    f"({len(self._replicas)} registered)"
                )
            if key is not None:
                owner = self._affinity.get(key)
                if owner is not None:
                    if owner.healthy and owner in self._replicas:
                        self._affinity.move_to_end(key)
                        self._metrics.record(add={"picks_affinity": 1})
                        return owner
                    # The owning replica went unhealthy (failure detector) or
                    # retired under this session: evict the pin NOW so the
                    # session re-homes below — and counts as an eviction even
                    # if the owner later recovers, because the re-homed
                    # replica replans the context and owns it from here on.
                    del self._affinity[key]
                    self._metrics.record(
                        add={"sessions_evicted": 1},
                        set_={"sessions_pinned": len(self._affinity)},
                    )
            if self.policy == "round_robin" or any(r.cold() for r in healthy):
                choice = healthy[self._rr_position % len(healthy)]
                self._rr_position += 1
                self._metrics.record(add={"picks_round_robin": 1})
            else:
                choice = min(healthy, key=lambda r: (r.score(), r.index))
                self._metrics.record(add={"picks_least_loaded": 1})
            if key is not None:
                self._affinity[key] = choice
                self._affinity.move_to_end(key)
                evicted = 0
                while len(self._affinity) > self.max_pinned_sessions:
                    self._affinity.popitem(last=False)
                    evicted += 1
                self._metrics.record(
                    add={"sessions_evicted": evicted} if evicted else None,
                    set_={"sessions_pinned": len(self._affinity)},
                )
            return choice

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            counts = self._metrics.values()
            return {
                "policy": self.policy,
                "replicas": len(self._replicas),
                "sessions_pinned": len(self._affinity),
                "sessions_evicted": counts["sessions_evicted"],
                "picks": {
                    "affinity": counts["picks_affinity"],
                    "least_loaded": counts["picks_least_loaded"],
                    "round_robin": counts["picks_round_robin"],
                },
            }
