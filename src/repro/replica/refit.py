"""The hot-refit protocol: train off-path, flip atomically, retire gracefully.

:class:`RefitCoordinator` owns the generation-aware model swap the
ROADMAP's replicated-serving rung calls for.  A refit never touches a
serving backbone — the double-buffer discipline is:

1. **Train off-path.**  The coordinator builds a complete standby replica
   set (one ``planner_factory`` call per slot — independently fitted
   backbones at the next generation) while the active set keeps serving.
   This is the expensive phase and it happens entirely outside any lock.
2. **Flip atomically.**  One pointer swap under the set's flip lock makes
   the standby set active and bumps the set's ``fit_generation``: every
   arrival after the swap dispatches to the new generation, every request
   already queued or in flight stays owned by an old replica.  The
   dispatcher's session-affinity table clears with the swap, so each
   session replans exactly once on the new model.
3. **Retire gracefully.**  The old replicas' loops close: admissions stop,
   queues drain dry, drain threads join — every in-flight request finishes
   on the generation that admitted it.  No accepted request is dropped,
   rejected, or blocked beyond the configured admission policy.

One refit at a time: a second concurrent :meth:`RefitCoordinator.refit`
raises :class:`~repro.utils.exceptions.ServingError` instead of queueing
(the caller owns retry policy for overlapping retrains).

:func:`schedule_refit` is the measurement-harness hook: it arms a refit on
a background timer so the traffic drivers can overlap a retrain with an
open-loop run (the ``replicated_serving`` bench section and
``repro-irs serve-sim --refit-at``).
"""

from __future__ import annotations

import logging
import threading
import time

from repro.utils.exceptions import ServingError

__all__ = ["RefitCoordinator", "RefitHandle", "schedule_refit"]

logger = logging.getLogger(__name__)


class RefitCoordinator:
    """Serialises hot refits of one :class:`~repro.replica.set.ReplicaSet`."""

    def __init__(self, replica_set) -> None:
        self._set = replica_set
        self._refit_lock = threading.Lock()
        self._history_lock = threading.Lock()
        self._history: "list[dict]" = []

    @property
    def refitting(self) -> bool:
        """True while a refit is training or flipping."""
        locked = self._refit_lock.acquire(blocking=False)
        if locked:
            self._refit_lock.release()
        return not locked

    def history(self) -> "list[dict]":
        with self._history_lock:
            return [dict(report) for report in self._history]

    # ------------------------------------------------------------------ #
    def refit(self) -> dict:
        """Run one complete refit; returns its timing/accounting report.

        Raises :class:`~repro.utils.exceptions.ServingError` if a refit is
        already in progress or the set is closed.
        """
        if not self._refit_lock.acquire(blocking=False):
            raise ServingError("a refit is already in progress on this replica set")
        try:
            replica_set = self._set
            if replica_set.closed:
                raise ServingError("cannot refit a closed replica set")
            generation_from = replica_set.fit_generation
            generation_to = generation_from + 1
            logger.info(
                "refit: training %d standby replica(s) for generation %d",
                replica_set.num_replicas,
                generation_to,
            )
            train_started = time.perf_counter()
            standby = [
                replica_set._build_replica(generation_to)
                for _ in range(replica_set.num_replicas)
            ]
            train_seconds = time.perf_counter() - train_started
            # Standby drains start BEFORE the flip: the first post-flip
            # arrival must find live drain threads, not a cold loop.
            if replica_set.started:
                for replica in standby:
                    replica.loop.start()

            flip_started = time.perf_counter()
            try:
                previous = replica_set._flip_to(standby, generation_to)
            except ServingError:
                # The set closed while the standby was training: nothing was
                # installed, so retire the standby ourselves (close joins its
                # drain threads; it served nothing) and surface the refusal.
                for replica in standby:
                    replica.loop.close()
                raise
            flip_seconds = time.perf_counter() - flip_started

            # Re-check started AFTER the flip: a start() racing the training
            # phase may have read the pre-flip active list, so whichever of
            # the two runs second starts the standby drains (idempotent).
            if replica_set.started:
                for replica in standby:
                    replica.loop.start()

            inflight_at_flip = sum(replica.stats()["inflight"] for replica in previous)
            retire_started = time.perf_counter()
            for replica in previous:
                replica.loop.close()  # drains dry; in-flight finish on old gen
            retire_seconds = time.perf_counter() - retire_started

            report = {
                "generation_from": generation_from,
                "generation_to": generation_to,
                "num_replicas": len(standby),
                "train_seconds": round(train_seconds, 4),
                "flip_seconds": round(flip_seconds, 6),
                "retire_seconds": round(retire_seconds, 4),
                "inflight_at_flip": inflight_at_flip,
                "retired_served": sum(
                    replica.loop.stats()["served"] for replica in previous
                ),
            }
            # Drained dry: collapse the old generation into counter
            # snapshots so repeated refits never accumulate whole models.
            replica_set._archive_retired(previous)
            with self._history_lock:
                self._history.append(report)
            logger.info(
                "refit: generation %d -> %d flipped in %.1f us "
                "(%d request(s) in flight finished on the old generation)",
                generation_from,
                generation_to,
                1e6 * flip_seconds,
                inflight_at_flip,
            )
            return dict(report)
        finally:
            self._refit_lock.release()


class RefitHandle:
    """A refit armed on a background timer (see :func:`schedule_refit`)."""

    def __init__(self, replica_set, delay_seconds: float) -> None:
        self.delay_seconds = float(delay_seconds)
        self.report: "dict | None" = None
        self.error: "BaseException | None" = None
        self._set = replica_set
        self._thread = threading.Thread(
            target=self._run, name="repro-replica-refit", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        time.sleep(self.delay_seconds)
        try:
            self.report = self._set.refit()
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error/.result()
            self.error = exc
            logger.exception("scheduled refit failed")

    def join(self, timeout: "float | None" = None) -> None:
        self._thread.join(timeout)

    def result(self) -> dict:
        """Join and return the refit report (re-raising a refit failure)."""
        self.join()
        if self.error is not None:
            raise self.error
        assert self.report is not None
        return self.report


def schedule_refit(replica_set, delay_seconds: float) -> RefitHandle:
    """Arm a hot refit ``delay_seconds`` from now on a background thread."""
    if delay_seconds < 0:
        raise ServingError(f"refit delay must be non-negative, got {delay_seconds}")
    return RefitHandle(replica_set, delay_seconds)
