"""Command-line interface for regenerating the paper's tables and figures.

Examples
--------
::

    repro-irs table3 --dataset movielens --profile fast
    repro-irs figure7 --dataset lastfm
    repro-irs all --profile default --output results.txt
    repro-irs ablation-decoding --profile fast
    repro-irs ext-interactive --dataset lastfm
    repro-irs bench --profile fast
    repro-irs bench --profile scale --sections two_stage_retrieval
    repro-irs bench --sections async_serving,irs_stepwise_replanning
    repro-irs serve-sim --profile fast --arrival-rate 200 --duration 1
    repro-irs serve-sim --profile fast --retrieval cooccurrence --candidate-k 64
    repro-irs serve-sim --profile fast --replicas 2 --refit-at 0.5 --duration 2
    repro-irs serve-sim --profile fast --transport process --replicas 2 --duration 1
    repro-irs serve-sim --profile fast --trace-sample-rate 0.5 --duration 1
    repro-irs trace --profile fast --output traces.json
    repro-irs metrics --profile fast --metrics-format json --output metrics.json

``all`` regenerates every table and figure of the paper; the ``ablation-*``
and ``ext-*`` artefacts cover the design-choice ablations and the
future-work extensions (interactive simulation, knowledge graph, category
objectives, path quality) and are run individually.  ``bench`` runs the
:mod:`repro.perf.bench` harness (batched inference + cache subsystem +
sharded execution + async serving) and prints cache hit rates and
forwards/sec; ``--profile fast`` maps to the seconds-scale smoke profile
and the bench/serving commands additionally accept the bench profile names
directly (``smoke`` / ``default`` / ``scale`` — ``scale`` sweeps the
two-stage retrieval section over 10^4/10^5-item corpora, opt-in larger
tiers via ``REPRO_BENCH_SCALE_TIERS``).  ``--output`` overrides the JSON
artefact path (default ``BENCH_path_planning.json``) and ``--sections``
restricts the run to a comma-separated subset of sections (the full bench
is slow; CI typically needs only the section under test).  ``--cprofile`` wraps the selected
sections in :mod:`cProfile` and writes a pstats dump next to the JSON
(named ``--cprofile`` because ``--profile`` already picks the corpus
profile).

``serve-sim`` offers synthetic open-loop Poisson traffic to the
asynchronous serving loop (:mod:`repro.serve`) over the bench corpus and
prints throughput, p50/p95/p99 latency and queue-depth stats.  Its knobs —
``--arrival-rate``, ``--duration``, ``--max-queue-depth``,
``--drain-deadline``, ``--admission-policy`` — resolve through the
``REPRO_*`` environment defaults exactly like the sharding flags.  With
``--replicas N`` (or ``REPRO_REPLICAS``) the traffic is served by a
:class:`~repro.replica.set.ReplicaSet` — N independently fitted backbone
replicas behind the least-loaded dispatcher — and ``--refit-at T`` (or
``REPRO_REFIT_AT``) arms a hot refit ``T`` seconds into the trace: fresh
replicas train off-path and the generation flips atomically, so the report
additionally carries the refit timings, per-generation latency and the
no-pause bit.  ``--transport process`` (or ``REPRO_TRANSPORT``) moves the
replicas into forked worker processes behind the binary wire protocol
(:mod:`repro.distributed`): one :class:`~repro.distributed.RemoteReplicaSet`
front-end keeps the same dispatcher surface, heartbeats feed the load
signals (``--heartbeat-interval``), and a refit ships versioned artifacts
to standby workers instead of retraining in-process.  Bad knob
combinations (``--replicas 0``, ``--refit-at`` at/past ``--duration``)
exit nonzero with a clear ``ConfigurationError`` before any model trains.

Scaling knobs (``--num-workers``, ``--shard-backend``, ``--vocab-shards``,
``--rollout-chunk-size``) configure the sharded execution subsystem
(:mod:`repro.shard`) for the paper artefacts; results are bit-identical to
the serial defaults, only throughput changes.  ``bench`` honours
``--shard-backend`` / ``--vocab-shards`` and warns about the rest (its
sharded section sweeps a fixed 1/2/4 worker grid); ``serve-sim`` honours
``--num-workers`` / ``--shard-backend`` / ``--vocab-shards`` and warns
about ``--rollout-chunk-size`` (it drives ``next_step`` serving, not
chunked evaluation rollouts).

Two-stage retrieval (:mod:`repro.retrieval`): ``serve-sim --retrieval
SPEC`` plugs a candidate generator (``none`` | ``full`` | ``ann`` |
``cooccurrence``) into the serving planner so each plan scores exactly
over a per-context shortlist instead of the full vocabulary;
``--candidate-k`` sizes the shortlist (default 256).  The report gains a
``retrieval`` block with the request/fallback/candidate counters.

Observability (:mod:`repro.obs`): ``serve-sim --trace-sample-rate R``
turns request tracing on for the run (deterministic sampling at rate
``R``) and adds an ``observability`` block to the report.  ``trace``
serves a short traced open-loop workload and dumps every span as JSON;
``metrics`` drives the same workload and dumps the process metrics
registry (Prometheus text by default, ``--metrics-format json`` for the
snapshot dict).  ``--log-level`` (or ``REPRO_LOG_LEVEL``) sets the
``repro.*`` logger threshold for any command.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import add_config_arguments
from repro.experiments import ablations as ablation_functions
from repro.experiments import extensions as extension_functions
from repro.experiments import figures as figure_functions
from repro.experiments import tables as table_functions
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import ExperimentPipeline
from repro.experiments.reporting import format_series, format_table

__all__ = ["main", "run", "build_parser"]

_TABLES = {
    "table1": "Table I - dataset statistics",
    "table2": "Table II - IRS evaluator selection",
    "table3": "Table III - main comparison (M=20)",
    "table4": "Table IV - next-item performance",
    "table5": "Table V - PIM mask ablation",
    "table6": "Table VI - hyperparameters",
    "table7": "Table VII - case study",
}
_FIGURES = {
    "figure6": "Figure 6 - SR_M vs path length",
    "figure7": "Figure 7 - aggressiveness degree",
    "figure8": "Figure 8 - impressionability distribution",
    "figure9": "Figure 9 - stepwise evolution",
}
_ABLATIONS = {
    "ablation-embedding": "Ablation - item-embedding initialisation",
    "ablation-padding": "Ablation - pre vs post padding",
    "ablation-decoding": "Ablation - greedy vs beam-search decoding",
}
_EXTENSIONS = {
    "ext-interactive": "Extension - interactive (accept/reject) simulation",
    "ext-kg": "Extension - knowledge-graph path finding",
    "ext-category": "Extension - category objectives",
    "ext-quality": "Extension - path quality report",
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-irs",
        description="Reproduce the tables and figures of 'Influential Recommender System' (ICDE 2023).",
    )
    parser.add_argument(
        "artefact",
        choices=sorted(_TABLES)
        + sorted(_FIGURES)
        + sorted(_ABLATIONS)
        + sorted(_EXTENSIONS)
        + ["all", "bench", "serve-sim", "trace", "metrics"],
        help=(
            "which table/figure/ablation/extension to regenerate ('all' covers the "
            "paper artefacts; 'bench' runs the performance harness; 'serve-sim' "
            "drives the async serving loop with synthetic traffic; 'trace' / "
            "'metrics' serve a short traced workload and dump spans / the "
            "metrics registry)"
        ),
    )
    parser.add_argument("--dataset", choices=["movielens", "lastfm"], default="movielens")
    parser.add_argument(
        "--profile",
        default="default",
        help=(
            "'fast' runs a seconds-scale smoke configuration; bench / serve-sim / "
            "trace / metrics also accept the bench profiles directly "
            "(smoke | default | scale)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=None, help="override the corpus scale")
    parser.add_argument(
        "--data-directory",
        default=None,
        help="path to a real MovieLens-1M / Lastfm dump (otherwise synthetic data is used)",
    )
    parser.add_argument("--output", default=None, help="write the report to this file as well")
    parser.add_argument(
        "--rollout-chunk-size",
        default=None,
        help="evaluation instances per batched Algorithm-1 rollout call (default: 64)",
    )
    parser.add_argument(
        "--sections",
        default=None,
        help="bench only: comma-separated subset of bench sections to run (default: all)",
    )
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help=(
            "bench only: run the selected sections under cProfile and write a "
            "pstats dump next to the JSON output (<output>.pstats). Named "
            "--cprofile because --profile already selects the corpus profile."
        ),
    )
    # The resolver-table knobs (repro.config): one argparse group per
    # subsystem — traffic, sharding, replication, transport, retrieval,
    # tenancy — generated from the same declarative table the resolve_*
    # functions and $REPRO_* environment fallbacks read, so a knob's flag,
    # env var, default and help text can never drift apart.
    add_config_arguments(parser)
    # Observability knobs (repro.obs) — raw strings validated by the obs
    # config resolvers; --log-level applies to every command.
    parser.add_argument(
        "--log-level",
        default=None,
        help=(
            "logging threshold for the repro.* loggers, as a name (DEBUG, "
            "INFO, ...) or numeric level (default: $REPRO_LOG_LEVEL or INFO)"
        ),
    )
    parser.add_argument(
        "--trace-sample-rate",
        default=None,
        help=(
            "serve-sim / trace: turn request tracing on and sample this "
            "fraction of requests, deterministically, in [0, 1] "
            "(default for 'trace': $REPRO_TRACE_SAMPLE_RATE or 1.0)"
        ),
    )
    parser.add_argument(
        "--metrics-format",
        choices=["prometheus", "json"],
        default="prometheus",
        help="metrics only: dump format for the registry snapshot",
    )
    return parser


def _resolve_shard_args(args: argparse.Namespace) -> tuple[int, str, int, int | None]:
    """Validate the scaling flags, raising ConfigurationError on bad values.

    The integer flags are handed to the shard config resolvers as the raw
    strings argparse collected — the resolvers own the parse-and-complain
    logic (including the ``$REPRO_*`` fallbacks), so the error wording lives
    in one place.
    """
    from repro.shard.config import (
        resolve_num_workers,
        resolve_shard_backend,
        resolve_vocab_shards,
    )
    from repro.utils.exceptions import ConfigurationError

    num_workers = resolve_num_workers(args.num_workers)
    backend = resolve_shard_backend(args.shard_backend, num_workers=num_workers)
    vocab_shards = resolve_vocab_shards(args.vocab_shards)
    chunk = args.rollout_chunk_size
    if chunk is not None:
        try:
            chunk = int(chunk)
        except ValueError:
            raise ConfigurationError(
                f"--rollout-chunk-size must be an integer, got {chunk!r}"
            ) from None
        if chunk <= 0:
            raise ConfigurationError(
                f"--rollout-chunk-size must be a positive integer, got {chunk}"
            )
    return num_workers, backend, vocab_shards, chunk


def _resolve_serve_args(args: argparse.Namespace) -> dict:
    """Validate the serving flags through the serve config resolvers.

    Returns the resolved knob dict for ``serve-sim``; raises
    ``ConfigurationError`` (with the offending source named) on bad values.
    """
    from repro.serve.config import (
        resolve_admission_policy,
        resolve_arrival_rate,
        resolve_drain_deadline,
        resolve_max_queue_depth,
        resolve_serve_duration,
    )

    return {
        "arrival_rate": resolve_arrival_rate(args.arrival_rate),
        "duration": resolve_serve_duration(args.duration),
        "max_queue_depth": resolve_max_queue_depth(args.max_queue_depth),
        "drain_deadline": resolve_drain_deadline(args.drain_deadline),
        "admission_policy": resolve_admission_policy(args.admission_policy),
    }


def _resolve_replica_args(args: argparse.Namespace, duration: float) -> dict:
    """Validate the replication flags, including the cross-flag contract.

    The resolvers own the per-knob parse-and-complain logic (and the
    ``$REPRO_REPLICAS`` / ``$REPRO_REFIT_AT`` / ``$REPRO_DISPATCH_POLICY``
    fallbacks); the cross-check that a refit must land strictly inside the
    traffic window lives here — today's knobs silently accepting bad combos
    is exactly the failure mode this closes.
    """
    from repro.replica.config import (
        resolve_dispatch_policy,
        resolve_num_replicas,
        resolve_refit_at,
    )
    from repro.utils.exceptions import ConfigurationError

    num_replicas = resolve_num_replicas(args.replicas)
    refit_at = resolve_refit_at(args.refit_at)
    dispatch_policy = resolve_dispatch_policy(args.dispatch_policy)
    if refit_at is not None and refit_at >= duration:
        raise ConfigurationError(
            f"refit_at ({refit_at}s) must fall strictly inside the traffic "
            f"window (--duration {duration}s): a refit armed at or past the end "
            f"of the trace would never overlap serving"
        )
    return {
        "num_replicas": num_replicas,
        "refit_at": refit_at,
        "dispatch_policy": dispatch_policy,
    }


def _resolve_bench_profile(value: str) -> str:
    """Map the CLI ``--profile`` spelling onto a bench profile.

    ``fast`` stays an alias of the smoke profile for the bench/serving
    commands; anything else goes through
    :func:`repro.perf.bench.resolve_profile`, which raises
    ``ConfigurationError`` listing the known names — eagerly, before any
    model trains.
    """
    from repro.perf.bench import resolve_profile

    return resolve_profile("smoke" if value == "fast" else value)


def _resolve_retrieval_args(args: argparse.Namespace):
    """Validate the retrieval flags; returns ``(spec, candidate_k, generator)``.

    ``generator`` is ``None`` for the exact (``none``) spec; the spec name
    and shortlist size resolve through :mod:`repro.retrieval` so unknown
    backends fail with the known-spec list before any model trains.
    """
    from repro.retrieval import make_generator, resolve_retrieval_spec
    from repro.utils.exceptions import ConfigurationError

    spec = resolve_retrieval_spec(args.retrieval)
    candidate_k = args.candidate_k
    if candidate_k is not None and spec == "none":
        raise ConfigurationError(
            "--candidate-k sizes the retrieval shortlist and requires "
            "--retrieval (full | ann | cooccurrence)"
        )
    if candidate_k is None:
        candidate_k = 256
    else:
        try:
            candidate_k = int(candidate_k)
        except ValueError:
            raise ConfigurationError(
                f"--candidate-k must be an integer, got {candidate_k!r}"
            ) from None
    generator = make_generator(spec, num_candidates=candidate_k)
    return spec, candidate_k, generator


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    from repro.utils.exceptions import ConfigurationError

    if args.profile not in ("default", "fast"):
        raise ConfigurationError(
            f"unknown profile {args.profile!r} for paper artefacts: choose "
            "'default' or 'fast' (the bench profiles 'smoke'/'scale' apply "
            "to the bench and serving commands only)"
        )
    if args.profile == "fast":
        config = ExperimentConfig.fast(dataset=args.dataset, seed=args.seed)
    else:
        config = ExperimentConfig.default(dataset=args.dataset, seed=args.seed)
    if args.scale is not None:
        config.scale = args.scale
    if args.data_directory is not None:
        config.data_directory = args.data_directory
    num_workers, backend, vocab_shards, chunk = _resolve_shard_args(args)
    config.num_workers = num_workers
    config.shard_backend = backend
    config.vocab_shards = vocab_shards
    if chunk is not None:
        config.rollout_chunk_size = chunk
    return config


def _render(artefact: str, pipeline: ExperimentPipeline, config: ExperimentConfig) -> str:
    if artefact == "table1":
        rows = table_functions.table1_dataset_statistics(
            [config, config.with_dataset("lastfm" if config.dataset == "movielens" else "movielens")]
        )
        return format_table(rows, title=_TABLES[artefact])
    if artefact == "table2":
        return format_table(table_functions.table2_evaluator_selection(pipeline), title=_TABLES[artefact])
    if artefact == "table3":
        return format_table(table_functions.table3_main_comparison(pipeline), title=_TABLES[artefact])
    if artefact == "table4":
        return format_table(table_functions.table4_next_item(pipeline), title=_TABLES[artefact])
    if artefact == "table5":
        return format_table(table_functions.table5_mask_ablation(pipeline), title=_TABLES[artefact])
    if artefact == "table6":
        return format_table(table_functions.table6_hyperparameters(pipeline), title=_TABLES[artefact])
    if artefact == "table7":
        return format_table(table_functions.table7_case_study(pipeline), title=_TABLES[artefact])
    if artefact == "figure6":
        curves = figure_functions.figure6_success_vs_length(pipeline)
        series = {name: list(values.values()) for name, values in curves.items()}
        return format_series(series, x_label="length index", title=_FIGURES[artefact])
    if artefact == "figure7":
        sweep = figure_functions.figure7_aggressiveness(pipeline)
        parts = []
        for name, rows in sweep.items():
            parts.append(format_table(rows, title=f"{_FIGURES[artefact]} [{name}]"))
        return "\n\n".join(parts)
    if artefact == "figure8":
        data = figure_functions.figure8_impressionability_distribution(pipeline)
        rows = [
            {"bin_left": round(left, 3), "bin_right": round(right, 3), "count": count}
            for left, right, count in zip(
                data["histogram_edges"][:-1], data["histogram_edges"][1:], data["histogram_counts"]
            )
        ]
        summary = f"mean={data['mean']:.3f} std={data['std']:.3f}"
        if "correlation_with_ground_truth" in data:
            summary += f" corr(ground truth)={data['correlation_with_ground_truth']:.3f}"
        return format_table(rows, title=f"{_FIGURES[artefact]} ({summary})")
    if artefact == "figure9":
        evolution = figure_functions.figure9_stepwise_evolution(pipeline)
        parts = []
        for name, curves in evolution.items():
            parts.append(format_series(curves, title=f"{_FIGURES[artefact]} [{name}]"))
        return "\n\n".join(parts)
    if artefact == "ablation-embedding":
        rows = ablation_functions.ablation_embedding_init(pipeline)
        return format_table(rows, title=_ABLATIONS[artefact])
    if artefact == "ablation-padding":
        rows = ablation_functions.ablation_padding_scheme(pipeline)
        return format_table(rows, title=_ABLATIONS[artefact])
    if artefact == "ablation-decoding":
        rows = ablation_functions.ablation_decoding(pipeline)
        return format_table(rows, title=_ABLATIONS[artefact])
    if artefact == "ext-interactive":
        rows = extension_functions.extension_interactive_comparison(pipeline)
        return format_table(rows, title=_EXTENSIONS[artefact])
    if artefact == "ext-kg":
        rows = extension_functions.extension_kg_comparison(pipeline)
        return format_table(rows, title=_EXTENSIONS[artefact])
    if artefact == "ext-category":
        rows = extension_functions.extension_category_objectives(pipeline)
        return format_table(rows, title=_EXTENSIONS[artefact])
    if artefact == "ext-quality":
        rows = extension_functions.extension_path_quality_report(pipeline)
        return format_table(rows, title=_EXTENSIONS[artefact])
    raise ValueError(f"unknown artefact '{artefact}'")


def _run_bench(args: argparse.Namespace) -> int:
    """The ``bench`` artefact: run the perf harness and print cache hit rates."""
    from repro.perf.bench import format_summary, run_benchmarks

    # The harness always benchmarks its fixed-seed synthetic corpus; say so
    # loudly instead of silently ignoring dataset-shaping options.
    ignored = [
        name
        for name, value, default in (
            ("--dataset", args.dataset, "movielens"),
            ("--seed", args.seed, 0),
            ("--scale", args.scale, None),
            ("--data-directory", args.data_directory, None),
        )
        if value != default
    ]
    if ignored:
        print(
            f"warning: bench ignores {', '.join(ignored)} — it always runs the "
            "fixed-seed synthetic perf corpus (see repro.perf.bench)",
            file=sys.stderr,
        )
    # The sharded_evaluation section always sweeps 1/2/4 workers and the
    # other sections are fixed serial workloads, so only --shard-backend and
    # --vocab-shards shape the bench; say so for the rest.
    ignored_shard = [
        name
        for name, value in (
            ("--num-workers", args.num_workers),
            ("--rollout-chunk-size", args.rollout_chunk_size),
        )
        if value is not None
    ]
    if ignored_shard:
        print(
            f"warning: bench ignores {', '.join(ignored_shard)} — the "
            "sharded_evaluation section sweeps a fixed 1/2/4 worker grid "
            "(--shard-backend and --vocab-shards do apply)",
            file=sys.stderr,
        )
    # Validate the flags eagerly (clear ConfigurationError before minutes of
    # benchmarking) but hand run_benchmarks the RAW backend value: the
    # sharded section resolves it against its own 4-worker sweep, so an
    # omitted flag keeps the documented thread default instead of the
    # num_workers=1 'serial' resolution.
    _, _, vocab_shards, _ = _resolve_shard_args(args)
    from repro.perf.bench import resolve_sections

    sections = args.sections.split(",") if args.sections else None
    resolve_sections(sections)  # fail on typos before training the model
    profile = _resolve_bench_profile(args.profile)  # and on unknown profiles
    output = args.output or "BENCH_path_planning.json"

    def run() -> dict:
        return run_benchmarks(
            profile=profile,
            output=output,
            shard_backend=args.shard_backend,
            vocab_shards=vocab_shards,
            sections=sections,
        )

    if args.cprofile:
        from repro.perf.bench import profile_benchmarks

        report, stats_path = profile_benchmarks(run, output)
        print(f"cProfile stats written to {stats_path}", file=sys.stderr)
    else:
        report = run()
    print(format_summary(report))
    print(f"report written to {output}")
    return 0


def _run_serve_sim_ab(args: argparse.Namespace, tenant_count: int) -> int:
    """``serve-sim --tenants 2``: the online A/B harness over one fleet.

    Fits one IRN backbone, binds two tenants to the serving fleet — the
    ``control`` arm serves the backbone's objective-blind top-1
    recommendations, the ``treatment`` arm serves the beam planner's
    objective-aware steps — and drives identical simulated user cohorts
    (:mod:`repro.simulation`) through the typed ``serve`` surface, one
    tenanted request per session step.  Prints per-arm interactive
    metrics, the treatment's uplift, and each tenant's p50/p95 serving
    latency graded against ``--slo-p95``.
    """
    import json

    from repro.config import resolve_cohort_sessions, resolve_slo_p95
    from repro.core.beam import BeamSearchPlanner
    from repro.core.irn import IRN
    from repro.distributed.config import resolve_heartbeat_interval, resolve_transport
    from repro.evaluation.evaluator import IRSEvaluator
    from repro.evaluation.protocol import sample_objectives
    from repro.perf.bench import build_bench_split, machine_info
    from repro.perf.bench import bench_config as resolve_bench_config
    from repro.tenant import TenantRegistry
    from repro.tenant.ab import TenantArm, run_ab
    from repro.utils.exceptions import ConfigurationError

    if tenant_count != 2:
        raise ConfigurationError(
            f"--tenants {tenant_count} is not supported: the A/B harness "
            "compares exactly 2 tenants (1 = single-tenant serve-sim)"
        )
    serve = _resolve_serve_args(args)
    replication = _resolve_replica_args(args, serve["duration"])
    transport = resolve_transport(args.transport)
    heartbeat_interval = resolve_heartbeat_interval(args.heartbeat_interval)
    cohort_sessions = resolve_cohort_sessions(args.cohort_sessions)
    slo_p95_ms = 1000.0 * resolve_slo_p95(args.slo_p95)
    num_workers, backend, vocab_shards, _ = _resolve_shard_args(args)
    retrieval_spec, candidate_k, generator = _resolve_retrieval_args(args)
    if args.arrival_rate is not None or args.duration is not None:
        print(
            "warning: the A/B harness drives closed-loop session traffic; "
            "--arrival-rate/--duration do not apply under --tenants 2",
            file=sys.stderr,
        )

    bench_config = resolve_bench_config(_resolve_bench_profile(args.profile))
    split = build_bench_split(bench_config)
    instances = sample_objectives(
        split,
        min_objective_interactions=2,
        seed=args.seed,
        max_instances=cohort_sessions,
    )
    print(
        f"training the shared IRN backbone and fitting two tenants "
        f"({len(instances)} sessions per cohort)...",
        file=sys.stderr,
    )
    backbone = IRN(**bench_config["irn"]).fit(split)
    evaluator = IRSEvaluator(backbone)

    def make_planner():
        # The treatment arm plans over retrieval shortlists when --retrieval
        # is given; the shared generator is fit once and reused per planner.
        return BeamSearchPlanner(
            backbone,
            beam_width=bench_config["beam_width"],
            branch_factor=bench_config["branch_factor"],
            max_length=bench_config["max_path_length"],
            num_workers=num_workers,
            shard_backend=backend,
            vocab_shards=vocab_shards,
            candidate_generator=generator,
        ).fit(split)

    def tenant_factory():
        registry = TenantRegistry()
        registry.add("control", backbone)
        registry.add("treatment", make_planner())
        return registry

    replicated = replication["num_replicas"] > 1 or transport == "process"
    fleet_kwargs = dict(
        max_queue_depth=serve["max_queue_depth"],
        admission_policy=serve["admission_policy"],
        drain_deadline=serve["drain_deadline"],
    )
    if transport == "process":
        from repro.distributed import RemoteReplicaSet

        front_end = RemoteReplicaSet(
            make_planner,
            num_replicas=replication["num_replicas"],
            dispatch_policy=replication["dispatch_policy"],
            heartbeat_interval=heartbeat_interval,
            tenant_factory=tenant_factory,
            **fleet_kwargs,
        )
    elif replicated:
        from repro.replica import ReplicaSet

        front_end = ReplicaSet(
            make_planner,
            num_replicas=replication["num_replicas"],
            dispatch_policy=replication["dispatch_policy"],
            tenant_factory=tenant_factory,
            **fleet_kwargs,
        )
    else:
        from repro.serve import ServingLoop

        front_end = ServingLoop(make_planner(), tenants=tenant_factory(), **fleet_kwargs)

    with front_end:
        ab_report = run_ab(
            front_end,
            TenantArm("control"),
            TenantArm("treatment"),
            instances,
            evaluator,
            max_steps=2 * bench_config["max_path_length"],
            seed=args.seed,
            slo_p95_ms=slo_p95_ms,
        )
        fleet_stats = front_end.stats()

    report = {
        "harness": "ab",
        "machine": machine_info(),
        "tenants": tenant_count,
        "cohort_sessions": len(instances),
        "transport": {"kind": transport},
        "replication": {**replication, "enabled": replicated},
        "retrieval": {"spec": retrieval_spec, "candidate_k": candidate_k},
        "ab": ab_report.summary(),
        "fleet_tenants": fleet_stats.get("tenants", {}),
    }
    for row in ab_report.rows():
        slo = (
            f", p95 {'within' if row.get('slo_met') else 'OVER'} "
            f"SLO {row['slo_p95_ms']:.0f}ms"
            if "slo_met" in row
            else ""
        )
        print(
            f"{row['framework']:>9} (tenant {row['tenant']}): interactive SR "
            f"{row['interactive_SR']:.4f}, acceptance {row['acceptance_rate']:.4f} "
            f"over {row['requests']} requests | latency ms p50 {row['p50_ms']} "
            f"p95 {row['p95_ms']}{slo}"
        )
    print(
        f"uplift (treatment - control interactive SR): {ab_report.uplift:+.4f} "
        f"across {len(instances)} identically-seeded sessions per arm"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0


def _run_serve_sim(args: argparse.Namespace) -> int:
    """The ``serve-sim`` artefact: synthetic traffic through the serving loop.

    Builds the bench corpus (smoke profile under ``--profile fast``), fits
    the IRN, wraps a sharded beam planner in a
    :class:`~repro.serve.loop.ServingLoop` and offers open-loop Poisson
    traffic for ``--duration`` seconds at ``--arrival-rate`` requests/sec.
    With ``--replicas`` > 1 or ``--refit-at`` the traffic is served by a
    :class:`~repro.replica.set.ReplicaSet` instead (one independently
    fitted backbone per replica; the refit trains fresh ones off-path and
    flips the generation mid-trace).  Prints the latency/throughput/queue
    report (and writes it as JSON to ``--output`` when given).
    """
    import json

    from repro.core.beam import BeamSearchPlanner
    from repro.core.irn import IRN
    from repro.evaluation.protocol import sample_objectives
    from repro.perf.bench import build_bench_split, machine_info
    from repro.perf.bench import bench_config as resolve_bench_config
    from repro.serve import ServingLoop, run_open_loop

    from repro.config import resolve_tenants

    tenant_count = resolve_tenants(args.tenants)
    if tenant_count > 1:
        return _run_serve_sim_ab(args, tenant_count)

    serve = _resolve_serve_args(args)
    replication = _resolve_replica_args(args, serve["duration"])
    # Transport knobs validate eagerly (before any model trains), same as
    # every other serve-sim flag.
    from repro.distributed.config import resolve_heartbeat_interval, resolve_transport

    transport = resolve_transport(args.transport)
    heartbeat_interval = resolve_heartbeat_interval(args.heartbeat_interval)
    if args.heartbeat_interval is not None and transport != "process":
        print(
            "warning: --heartbeat-interval only applies under --transport "
            "process; the in-process fleet has no heartbeats",
            file=sys.stderr,
        )
    num_workers, backend, vocab_shards, _ = _resolve_shard_args(args)
    retrieval_spec, candidate_k, generator = _resolve_retrieval_args(args)
    tracer = None
    if args.trace_sample_rate is not None:
        from repro.obs import Tracer
        from repro.obs.config import resolve_trace_sample_rate

        tracer = Tracer(
            enabled=True, sample_rate=resolve_trace_sample_rate(args.trace_sample_rate)
        )
    if args.rollout_chunk_size is not None:
        print(
            "warning: serve-sim ignores --rollout-chunk-size — it drives "
            "next_step serving traffic, not chunked evaluation rollouts",
            file=sys.stderr,
        )
    bench_config = resolve_bench_config(_resolve_bench_profile(args.profile))
    split = build_bench_split(bench_config)
    instances = sample_objectives(
        split,
        min_objective_interactions=2,
        seed=args.seed,
        max_instances=bench_config["num_instances"],
    )
    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]

    def make_planner(backbone):
        # The generator (when any) is shared across replicas/refits: the
        # first fit trains it, later planner fits reuse it, so every
        # generation serves from one identical shortlist index.
        return BeamSearchPlanner(
            backbone,
            beam_width=bench_config["beam_width"],
            branch_factor=bench_config["branch_factor"],
            max_length=bench_config["max_path_length"],
            num_workers=num_workers,
            shard_backend=backend,
            vocab_shards=vocab_shards,
            candidate_generator=generator,
        ).fit(split)

    replicated = (
        replication["num_replicas"] > 1
        or replication["refit_at"] is not None
        or transport == "process"
    )
    if replicated:
        from repro.replica import ReplicaSet, run_replicated_open_loop

        def planner_factory():
            # One independently fitted backbone per replica (and per refit):
            # deterministic config + seed, so every generation's weights are
            # identical and routing stays bit-exact.  Under the process
            # transport the factory runs ONCE per generation — fork hands
            # every worker its copy and refits ship versioned artifacts.
            return make_planner(IRN(**bench_config["irn"]).fit(split))

        if transport == "process":
            from repro.distributed import RemoteReplicaSet

            print(
                f"spawning {replication['num_replicas']} worker process(es) "
                f"over the binary transport...",
                file=sys.stderr,
            )
            replica_set = RemoteReplicaSet(
                planner_factory,
                num_replicas=replication["num_replicas"],
                max_queue_depth=serve["max_queue_depth"],
                admission_policy=serve["admission_policy"],
                drain_deadline=serve["drain_deadline"],
                dispatch_policy=replication["dispatch_policy"],
                tracer=tracer,
                heartbeat_interval=heartbeat_interval,
            )
        else:
            print(
                f"training {replication['num_replicas']} replica backbone(s)...",
                file=sys.stderr,
            )
            replica_set = ReplicaSet(
                planner_factory,
                num_replicas=replication["num_replicas"],
                max_queue_depth=serve["max_queue_depth"],
                admission_policy=serve["admission_policy"],
                drain_deadline=serve["drain_deadline"],
                dispatch_policy=replication["dispatch_policy"],
                tracer=tracer,
            )
        with replica_set:
            report = run_replicated_open_loop(
                replica_set,
                contexts,
                arrival_rate=serve["arrival_rate"],
                duration=serve["duration"],
                seed=args.seed,
                max_length=bench_config["max_path_length"],
                refit_at=replication["refit_at"],
            )
        planner = replica_set.planner
        # Per-replica queue count (each replica's loop mirrors the planner's
        # worker partition); the total across replicas is in "replication".
        num_queues = planner.num_workers
    else:
        # The single-loop path is the only consumer of this backbone — the
        # replicated branch's factory fits one per replica instead.
        planner = make_planner(IRN(**bench_config["irn"]).fit(split))
        with ServingLoop(
            planner,
            max_queue_depth=serve["max_queue_depth"],
            admission_policy=serve["admission_policy"],
            drain_deadline=serve["drain_deadline"],
            tracer=tracer,
        ) as loop:
            report = run_open_loop(
                loop,
                contexts,
                arrival_rate=serve["arrival_rate"],
                duration=serve["duration"],
                seed=args.seed,
                max_length=bench_config["max_path_length"],
            )
        num_queues = loop.num_queues
    report["machine"] = machine_info()
    report["sharding"] = {
        "num_workers": planner.num_workers,
        "backend": planner.shard_backend,
        "vocab_shards": planner.vocab_shards,
        "num_queues": num_queues,
    }
    report["replication"] = {**replication, "enabled": replicated}
    report["transport"] = {"kind": transport}
    if transport == "process":
        report["transport"]["heartbeat_interval"] = heartbeat_interval
        report["transport"].update(replica_set.stats()["transport"])
    report["retrieval"] = {"spec": retrieval_spec, "candidate_k": candidate_k}
    if generator is not None and hasattr(planner, "cache_info"):
        # Worker-process planners keep their caches remote; the proxy has
        # no cache_info, so the retrieval metrics stay worker-side there.
        report["retrieval"]["metrics"] = planner.cache_info().get("retrieval")
    if tracer is not None:
        report["observability"] = {
            "sample_rate": tracer.sample_rate,
            "traces_retained": len(tracer.trace_ids()),
            "counters": tracer.counters(),
            "span_summary": tracer.summary(),
        }
    latency = report["latency_ms"]
    print(
        f"async serving sim: {report['admitted_requests']}/{report['offered_requests']} "
        f"requests admitted ({report['rejected_requests']} rejected) over "
        f"{report['duration_seconds']}s at {report['arrival_rate']} req/s offered"
    )
    print(
        f"throughput {report['throughput_rps']} req/s | latency ms "
        f"p50 {latency['p50']} p95 {latency['p95']} p99 {latency['p99']} "
        f"(mean {latency['mean']}, max {latency['max']})"
    )
    print(
        f"queues: {num_queues} x depth<={serve['max_queue_depth']} "
        f"({serve['admission_policy']}), depth max {report['queue_depth']['max']} "
        f"mean {report['queue_depth']['mean']}, micro-batch mean "
        f"{report['micro_batches']['mean_size']} max {report['micro_batches']['max_size']}"
    )
    if replicated:
        dispatch = report["dispatch"]
        print(
            f"replicas: {replication['num_replicas']} ({replication['dispatch_policy']}), "
            f"picks {dispatch['picks']}, generations served "
            f"{report['generations_served']}, no pause: {report['no_pause']}"
        )
        if "refit" in report:
            refit = report["refit"]
            print(
                f"hot refit: generation {refit['generation_from']} -> "
                f"{refit['generation_to']} trained off-path in "
                f"{refit['train_seconds']}s, flipped in "
                f"{round(1e6 * refit['flip_seconds'], 1)} us with "
                f"{refit['inflight_at_flip']} request(s) in flight "
                f"(completed during trace: {refit['completed_during_trace']})"
            )
    if transport == "process":
        transport_stats = report["transport"]
        print(
            f"transport: process ({replication['num_replicas']} worker(s), "
            f"heartbeat every {heartbeat_interval}s), "
            f"{transport_stats.get('requests_sent', 0)} request(s) shipped, "
            f"{transport_stats.get('heartbeats', 0)} heartbeat(s), "
            f"{transport_stats.get('redispatched', 0)} re-dispatched"
        )
    if generator is not None:
        metrics = report["retrieval"].get("metrics") or {}
        print(
            f"retrieval: {retrieval_spec} shortlists (k={candidate_k}), "
            f"{metrics.get('requests', 0)} request(s), "
            f"{metrics.get('fallbacks', 0)} fallback(s) to exact scoring"
        )
    if tracer is not None:
        counters = report["observability"]["counters"]
        print(
            f"tracing: sample rate {tracer.sample_rate}, "
            f"{report['observability']['traces_retained']} trace(s) retained, "
            f"{counters['spans']} span(s) recorded, {counters['sampled_out']} sampled out"
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.output}")
    return 0


def _drive_traced_workload(args: argparse.Namespace, sample_rate: "float | None"):
    """Serve a short traced open-loop workload over the bench corpus.

    Shared by the ``trace`` and ``metrics`` artefacts: builds the bench
    split (smoke under ``--profile fast``), fits one IRN + planner, and
    offers a fixed-count seeded Poisson trace through a
    :class:`~repro.serve.loop.ServingLoop` with tracing enabled.  Returns
    ``(tracer, open-loop report)``; being seeded and fixed-count, the trace
    IDs (and the artefact) are identical across runs on any machine.
    """
    from repro.core.beam import BeamSearchPlanner
    from repro.core.irn import IRN
    from repro.evaluation.protocol import sample_objectives
    from repro.obs import Tracer
    from repro.perf.bench import build_bench_split
    from repro.perf.bench import bench_config as resolve_bench_config
    from repro.serve import ServingLoop, run_open_loop
    from repro.serve.config import resolve_arrival_rate

    num_workers, backend, vocab_shards, _ = _resolve_shard_args(args)
    bench_config = resolve_bench_config(_resolve_bench_profile(args.profile))
    split = build_bench_split(bench_config)
    instances = sample_objectives(
        split,
        min_objective_interactions=2,
        seed=args.seed,
        max_instances=bench_config["num_instances"],
    )
    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    planner = BeamSearchPlanner(
        IRN(**bench_config["irn"]).fit(split),
        beam_width=bench_config["beam_width"],
        branch_factor=bench_config["branch_factor"],
        max_length=bench_config["max_path_length"],
        num_workers=num_workers,
        shard_backend=backend,
        vocab_shards=vocab_shards,
    ).fit(split)
    tracer = Tracer(enabled=True, sample_rate=sample_rate)
    with ServingLoop(planner, tracer=tracer) as loop:
        report = run_open_loop(
            loop,
            contexts,
            arrival_rate=resolve_arrival_rate(args.arrival_rate),
            num_requests=bench_config["serve_requests_per_context"] * len(contexts),
            seed=args.seed,
            max_length=bench_config["max_path_length"],
        )
    return tracer, report


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` artefact: dump every span of a traced workload as JSON."""
    from repro.obs.config import resolve_trace_sample_rate
    from repro.obs.export import traces_to_json

    sample_rate = resolve_trace_sample_rate(args.trace_sample_rate)
    tracer, report = _drive_traced_workload(args, sample_rate)
    payload = traces_to_json(tracer)
    counters = tracer.counters()
    print(
        f"traced {len(tracer.trace_ids())} of {report['admitted_requests']} "
        f"request(s) at sample rate {tracer.sample_rate} "
        f"({counters['spans']} span(s) recorded)",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"traces written to {args.output}")
    else:
        print(payload)
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    """The ``metrics`` artefact: dump the process metrics registry.

    Drives the same traced workload as ``trace`` first, so the dump shows a
    populated registry (serving latency histograms, queue/admission
    counters, cache and KV stats) rather than an empty one.
    """
    from repro.obs.export import metrics_to_json, metrics_to_prometheus

    _tracer, report = _drive_traced_workload(args, sample_rate=1.0)
    if args.metrics_format == "json":
        payload = metrics_to_json()
    else:
        payload = metrics_to_prometheus().rstrip("\n")
    print(
        f"registry snapshot after serving {report['admitted_requests']} request(s)",
        file=sys.stderr,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"metrics written to {args.output}")
    else:
        print(payload)
    return 0


def run(argv: list[str] | None = None) -> int:
    """Console entry point: like :func:`main`, but configuration mistakes
    exit nonzero with one clear ``error:`` line instead of a traceback
    (``main`` keeps raising so programmatic callers and tests can match the
    exception)."""
    from repro.utils.exceptions import ConfigurationError

    try:
        return main(argv)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Logging threshold applies before any model trains, so admission /
    # refit / generation-guard log lines honour it from the first request.
    from repro.utils.logging import configure_logging

    configure_logging(args.log_level)
    if args.artefact == "bench":
        return _run_bench(args)
    if args.artefact == "serve-sim":
        return _run_serve_sim(args)
    if args.artefact == "trace":
        return _run_trace(args)
    if args.artefact == "metrics":
        return _run_metrics(args)
    config = _make_config(args)
    pipeline = ExperimentPipeline(config)

    artefacts = sorted(_TABLES) + sorted(_FIGURES) if args.artefact == "all" else [args.artefact]
    reports = [_render(artefact, pipeline, config) for artefact in artefacts]
    report = "\n\n".join(reports)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run())
