"""CI gate over a ``BENCH_path_planning.json`` report.

``python -m repro.perf.gate <report.json>`` re-checks every *deterministic*
contract bit a bench run records — the parity and no-drop guarantees, not
the machine-bound throughput numbers — and exits nonzero listing every
violation, so the perf-smoke workflow fails loudly when a serving contract
regresses instead of silently uploading a broken artefact:

* ``tensor_ops`` — fused attention matches the graph implementation
  (``fused_parity``), decode-step K/V appends never copy the full prefix
  (``no_prefix_copy``), the float32 inference mode stays inside its
  documented logit tolerance, and the in-place ops refuse to run under
  grad.
* ``beam_planning`` / ``greedy_planning`` — batched plans equal scalar.
* ``nextitem_evaluation`` — batched ranks equal scalar.
* ``irs_stepwise_replanning`` — cached serving matches isolated semantics.
* ``incremental_decoding`` — session-cached plans equal full re-encoding.
* ``sharded_evaluation`` — plans bit-identical at every worker count (and
  across the fork boundary when the platform has fork).
* ``async_serving`` — lockstep-replay responses bit-identical to
  sequential serving at every worker count.
* ``replicated_serving`` — shared-generation responses bit-identical to
  single-replica serving; the hot refit errored zero admitted requests and
  rejected zero requests under the ``block`` policy (``no_pause``); the
  refit completed and flipped exactly one generation forward.
* ``distributed_serving`` — multi-process responses bit-identical to
  sequential serving at every worker count (lockstep replay AND the
  distinct-plan burst); the SIGKILL chaos run dropped zero admitted
  requests, kept answers bit-identical, and flipped the victim unhealthy
  within the missed-heartbeat budget.  Skipped wholesale when the platform
  recorded ``fork_available: false`` (codec numbers only).
* ``observability`` — disabled tracing is a structural no-op (zero
  trace/span allocations during the untraced run), enabled full-sampling
  overhead stays inside the recorded p95 budget, trace IDs are identical
  across identically-seeded repeats, and the async/replicated lockstep
  parity bits hold with tracing enabled.
* ``two_stage_retrieval`` — full-coverage candidate sets plan
  bit-identically to the exact planner (``full_vocab_parity``), every
  candidate set contains its objective, and every tier records its
  approximation metrics (overlap@k per generator, with zero fallbacks
  implying a finite overlap) — throughput and regret are machine-bound
  trajectory numbers, reported but not gated.

Only the sections present in the report are checked (subset runs gate on
what they ran), but ``--require`` names sections that must be present —
CI's perf-smoke requires the serving sections so a filtered-down bench
can't dodge the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

__all__ = ["collect_violations", "main"]


def _check_replicated(section: dict, violations: "list[str]") -> None:
    parity = section.get("parity", {})
    if not parity.get("responses_match_single_replica"):
        violations.append(
            "replicated_serving: shared-generation responses differ from "
            "single-replica serving (parity bit false)"
        )
    refit_run = section.get("hot_refit", {})
    if refit_run.get("errored_requests", 0) != 0:
        violations.append(
            f"replicated_serving: hot refit errored "
            f"{refit_run.get('errored_requests')} admitted request(s)"
        )
    policy = refit_run.get("admission", {}).get("policy")
    if policy == "block" and refit_run.get("rejected_requests", 0) != 0:
        violations.append(
            f"replicated_serving: {refit_run.get('rejected_requests')} request(s) "
            f"rejected under the block admission policy"
        )
    if not refit_run.get("no_pause"):
        violations.append("replicated_serving: the no_pause contract bit is false")
    refit = refit_run.get("refit")
    if refit is None:
        violations.append("replicated_serving: the hot-refit run recorded no refit")
    elif refit.get("generation_to") != refit.get("generation_from", 0) + 1:
        violations.append(
            f"replicated_serving: refit flipped generation "
            f"{refit.get('generation_from')} -> {refit.get('generation_to')} "
            f"(expected exactly one step forward)"
        )


def _check_tensor_ops(section: dict, violations: "list[str]") -> None:
    attention = section.get("attention", {})
    if not attention.get("fused_parity"):
        violations.append(
            "tensor_ops: fused attention diverged from the graph implementation "
            f"(max abs diff {attention.get('max_abs_diff')})"
        )
    allocation = section.get("decode_allocation", {})
    if not allocation.get("no_prefix_copy"):
        violations.append(
            "tensor_ops: decode-step K/V appends copied the full prefix "
            "(no_prefix_copy bit false)"
        )
    float32 = section.get("float32", {})
    if not float32.get("within_tolerance"):
        violations.append(
            "tensor_ops: float32 inference deviates beyond the documented "
            f"tolerance ({float32.get('max_abs_diff')} > {float32.get('tolerance')})"
        )
    if not section.get("inplace_guard_raises"):
        violations.append(
            "tensor_ops: in-place tensor ops did not refuse to run under grad"
        )


def _check_distributed(section: dict, violations: "list[str]") -> None:
    if section.get("fork_available") is False:
        # Codec-only report: there is no process transport to gate.
        return
    workers = section.get("workers", [])
    if not workers:
        violations.append(
            "distributed_serving: the section recorded no worker counts"
        )
    for row in workers:
        label = f"{row.get('num_workers')} worker(s)"
        if not row.get("responses_match_sequential"):
            violations.append(
                f"distributed_serving: lockstep responses at {label} differ "
                f"from sequential serving"
            )
        if not row.get("burst_answers_match"):
            violations.append(
                f"distributed_serving: burst answers at {label} differ from "
                f"the reference planner"
            )
    chaos = section.get("chaos")
    if chaos is None:
        violations.append("distributed_serving: the section recorded no chaos run")
        return
    if not chaos.get("zero_dropped"):
        violations.append(
            "distributed_serving: the SIGKILL chaos run dropped admitted "
            "request(s) (zero_dropped bit false)"
        )
    if not chaos.get("answers_match"):
        violations.append(
            "distributed_serving: answers changed under the SIGKILL chaos run"
        )
    if not chaos.get("unhealthy_within_budget"):
        violations.append(
            f"distributed_serving: the killed worker flipped unhealthy in "
            f"{chaos.get('detect_seconds')} s, over the missed-heartbeat "
            f"budget of {chaos.get('budget_seconds')} s"
        )


def _check_observability(section: dict, violations: "list[str]") -> None:
    if not section.get("disabled_noop"):
        delta = section.get("disabled", {}).get("allocation_delta")
        violations.append(
            "observability: disabled tracing allocated traces/spans during the "
            f"untraced run (allocation delta {delta}) — the zero-cost-when-off "
            "contract is broken"
        )
    overhead = section.get("overhead", {})
    if not overhead.get("within_budget"):
        violations.append(
            "observability: enabled tracing overhead exceeded its budget "
            f"(p95 delta {overhead.get('p95_delta_ms')} ms > "
            f"budget {overhead.get('budget_ms')} ms)"
        )
    if not section.get("deterministic_trace_ids"):
        violations.append(
            "observability: trace IDs differ across identically-seeded runs"
        )
    if not section.get("async_parity_with_tracing"):
        violations.append(
            "observability: async lockstep responses changed with tracing enabled"
        )
    if not section.get("replicated_parity_with_tracing"):
        violations.append(
            "observability: replicated lockstep responses changed with tracing enabled"
        )


def _check_two_stage_retrieval(section: dict, violations: "list[str]") -> None:
    if not section.get("full_vocab_parity"):
        violations.append(
            "two_stage_retrieval: full-vocabulary candidate sets did not plan "
            "bit-identically to the exact planner (full_vocab_parity false)"
        )
    if not section.get("objective_in_candidates"):
        violations.append(
            "two_stage_retrieval: a candidate set was missing its objective item"
        )
    tiers = section.get("tiers", [])
    if not tiers:
        violations.append("two_stage_retrieval: the section recorded no vocab tiers")
    for tier in tiers:
        label = f"tier V={tier.get('vocab_size')}"
        generators = tier.get("generators", {})
        if not generators:
            violations.append(
                f"two_stage_retrieval: {label} recorded no generator backends"
            )
        for name, row in generators.items():
            overlap = row.get("overlap_at_k")
            if overlap is None or not 0.0 <= float(overlap) <= 1.0:
                violations.append(
                    f"two_stage_retrieval: {label} generator '{name}' recorded "
                    f"no valid overlap@k (got {overlap})"
                )
            if "mean_plan_regret" not in row:
                violations.append(
                    f"two_stage_retrieval: {label} generator '{name}' recorded "
                    f"no plan-regret measurement"
                )
            if row.get("fallbacks", 0) > row.get("requests", 0):
                violations.append(
                    f"two_stage_retrieval: {label} generator '{name}' counted "
                    f"more fallbacks than requests"
                )


def _check_multi_tenant(section: dict, violations: "list[str]") -> None:
    per_kind = section.get("per_kind", {})
    if not per_kind:
        violations.append("multi_tenant: the section recorded no request kinds")
    for kind, row in per_kind.items():
        if not row.get("parity"):
            violations.append(
                f"multi_tenant: '{kind}' answers served through the tenant "
                "registry differ from direct model calls"
            )
    if not section.get("isolation", {}).get("isolated"):
        violations.append(
            "multi_tenant: a bounded tenant's admission rejects leaked outside "
            "its own scope (isolation bit false)"
        )
    if not section.get("ab", {}).get("deterministic"):
        violations.append(
            "multi_tenant: identically-seeded A/B harness runs produced "
            "different experiment summaries"
        )


def collect_violations(report: dict, require: "Sequence[str]" = ()) -> "list[str]":
    """Every violated contract bit in ``report`` (empty list means green)."""
    violations: "list[str]" = []
    for name in require:
        if name not in report:
            violations.append(f"{name}: required section missing from the report")

    if "tensor_ops" in report:
        _check_tensor_ops(report["tensor_ops"], violations)
    if "beam_planning" in report and not report["beam_planning"].get("plans_equal"):
        violations.append("beam_planning: batched plans differ from scalar plans")
    if "greedy_planning" in report and not report["greedy_planning"].get("plans_equal"):
        violations.append("greedy_planning: batched rollouts differ from scalar rollouts")
    if "nextitem_evaluation" in report and not report["nextitem_evaluation"].get(
        "ranks_equal"
    ):
        violations.append("nextitem_evaluation: batched ranks differ from scalar ranks")
    if "irs_stepwise_replanning" in report and not report["irs_stepwise_replanning"].get(
        "cached_paths_match_isolated"
    ):
        violations.append(
            "irs_stepwise_replanning: cached serving diverged from isolated semantics"
        )
    if "incremental_decoding" in report and not report["incremental_decoding"].get(
        "plans_equal"
    ):
        violations.append(
            "incremental_decoding: session-cached plans differ from full re-encoding"
        )
    if "sharded_evaluation" in report:
        sharded = report["sharded_evaluation"]
        for row in sharded.get("workers", []):
            if not row.get("plans_equal_serial"):
                violations.append(
                    f"sharded_evaluation: plans at {row.get('num_workers')} worker(s) "
                    f"differ from serial"
                )
        if sharded.get("process_parity") is False:
            violations.append(
                "sharded_evaluation: fork-process plans differ from serial plans"
            )
    if "async_serving" in report:
        for row in report["async_serving"].get("workers", []):
            if not row.get("responses_match_sequential"):
                violations.append(
                    f"async_serving: responses at {row.get('num_workers')} worker(s) "
                    f"differ from sequential serving"
                )
    if "replicated_serving" in report:
        _check_replicated(report["replicated_serving"], violations)
    if "distributed_serving" in report:
        _check_distributed(report["distributed_serving"], violations)
    if "observability" in report:
        _check_observability(report["observability"], violations)
    if "two_stage_retrieval" in report:
        _check_two_stage_retrieval(report["two_stage_retrieval"], violations)
    if "multi_tenant" in report:
        _check_multi_tenant(report["multi_tenant"], violations)
    return violations


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to a BENCH_path_planning.json report")
    parser.add_argument(
        "--require",
        default=None,
        help="comma-separated section names that must be present in the report",
    )
    args = parser.parse_args(argv)
    with open(args.report, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    require = (
        [name.strip() for name in args.require.split(",") if name.strip()]
        if args.require
        else []
    )
    violations = collect_violations(report, require=require)
    if violations:
        for violation in violations:
            print(f"PERF GATE FAIL: {violation}", file=sys.stderr)
        return 1
    checked = [name for name in report if isinstance(report.get(name), dict)]
    print(f"perf gate ok: {len(violations)} violation(s) across sections {checked}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
