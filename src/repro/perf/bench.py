"""Benchmark harness for the batched inference engine and the cache subsystem.

Measures, on the synthetic corpus, how the batched planning/evaluation paths
compare against the scalar (pre-batching) ones:

* **beam planning** — ``BeamSearchPlanner.plan_paths_batch`` (one fused
  transformer forward per depth across all hypotheses and instances) versus
  the same planner driven through a :class:`ScalarOnlyBackbone` facade, which
  hides ``score_with_objective_batch`` and therefore reproduces the scalar
  one-forward-per-hypothesis behaviour.
* **greedy rollouts** — ``IRN.generate_paths_batch`` lockstep Algorithm 1
  versus the per-instance ``generate_path`` loop.
* **next-item evaluation** — ``rank_of_batch`` versus per-instance
  ``rank_of``.

and how the :mod:`repro.cache` subsystem compares against the PR 1 baseline:

* **stepwise IRS replanning** — the ``next_step``-driven lockstep serving
  workload (:func:`repro.evaluation.protocol.rollout_next_step`) with the
  plan/serving caches enabled versus a planner configured exactly like the
  pre-cache baseline (single replan slot, no memoisation, no sessions).
  Work is measured in **token-work** (``irn.decode_stats``: positions
  encoded per transformer call), the unit that stays meaningful once
  incremental decoding makes forwards unequal-sized.
* **incremental decoding** — lockstep beam planning with decoding sessions
  on versus off, on a single-layer IRN where prefix K/V reuse is exact (see
  :mod:`repro.cache.kv` for the exactness contract).

and how the :mod:`repro.shard` sharded execution subsystem scales:

* **sharded evaluation** — worker-partitioned batched beam planning at
  1 / 2 / 4 workers versus the serial planner, reporting paths/sec, speedup
  and scaling efficiency, with a bit-identical-plans check per worker count
  and a fork-process parity probe.  The section records the machine's CPU
  count — scaling numbers are only meaningful relative to the cores the run
  actually had.

and how the :mod:`repro.serve` asynchronous serving subsystem behaves:

* **async serving** — the ``next_step`` workload offered through the
  :class:`~repro.serve.loop.ServingLoop` at 1 / 2 / 4 worker-shard queues:
  a deterministic lockstep replay checked bit-identical against sequential
  serving, plus a seeded open-loop Poisson run recording throughput,
  p50/p95/p99 latency, queue-depth and micro-batch stats (wall-clock
  latency numbers are machine-bound like every throughput figure here; the
  parity bits are deterministic).

and how the :mod:`repro.replica` replicated serving subsystem behaves:

* **replicated serving** — N backbone replicas behind the dispatcher
  (:class:`~repro.replica.set.ReplicaSet`): a lockstep replay at a shared
  generation checked bit-identical against single-replica serving, plus an
  open-loop run with a **hot refit** armed mid-trace — fresh replicas train
  off-path, the generation flips atomically, old replicas drain dry — with
  the no-pause contract asserted (zero errored requests, zero rejections
  under the ``block`` policy) and latency percentiles split per generation
  around the flip.

and how the :mod:`repro.retrieval` two-stage retrieval subsystem scales:

* **two-stage retrieval** — per vocab-size tier (the ``scale`` profile
  sweeps ``10**4``/``10**5`` items by default, ``10**6`` opt-in via
  ``REPRO_BENCH_SCALE_TIERS``), exact full-vocabulary beam planning versus
  candidate-pruned planning under each generator backend, reporting
  paths/sec, p95 ``next_step`` latency, candidate-set sizes, overlap@k and
  plan regret, plus two deterministic contract bits the perf gate
  enforces: ``full_vocab_parity`` (full-coverage candidate sets plan
  bit-identically to the exact planner) and ``objective_in_candidates``.
  Corpora are built through the streaming synthetic generator into a
  memory-mapped :class:`~repro.data.store.InteractionStore`, so no tier
  materialises a dense event log.

and how the tensor engine itself performs at the bottom of every stack:

* **tensor ops** — per-op ns/call microbenchmarks at the micro-batch shapes
  the serving loop actually produces (``micro_batches.mean_size`` contexts x
  beam rows, 1-2 query positions, a few dozen key columns): score
  contraction by batched matmul vs einsum, in-place vs graph softmax and
  residual adds, the fused attention kernel vs the graph path (with the
  fused↔unfused parity bit the gate enforces), the float32 inference mode's
  logit deviation, and a simulated decode loop over the arena-backed K/V
  cache whose allocation counters prove appends no longer copy the full
  prefix (``no_prefix_copy``).

``run_benchmarks(sections=[...])`` runs any subset of the sections (the
full bench is minutes-scale; CI's smoke profile and targeted reruns use
``repro-irs bench --sections <name,...>``).

Module forwards are counted with :class:`ForwardCounter` (a wrapper around
``module.forward``) and token-work with :class:`~repro.cache.stats.
DecodeStats`, NOT wall-clock, so the CI assertions stay deterministic;
wall-clock throughput (paths/sec, forwards/sec) is reported alongside for the
perf trajectory.

Run ``PYTHONPATH=src python -m repro.perf.bench`` from the repo root (or
``repro-irs bench``) to write ``BENCH_path_planning.json``; ``--profile
smoke`` keeps it to seconds.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from typing import Sequence

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

import numpy as np

from repro.cache.stats import DecodeStats
from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.data.preprocessing import build_corpus
from repro.data.splitting import DatasetSplit, split_corpus
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.evaluation.protocol import EvaluationInstance, rollout_next_step, sample_objectives
from repro.nn.layers import Module
from repro.shard.config import fork_available, resolve_shard_backend, resolve_vocab_shards
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ForwardCounter",
    "ScalarOnlyBackbone",
    "BENCH_SECTIONS",
    "BENCH_PROFILES",
    "smoke_config",
    "default_config",
    "scale_config",
    "bench_config",
    "resolve_profile",
    "build_bench_split",
    "machine_info",
    "peak_rss_kb",
    "resolve_sections",
    "run_benchmarks",
    "profile_benchmarks",
    "format_summary",
    "main",
]


def peak_rss_kb() -> "int | None":
    """Peak resident set size of this process in KB (``None`` off-POSIX).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised to
    KB so the bench artefact is comparable across the CI matrix.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak //= 1024
    return int(peak)


def machine_info() -> dict:
    """CPU count and platform of the machine behind the recorded numbers.

    Recorded at the report root AND inside every section (satellite of the
    sharding PR): scaling efficiency at N workers is only comparable across
    bench runs when the reader can see how many cores each run actually had.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "peak_rss_kb": peak_rss_kb(),
    }


class ForwardCounter:
    """Count calls to a module's ``forward`` (deterministic, no wall-clock).

    Used as a context manager: wraps ``module.forward`` with a counting shim
    for the duration of the block and restores it afterwards.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.count = 0

    def __enter__(self) -> "ForwardCounter":
        original = self.module.forward

        def counted(*args, **kwargs):
            self.count += 1
            return original(*args, **kwargs)

        object.__setattr__(self.module, "forward", counted)
        return self

    def __exit__(self, *exc_info) -> None:
        object.__delattr__(self.module, "forward")


class ScalarOnlyBackbone:
    """Facade exposing only the scalar scoring API of a backbone.

    Hiding ``score_with_objective_batch`` forces :class:`BeamSearchPlanner`
    onto its per-hypothesis fallback, which reproduces the pre-batching
    planner (one module forward per hypothesis per depth) for baseline
    measurements and parity checks.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = f"{getattr(inner, 'name', type(inner).__name__)}-scalar"

    @property
    def corpus(self):
        return self._inner.corpus

    def score_with_objective(
        self, sequence: Sequence[int], objective: int, user_index: int | None = None
    ) -> np.ndarray:
        return self._inner.score_with_objective(sequence, objective, user_index=user_index)

    @property
    def fit_generation(self):
        return getattr(self._inner, "fit_generation", None)


def _retrieval_config(vocab_tiers: "list[int]", num_contexts: int) -> dict:
    """Knobs of the ``two_stage_retrieval`` section, shared across profiles.

    The section builds its own per-tier corpora (streaming store) and its
    own small IRN per tier — exact full-vocabulary planning at ``V = 10**5``
    allocates ``O(rows * window * V)`` logits, so the beam is kept narrow
    and the model window short to bound the exact baseline's memory.
    """
    return dict(
        vocab_tiers=list(vocab_tiers),
        num_candidates=64,
        overlap_k=10,
        num_contexts=num_contexts,
        num_users=64,
        min_events=12,
        max_events=24,
        beam_width=2,
        branch_factor=2,
        plan_max_length=4,
        irn=dict(
            embedding_dim=16,
            user_dim=4,
            num_heads=2,
            num_layers=1,
            epochs=1,
            batch_size=8,
            max_sequence_length=16,
            seed=0,
        ),
    )


def _scale_tiers() -> "list[int]":
    """Vocab tiers of the ``scale`` profile (``10**5`` default ceiling).

    ``REPRO_BENCH_SCALE_TIERS`` overrides with a comma-separated item-count
    list — the opt-in for the ``10**6`` tier, whose exact full-vocabulary
    baseline needs several GB of transient logit memory.
    """
    override = os.environ.get("REPRO_BENCH_SCALE_TIERS", "").strip()
    if override:
        try:
            tiers = [int(part) for part in override.split(",") if part.strip()]
        except ValueError:
            raise ConfigurationError(
                f"REPRO_BENCH_SCALE_TIERS must be a comma-separated list of "
                f"item counts, got '{override}'"
            ) from None
        if not tiers or min(tiers) < 100:
            raise ConfigurationError(
                f"REPRO_BENCH_SCALE_TIERS must list item counts >= 100, got '{override}'"
            )
        return tiers
    return [10_000, 100_000]


def smoke_config() -> dict:
    """Seconds-scale profile used by the ``pytest -m perf`` smoke test."""
    return {
        "profile": "smoke",
        "retrieval": _retrieval_config([500, 2000], num_contexts=4),
        "synthetic": dict(
            name="perf-smoke",
            num_users=40,
            num_items=60,
            num_genres=6,
            min_sequence_length=14,
            max_sequence_length=28,
            seed=0,
        ),
        "irn": dict(
            embedding_dim=16,
            user_dim=4,
            num_heads=2,
            num_layers=1,
            epochs=1,
            batch_size=32,
            max_sequence_length=20,
            seed=0,
        ),
        "beam_width": 4,
        "branch_factor": 4,
        "max_path_length": 8,
        "num_instances": 8,
        "num_eval_instances": 24,
        "num_stepwise_instances": 4,
        "serve_arrival_rate": 300.0,
        "serve_requests_per_context": 3,
        "num_replicas": 2,
        "replica_arrival_rate": 80.0,
        "replica_refit_at": 0.25,
        "tensor_ops_repeats": 30,
        "tensor_ops_decode_steps": 8,
        "wall_repeats": 2,
        "distributed_worker_counts": [1, 2, 4],
        "distributed_burst_requests": 48,
        "distributed_codec_repeats": 60,
        "distributed_heartbeat_interval": 0.05,
    }


def default_config() -> dict:
    """The standard profile behind ``BENCH_path_planning.json``."""
    return {
        "profile": "default",
        "retrieval": _retrieval_config([1_000, 10_000, 100_000], num_contexts=4),
        "synthetic": dict(
            name="perf-synthetic",
            num_users=120,
            num_items=240,
            num_genres=8,
            seed=0,
        ),
        "irn": dict(
            embedding_dim=32,
            user_dim=8,
            num_heads=2,
            num_layers=2,
            epochs=2,
            batch_size=64,
            max_sequence_length=50,
            seed=0,
        ),
        "beam_width": 4,
        "branch_factor": 4,
        "max_path_length": 12,
        "num_instances": 24,
        "num_eval_instances": 60,
        "num_stepwise_instances": 8,
        "serve_arrival_rate": 300.0,
        "serve_requests_per_context": 4,
        "num_replicas": 2,
        "replica_arrival_rate": 100.0,
        "replica_refit_at": 0.25,
        "tensor_ops_repeats": 200,
        "tensor_ops_decode_steps": 12,
        "wall_repeats": 3,
        "distributed_worker_counts": [1, 2, 4],
        "distributed_burst_requests": 96,
        "distributed_codec_repeats": 300,
        "distributed_heartbeat_interval": 0.05,
    }


def scale_config() -> dict:
    """The ``scale`` profile: smoke-sized shared sections, scale-tier retrieval.

    Everything except ``two_stage_retrieval`` runs at smoke size (the other
    sections' scaling story lives in the default profile); the retrieval
    section sweeps ``10**4`` / ``10**5`` items by default and ``10**6`` when
    ``REPRO_BENCH_SCALE_TIERS`` opts in.
    """
    config = smoke_config()
    config["profile"] = "scale"
    config["retrieval"] = _retrieval_config(_scale_tiers(), num_contexts=4)
    return config


#: Profile registry for ``repro-irs bench --profile`` / ``run_benchmarks``.
BENCH_PROFILES = ("smoke", "default", "scale")


def resolve_profile(profile: "str | None") -> str:
    """Validate a bench profile name eagerly (before any expensive setup)."""
    name = str(profile or "default").strip().lower()
    if name not in BENCH_PROFILES:
        raise ConfigurationError(
            f"unknown bench profile '{profile}'; known profiles: "
            f"{', '.join(BENCH_PROFILES)}"
        )
    return name


def bench_config(profile: "str | None") -> dict:
    """Resolve ``profile`` to its config dict (:class:`ConfigurationError` on typos)."""
    builders = {
        "smoke": smoke_config,
        "default": default_config,
        "scale": scale_config,
    }
    return builders[resolve_profile(profile)]()


def build_bench_split(config: dict) -> DatasetSplit:
    """Generate the synthetic corpus and split for a benchmark profile."""
    dataset = generate_synthetic_dataset(SyntheticConfig(**config["synthetic"]))
    corpus = build_corpus(dataset, min_interactions=3)
    return split_corpus(corpus, l_min=6, l_max=14, validation_fraction=0.1, seed=0)


def _timed(fn) -> tuple[object, float]:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _timed_best(fn, repeats: int) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (first result, min seconds).

    The minimum is the standard noise filter for wall-clock measurement on a
    machine shared with other work (what :mod:`timeit` reports): every run
    does the full workload, so the fastest one is the least-perturbed
    estimate.  The first run's result is returned so callers can check the
    deterministic bits (plans, counters) exactly once.
    """
    result, best = _timed(fn)
    for _ in range(repeats - 1):
        _, seconds = _timed(fn)
        best = min(best, seconds)
    return result, best


def _throughput(paths: int, forwards: int, seconds: float) -> dict:
    return {
        "paths": paths,
        "forwards": forwards,
        "seconds": round(seconds, 4),
        "paths_per_sec": round(paths / seconds, 2) if seconds > 0 else float("inf"),
        "forwards_per_sec": round(forwards / seconds, 2) if seconds > 0 else float("inf"),
    }


def _bench_beam(irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict) -> dict:
    contexts = [
        (list(inst.history), inst.objective, inst.user_index) for inst in instances
    ]
    max_length = config["max_path_length"]

    batched_planner = BeamSearchPlanner(
        irn, beam_width=config["beam_width"], branch_factor=config["branch_factor"]
    ).fit(split)
    scalar_planner = BeamSearchPlanner(
        ScalarOnlyBackbone(irn),
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
    ).fit(split)

    with ForwardCounter(irn.module) as counter:
        scalar_paths, scalar_seconds = _timed(
            lambda: [
                scalar_planner.plan_path(history, objective, user_index=user, max_length=max_length)
                for history, objective, user in contexts
            ]
        )
        scalar_forwards = counter.count

    with ForwardCounter(irn.module) as counter:
        batched_paths, batched_seconds = _timed(
            lambda: batched_planner.plan_paths_batch(
                [c[0] for c in contexts],
                [c[1] for c in contexts],
                [c[2] for c in contexts],
                max_length=max_length,
            )
        )
        batched_forwards = counter.count

    return {
        "beam_width": config["beam_width"],
        "branch_factor": config["branch_factor"],
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "scalar": _throughput(len(scalar_paths), scalar_forwards, scalar_seconds),
        "batched": _throughput(len(batched_paths), batched_forwards, batched_seconds),
        "forward_reduction": round(scalar_forwards / max(batched_forwards, 1), 2),
        "speedup": round(scalar_seconds / batched_seconds, 2) if batched_seconds > 0 else float("inf"),
        "plans_equal": scalar_paths == batched_paths,
    }


def _bench_greedy(irn: IRN, instances: list[EvaluationInstance], config: dict) -> dict:
    contexts = [
        (list(inst.history), inst.objective, inst.user_index) for inst in instances
    ]
    max_length = config["max_path_length"]

    with ForwardCounter(irn.module) as counter:
        scalar_paths, scalar_seconds = _timed(
            lambda: [
                irn.generate_path(history, objective, user_index=user, max_length=max_length)
                for history, objective, user in contexts
            ]
        )
        scalar_forwards = counter.count

    with ForwardCounter(irn.module) as counter:
        batched_paths, batched_seconds = _timed(
            lambda: irn.generate_paths_batch(
                [c[0] for c in contexts],
                [c[1] for c in contexts],
                [c[2] for c in contexts],
                max_length=max_length,
            )
        )
        batched_forwards = counter.count

    return {
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "scalar": _throughput(len(scalar_paths), scalar_forwards, scalar_seconds),
        "batched": _throughput(len(batched_paths), batched_forwards, batched_seconds),
        "forward_reduction": round(scalar_forwards / max(batched_forwards, 1), 2),
        "speedup": round(scalar_seconds / batched_seconds, 2) if batched_seconds > 0 else float("inf"),
        "plans_equal": scalar_paths == batched_paths,
    }


def _bench_nextitem(irn: IRN, split: DatasetSplit, config: dict) -> dict:
    instances = split.test[: config["num_eval_instances"]]
    histories = [list(inst.history) for inst in instances]
    targets = [inst.target for inst in instances]
    users = [inst.user_index for inst in instances]

    with ForwardCounter(irn.module) as counter:
        scalar_ranks, scalar_seconds = _timed(
            lambda: [
                irn.rank_of(history, target, user_index=user)
                for history, target, user in zip(histories, targets, users)
            ]
        )
        scalar_forwards = counter.count

    with ForwardCounter(irn.module) as counter:
        batched_ranks, batched_seconds = _timed(
            lambda: irn.rank_of_batch(histories, targets, users)
        )
        batched_forwards = counter.count

    return {
        "num_instances": len(instances),
        "scalar": _throughput(len(scalar_ranks), scalar_forwards, scalar_seconds),
        "batched": _throughput(len(batched_ranks), batched_forwards, batched_seconds),
        "forward_reduction": round(scalar_forwards / max(batched_forwards, 1), 2),
        "ranks_equal": list(scalar_ranks) == list(batched_ranks),
    }


def _token_work(irn: IRN, fn) -> tuple[object, dict, float]:
    """Run ``fn`` and return (result, decode-stats delta, seconds)."""
    before = irn.decode_stats.snapshot()
    result, seconds = _timed(fn)
    delta = DecodeStats.delta(before, irn.decode_stats.snapshot())
    return result, delta, seconds


def _work_report(delta: dict, seconds: float) -> dict:
    return {
        "forwards": delta["forwards"],
        "tokens_encoded": delta["tokens_encoded"],
        "tokens_full": delta["tokens_full"],
        "tokens_incremental": delta["tokens_incremental"],
        "tokens_fallback": delta["tokens_fallback"],
        "seconds": round(seconds, 4),
        "forwards_per_sec": round(delta["forwards"] / seconds, 2) if seconds > 0 else float("inf"),
    }


def _bench_stepwise(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict
) -> dict:
    """``next_step``-driven IRS evaluation: cached serving vs the PR 1 baseline.

    The workload interleaves single ``next_step`` requests across all
    instances in lockstep (online serving order).  The baseline planner is
    configured exactly like the pre-cache implementation — one replan slot,
    no plan memoisation, no decoding sessions — so every context switch
    forces a full from-scratch replan.  The cached planner keeps one evolving
    plan per context (plus the finished-plan LRU), so each context is planned
    once and then served from memory.  The semantic reference is *isolated*
    serving: a dedicated planner per context, which the cached planner must
    reproduce exactly.
    """
    contexts = [
        (list(inst.history), inst.objective, inst.user_index)
        for inst in instances[: config["num_stepwise_instances"]]
    ]
    max_length = config["max_path_length"]
    kwargs = dict(beam_width=config["beam_width"], branch_factor=config["branch_factor"])

    isolated = []
    for context in contexts:
        planner = BeamSearchPlanner(irn, max_length=max_length, **kwargs).fit(split)
        isolated.append(rollout_next_step(planner, [context], max_length)[0])

    baseline_planner = BeamSearchPlanner(
        irn,
        max_length=max_length,
        plan_cache_size=0,
        step_cache_size=1,
        use_decoding_sessions=False,
        **kwargs,
    ).fit(split)
    cached_planner = BeamSearchPlanner(irn, max_length=max_length, **kwargs).fit(split)

    baseline_paths, baseline_delta, baseline_seconds = _token_work(
        irn, lambda: rollout_next_step(baseline_planner, contexts, max_length)
    )
    cached_paths, cached_delta, cached_seconds = _token_work(
        irn, lambda: rollout_next_step(cached_planner, contexts, max_length)
    )

    return {
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "baseline": _work_report(baseline_delta, baseline_seconds),
        "cached": _work_report(cached_delta, cached_seconds),
        "cache_counters": cached_planner.cache_info(),
        "token_work_reduction": round(
            baseline_delta["tokens_encoded"] / max(cached_delta["tokens_encoded"], 1), 2
        ),
        "speedup": round(baseline_seconds / cached_seconds, 2) if cached_seconds > 0 else float("inf"),
        "cached_paths_match_isolated": cached_paths == isolated,
        "baseline_paths_match_isolated": baseline_paths == isolated,
    }


def _bench_incremental(
    split: DatasetSplit, instances: list[EvaluationInstance], config: dict
) -> dict:
    """Beam planning with decoding sessions on vs off (exact-reuse regime).

    Uses a single-layer IRN, where prefix K/V reuse is exact under the PIM
    (see :mod:`repro.cache.kv`), so every depth encodes one new token per
    hypothesis instead of the full right-aligned window.  Plan memoisation is
    disabled on both planners — this isolates the incremental-decoding layer.
    The model window is sized to fit history + path: once a context outgrows
    the window the right-aligned batch starts sliding and the session
    (correctly) degrades to full re-encoding, which is the regime the other
    sections already cover.
    """
    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    max_length = config["max_path_length"]
    window = max(len(context[0]) for context in contexts) + max_length + 1
    irn = IRN(**dict(config["irn"], num_layers=1, max_sequence_length=window)).fit(split)
    kwargs = dict(beam_width=config["beam_width"], branch_factor=config["branch_factor"])

    planner_off = BeamSearchPlanner(
        irn, plan_cache_size=0, use_decoding_sessions=False, **kwargs
    ).fit(split)
    planner_on = BeamSearchPlanner(irn, plan_cache_size=0, **kwargs).fit(split)

    def plan(planner: BeamSearchPlanner):
        return planner.plan_paths_batch(
            [c[0] for c in contexts],
            [c[1] for c in contexts],
            [c[2] for c in contexts],
            max_length=max_length,
        )

    repeats = config.get("wall_repeats", 1)

    def measure(planner: BeamSearchPlanner):
        # Token counters cover exactly the first run (they are deterministic
        # per run); wall-clock is min-of-repeats to filter scheduler noise.
        paths, delta, seconds = _token_work(irn, lambda: plan(planner))
        for _ in range(repeats - 1):
            _, again = _timed(lambda: plan(planner))
            seconds = min(seconds, again)
        return paths, delta, seconds

    off_paths, off_delta, off_seconds = measure(planner_off)
    on_paths, on_delta, on_seconds = measure(planner_on)

    return {
        "num_layers": 1,
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "wall_repeats": repeats,
        "full_reencode": _work_report(off_delta, off_seconds),
        "incremental": _work_report(on_delta, on_seconds),
        "token_work_reduction": round(
            off_delta["tokens_encoded"] / max(on_delta["tokens_encoded"], 1), 2
        ),
        "speedup": round(off_seconds / on_seconds, 2) if on_seconds > 0 else float("inf"),
        "plans_equal": off_paths == on_paths,
    }


def _bench_sharded(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict,
    shard_backend: "str | None" = None, vocab_shards: "int | None" = None,
) -> dict:
    """Worker-partitioned batched beam planning at 1 / 2 / 4 workers.

    The workload is the ``generate_records`` evaluation fan-out: one
    ``plan_paths_batch`` over all bench instances, with plan memoisation
    disabled so every run measures planning work, not cache reuse.  The
    serial planner (``num_workers=1``) is the reference; each worker count
    reports paths/sec, speedup over serial and scaling efficiency
    (speedup / workers), plus a plans-equality bit — the sharded results
    must be bit-identical, whatever the backend.  A fork-process run at 2
    workers double-checks cross-process parity when the platform has fork.

    Wall-clock scaling is machine-bound: with ``cpu_count`` cores, anything
    beyond ``cpu_count`` workers can only add partitioning overhead, which
    is why the section records the CPU count alongside the numbers.
    """
    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    max_length = config["max_path_length"]
    vocab_shards = resolve_vocab_shards(vocab_shards)
    kwargs = dict(
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
        plan_cache_size=0,
        vocab_shards=vocab_shards,
    )
    args = ([c[0] for c in contexts], [c[1] for c in contexts], [c[2] for c in contexts])

    def run(planner: BeamSearchPlanner) -> tuple[list[list[int]], float]:
        return _timed(lambda: planner.plan_paths_batch(*args, max_length=max_length))

    backend = resolve_shard_backend(shard_backend, num_workers=4)

    # The 1-worker planner short-circuits the executor and IS the serial
    # reference — measuring it once serves as both the baseline and the
    # first sweep row (no duplicated planning pass).
    workers_report = []
    serial_paths: list[list[int]] = []
    serial_seconds = 0.0
    for num_workers in (1, 2, 4):
        planner = BeamSearchPlanner(
            irn, num_workers=num_workers, shard_backend=backend, **kwargs
        ).fit(split)
        paths, seconds = run(planner)
        if num_workers == 1:
            serial_paths, serial_seconds = paths, seconds
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        workers_report.append(
            {
                "num_workers": num_workers,
                "seconds": round(seconds, 4),
                "paths_per_sec": round(len(paths) / seconds, 2) if seconds > 0 else float("inf"),
                "speedup_vs_serial": round(speedup, 2),
                "scaling_efficiency": round(speedup / num_workers, 2),
                "plans_equal_serial": paths == serial_paths,
            }
        )

    process_parity = None
    if fork_available():
        process_planner = BeamSearchPlanner(
            irn, num_workers=2, shard_backend="process", **kwargs
        ).fit(split)
        process_paths, _ = run(process_planner)
        process_parity = process_paths == serial_paths

    return {
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "backend": backend,
        "vocab_shards": vocab_shards,
        "serial": {
            "seconds": round(serial_seconds, 4),
            "paths_per_sec": round(len(serial_paths) / serial_seconds, 2)
            if serial_seconds > 0
            else float("inf"),
        },
        "workers": workers_report,
        "process_parity": process_parity,
    }


def _bench_async_serving(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict,
    shard_backend: "str | None" = None, vocab_shards: "int | None" = None,
) -> dict:
    """The ``next_step`` workload offered through the asynchronous loop.

    Two runs per worker-shard count (1 / 2 / 4 queues, matching the sharded
    section's sweep):

    * a **lockstep replay** of the stepwise serving trace, checked
      bit-identical against ``rollout_next_step`` on a sequentially driven
      planner — the acceptance contract (async serving changes when work
      happens, never what is answered);
    * a seeded **open-loop Poisson run** at ``serve_arrival_rate``
      requests/sec recording throughput, p50/p95/p99 latency from the
      scheduled arrival instants, queue-depth and micro-batch stats.

    Each worker count gets a fresh planner (cold caches), so the numbers
    measure the serving path, not accumulated memoisation.
    """
    from repro.evaluation.protocol import rollout_next_step as sequential_rollout
    from repro.serve import ServingLoop, replay_lockstep, run_open_loop

    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    max_length = config["max_path_length"]
    kwargs = dict(
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
        vocab_shards=resolve_vocab_shards(vocab_shards),
    )
    backend = resolve_shard_backend(shard_backend, num_workers=4)
    num_requests = config["serve_requests_per_context"] * len(contexts)

    sequential_planner = BeamSearchPlanner(irn, max_length=max_length, **kwargs).fit(split)
    sequential_paths, sequential_seconds = _timed(
        lambda: sequential_rollout(sequential_planner, contexts, max_length)
    )

    workers_report = []
    for num_workers in (1, 2, 4):
        def make_planner():
            return BeamSearchPlanner(
                irn,
                max_length=max_length,
                num_workers=num_workers,
                shard_backend=backend,
                **kwargs,
            ).fit(split)

        # Parity replay and open-loop measurement each get a fresh planner
        # AND a fresh loop: the replay's queue/admission counters must not
        # leak into the open-loop report, and a cold-cache open loop serves
        # the representative replan-then-hit mix instead of pure hits.
        # The replay is repeated on a fresh cold-cache loop each time
        # (memoisation would turn a same-loop rerun into pure cache hits);
        # wall-clock is the min, parity must hold on every repeat.
        replay_seconds = math.inf
        parity = True
        for _ in range(config.get("wall_repeats", 1)):
            with ServingLoop(make_planner()) as loop:
                served_paths, run_seconds = _timed(
                    lambda: replay_lockstep(loop, contexts, max_length)
                )
                replay_served = loop.stats()["served"]
            replay_seconds = min(replay_seconds, run_seconds)
            parity = parity and served_paths == sequential_paths
        with ServingLoop(make_planner()) as open_loop_loop:
            open_loop = run_open_loop(
                open_loop_loop,
                contexts,
                arrival_rate=config["serve_arrival_rate"],
                num_requests=num_requests,
                seed=0,
                max_length=max_length,
            )
        workers_report.append(
            {
                "num_workers": num_workers,
                "responses_match_sequential": parity,
                "replay_seconds": round(replay_seconds, 4),
                "replay_requests_per_sec": (
                    round(replay_served / replay_seconds, 2)
                    if replay_seconds > 0
                    else float("inf")
                ),
                "open_loop": open_loop,
            }
        )

    return {
        "max_path_length": max_length,
        "num_contexts": len(contexts),
        "backend": backend,
        "vocab_shards": kwargs["vocab_shards"],
        "arrival_rate": config["serve_arrival_rate"],
        "open_loop_requests": num_requests,
        "sequential": {
            "seconds": round(sequential_seconds, 4),
            "requests_per_sec": (
                round(sum(len(path) for path in sequential_paths) / sequential_seconds, 2)
                if sequential_seconds > 0
                else float("inf")
            ),
        },
        "workers": workers_report,
    }


def _bench_replicated_serving(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict,
    shard_backend: "str | None" = None, vocab_shards: "int | None" = None,
) -> dict:
    """Replicated serving at a shared generation, then under a hot refit.

    Two experiments:

    * **Parity** — the lockstep stepwise trace replayed through a
      2-replica :class:`~repro.replica.set.ReplicaSet` whose replicas wrap
      the same fitted backbone (one shared generation), checked
      bit-identical against sequential single-planner serving.  This is the
      replication rung's acceptance contract: the dispatcher's session
      affinity keeps every context's request sequence on one replica, so
      routing changes *where* work happens, never what is answered.
    * **Hot refit** — open-loop Poisson traffic with a refit armed
      mid-trace: the coordinator trains a fresh replica set off-path
      (independently fitted backbones — the factory is deterministic, so
      the new generation's weights equal the old ones and the experiment
      isolates the *protocol*), flips the generation atomically, and
      retires the old replicas by draining them dry.  The no-pause bits —
      zero errored requests, zero rejections under the ``block`` policy —
      are asserted by the perf gate; latency percentiles are reported per
      generation around the flip.

    The traffic window is sized from the measured replica build time so the
    refit has room to land mid-trace on fast and slow machines alike (the
    ``completed_during_trace`` bit records whether it did); the parity bit
    is deterministic either way.
    """
    from repro.evaluation.protocol import rollout_next_step as sequential_rollout
    from repro.replica import ReplicaSet, run_replicated_open_loop
    from repro.serve import replay_lockstep

    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    max_length = config["max_path_length"]
    num_replicas = config["num_replicas"]
    kwargs = dict(
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
        vocab_shards=resolve_vocab_shards(vocab_shards),
    )
    backend = resolve_shard_backend(shard_backend, num_workers=1)

    sequential_planner = BeamSearchPlanner(irn, max_length=max_length, **kwargs).fit(split)
    sequential_paths = sequential_rollout(sequential_planner, contexts, max_length)

    def shared_factory():
        return BeamSearchPlanner(
            irn, max_length=max_length, shard_backend=backend, **kwargs
        ).fit(split)

    with ReplicaSet(shared_factory, num_replicas=num_replicas) as replica_set:
        served_paths, replay_seconds = _timed(
            lambda: replay_lockstep(replica_set, contexts, max_length)
        )
        parity_stats = replica_set.stats()

    def fresh_factory():
        backbone = IRN(**config["irn"]).fit(split)
        return BeamSearchPlanner(
            backbone, max_length=max_length, shard_backend=backend, **kwargs
        ).fit(split)

    build_started = time.perf_counter()
    refit_set = ReplicaSet(fresh_factory, num_replicas=num_replicas).start()
    build_seconds = time.perf_counter() - build_started
    refit_at = config["replica_refit_at"]
    # The refit retrains num_replicas backbones off-path; give the trace
    # room for the flip plus post-flip traffic (machine-bound, recorded).
    duration = max(1.5, refit_at + 3.0 * build_seconds + 0.75)
    try:
        open_loop = run_replicated_open_loop(
            refit_set,
            contexts,
            arrival_rate=config["replica_arrival_rate"],
            duration=duration,
            seed=0,
            max_length=max_length,
            refit_at=refit_at,
        )
    finally:
        refit_set.close()

    return {
        "max_path_length": max_length,
        "num_contexts": len(contexts),
        "num_replicas": num_replicas,
        "backend": backend,
        "vocab_shards": kwargs["vocab_shards"],
        "parity": {
            "responses_match_single_replica": served_paths == sequential_paths,
            "replay_seconds": round(replay_seconds, 4),
            "served": parity_stats["served"],
            "dispatch": parity_stats["dispatch"],
        },
        "hot_refit": open_loop,
        "replica_build_seconds": round(build_seconds, 4),
    }


def _bench_distributed_serving(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict,
    shard_backend: "str | None" = None, vocab_shards: "int | None" = None,
) -> dict:
    """Multi-process serving over the binary transport vs in-process fleets.

    Four experiments:

    * **Codec** — ns/request to encode and decode request/response batches
      and the heartbeat frame, pure in-memory (no sockets): the fixed tax
      the wire protocol adds to every envelope.
    * **Workers** — at each worker count, the lockstep stepwise trace
      replayed through a :class:`~repro.distributed.RemoteReplicaSet`
      (checked bit-identical against sequential serving — the acceptance
      contract of the distributed rung), then a burst of distinct
      ``plan_paths`` requests timed end to end, against an in-process
      :class:`~repro.replica.set.ReplicaSet` burst at the same count.
      Sojourn percentiles are parent-clock (enqueue-to-resolve), so the
      remote numbers include codec + socket + re-plan inside the worker.
    * **Heartbeat** — observed beat rate and frame bytes on an idle fleet:
      the standing overhead of the failure detector's load signals.
    * **Chaos** — SIGKILL one of two workers mid-burst: every admitted
      future must still resolve bit-identically (re-dispatch to the
      survivor), and the victim must flip unhealthy within the
      missed-heartbeat budget.  The gate enforces these bits.

    The burst histories are rotated per request so each envelope is a
    distinct plan (``history[r:] + history[:r]``); short histories can
    repeat a rotation, which hits the plan cache identically for the
    remote and in-process fleets and so cancels out of the comparison.
    On platforms without ``fork`` the section records the codec numbers
    only and stamps ``fork_available: false`` (the gate skips it).
    """
    import signal

    from repro.distributed import RemoteReplicaSet, wire
    from repro.distributed.config import resolve_heartbeat_misses
    from repro.replica import ReplicaSet
    from repro.serve import latency_percentiles, replay_lockstep
    from repro.serve.request import ServeRequest

    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    max_length = config["max_path_length"]
    worker_counts = list(config["distributed_worker_counts"])
    heartbeat_interval = config["distributed_heartbeat_interval"]
    codec_repeats = config["distributed_codec_repeats"]
    kwargs = dict(
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
        vocab_shards=resolve_vocab_shards(vocab_shards),
    )
    backend = resolve_shard_backend(shard_backend, num_workers=1)

    # ---- codec: ns per envelope, no processes involved ---- #
    codec_batch = 64
    entries = []
    for i in range(codec_batch):
        history, objective, user = contexts[i % len(contexts)]
        entries.append(
            (i, ServeRequest.create("plan_paths", history, objective, user_index=user))
        )
    request_payload = wire.encode_request_batch(entries)
    records = [
        wire.ResponseRecord(
            i,
            True,
            answer=list(range(max_length)),
            served_generation=1,
            batch_tag=i,
            queue_wait_s=0.0005,
            service_s=0.002,
        )
        for i in range(codec_batch)
    ]
    response_payload = wire.encode_response_batch(records)
    heartbeat_payload = wire.encode_heartbeat(0, 1, 1, True, 2, 100, 98, 1, 64, 1.5, 8.25)
    codec = {
        "batch_size": codec_batch,
        "request_encode_ns": round(
            _ns_per_call(lambda: wire.encode_request_batch(entries), codec_repeats)
            / codec_batch, 1,
        ),
        "request_decode_ns": round(
            _ns_per_call(lambda: wire.decode_request_batch(request_payload), codec_repeats)
            / codec_batch, 1,
        ),
        "response_encode_ns": round(
            _ns_per_call(lambda: wire.encode_response_batch(records), codec_repeats)
            / codec_batch, 1,
        ),
        "response_decode_ns": round(
            _ns_per_call(lambda: wire.decode_response_batch(response_payload), codec_repeats)
            / codec_batch, 1,
        ),
        "heartbeat_roundtrip_ns": round(
            _ns_per_call(
                lambda: wire.decode_heartbeat(
                    wire.encode_heartbeat(0, 1, 1, True, 2, 100, 98, 1, 64, 1.5, 8.25)
                ),
                codec_repeats,
            ), 1,
        ),
        "request_bytes_per_envelope": len(request_payload) // codec_batch,
        "response_bytes_per_envelope": len(response_payload) // codec_batch,
        "heartbeat_frame_bytes": wire.FRAME_HEADER.size + len(heartbeat_payload),
    }

    section = {
        "max_path_length": max_length,
        "num_contexts": len(contexts),
        "backend": backend,
        "vocab_shards": kwargs["vocab_shards"],
        "transport": "process",
        "fork_available": fork_available(),
        "heartbeat_interval": heartbeat_interval,
        "codec": codec,
    }
    if not section["fork_available"]:  # pragma: no cover - POSIX CI always forks
        return section

    def shared_factory():
        return BeamSearchPlanner(
            irn, max_length=max_length, shard_backend=backend, **kwargs
        ).fit(split)

    reference = shared_factory()
    sequential_paths = rollout_next_step(reference, contexts, max_length)

    # Distinct plans per burst envelope: rotate each context's history so
    # the plan-cache key changes request to request.
    burst = int(config["distributed_burst_requests"])
    burst_contexts = []
    for j in range(burst):
        history, objective, user = contexts[j % len(contexts)]
        rotation = (j // len(contexts)) % len(history)
        burst_contexts.append((history[rotation:] + history[:rotation], objective, user))
    expected_burst = [
        reference.plan_path(history, objective, user_index=user)
        for history, objective, user in burst_contexts
    ]

    def run_burst(serving_set) -> "tuple[dict, list]":
        requests = [
            ServeRequest.create("plan_paths", history, objective, user_index=user)
            for history, objective, user in burst_contexts
        ]
        start = time.perf_counter()
        for request in requests:
            serving_set.enqueue(request)
        answers = [request.future.result(timeout=300) for request in requests]
        wall = time.perf_counter() - start
        sojourn_ms = [
            1000.0 * (request.completed_at - request.enqueued_at) for request in requests
        ]
        return {
            "requests": len(requests),
            "seconds": round(wall, 4),
            "paths_per_sec": round(len(requests) / wall, 2) if wall > 0 else float("inf"),
            "sojourn_ms": latency_percentiles(sojourn_ms),
        }, answers

    workers_report = []
    for num_workers in worker_counts:
        with RemoteReplicaSet(
            shared_factory,
            num_replicas=num_workers,
            heartbeat_interval=heartbeat_interval,
        ) as remote_set:
            served_paths, replay_seconds = _timed(
                lambda: replay_lockstep(remote_set, contexts, max_length)
            )
            remote_burst, remote_answers = run_burst(remote_set)
        with ReplicaSet(shared_factory, num_replicas=num_workers) as local_set:
            local_burst, _local_answers = run_burst(local_set)
        workers_report.append(
            {
                "num_workers": num_workers,
                "responses_match_sequential": served_paths == sequential_paths,
                "burst_answers_match": remote_answers == expected_burst,
                "replay_seconds": round(replay_seconds, 4),
                "remote": remote_burst,
                "in_process": local_burst,
                "remote_vs_in_process": (
                    round(remote_burst["paths_per_sec"] / local_burst["paths_per_sec"], 3)
                    if local_burst["paths_per_sec"] > 0
                    else float("inf")
                ),
            }
        )

    # ---- heartbeat overhead + SIGKILL chaos on one 2-worker fleet ---- #
    heartbeat_misses = resolve_heartbeat_misses(None)
    with RemoteReplicaSet(
        shared_factory, num_replicas=2, heartbeat_interval=heartbeat_interval
    ) as chaos_set:
        beats_before = chaos_set.stats()["transport"]["heartbeats"]
        observe_started = time.perf_counter()
        time.sleep(10 * heartbeat_interval)
        observe_seconds = time.perf_counter() - observe_started
        beats = chaos_set.stats()["transport"]["heartbeats"] - beats_before
        heartbeat = {
            "interval_s": heartbeat_interval,
            "expected_per_worker_per_sec": round(1.0 / heartbeat_interval, 2),
            "observed_per_worker_per_sec": round(beats / 2 / observe_seconds, 2),
            "frame_bytes": codec["heartbeat_frame_bytes"],
            "bytes_per_sec": round(beats * codec["heartbeat_frame_bytes"] / observe_seconds, 1),
        }

        requests = [
            ServeRequest.create("plan_paths", history, objective, user_index=user)
            for history, objective, user in burst_contexts
        ]
        for request in requests:
            chaos_set.enqueue(request)
        victim = chaos_set.active_replicas()[0]
        os.kill(victim.worker.pid, signal.SIGKILL)
        killed_at = time.perf_counter()
        while victim.healthy and time.perf_counter() - killed_at < 30.0:
            time.sleep(0.001)
        detect_seconds = time.perf_counter() - killed_at
        answers = [request.future.result(timeout=300) for request in requests]
        chaos_stats = chaos_set.stats()["transport"]
    # Budget: K missed beats plus one interval of detector granularity.
    budget_seconds = heartbeat_misses * heartbeat_interval + heartbeat_interval
    chaos = {
        "num_workers": 2,
        "requests": len(requests),
        "zero_dropped": len(answers) == len(requests)
        and all(request.future.done() for request in requests),
        "answers_match": answers == expected_burst,
        "redispatched": chaos_stats["redispatched"],
        "duplicate_responses": chaos_stats["duplicate_responses"],
        "detect_seconds": round(detect_seconds, 4),
        "budget_seconds": round(budget_seconds, 4),
        "unhealthy_within_budget": detect_seconds <= budget_seconds,
    }

    section.update(
        {
            "burst_requests": burst,
            "workers": workers_report,
            "heartbeat": heartbeat,
            "chaos": chaos,
        }
    )
    return section


def _ns_per_call(fn, repeats: int) -> float:
    """Average wall-clock nanoseconds per call over ``repeats`` timed calls."""
    fn()  # warm caches / BLAS thread pools outside the timed window
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats * 1e9


def _bench_tensor_ops(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict
) -> dict:
    """Per-op microbenchmarks of the tensor engine at serving shapes.

    Shapes mirror what the decode loop actually offers the kernels: the
    micro-batch rows are ``num_instances * beam_width`` hypotheses, each
    decode step queries 1-2 positions (new token + re-projected objective)
    against a key window of history + path + objective, split across the
    configured head count.  Alongside the wall-clock ns/call numbers (which
    are machine-bound and document the matmul-vs-einsum specialization
    choice), the section records four deterministic contract bits the perf
    gate enforces: fused↔unfused attention parity, the arena cache's
    ``no_prefix_copy`` allocation proof, the float32 mode's documented logit
    tolerance, and the in-place-ops grad guard.
    """
    from repro.cache.kv import LayerKVCache, allocation_stats, reset_allocation_stats
    from repro.nn import functional as F
    from repro.nn.attention import NEG_INF, scaled_dot_product_attention
    from repro.nn.tensor import Tensor, no_grad
    from repro.utils.exceptions import ConfigurationError as _ConfigError

    irn_cfg = config["irn"]
    heads = irn_cfg["num_heads"]
    d_head = irn_cfg["embedding_dim"] // heads
    batch = config["num_instances"] * config["beam_width"]
    q_len = 2  # new token + re-projected objective per objective-mode step
    k_len = max(len(inst.history) for inst in instances) + config["max_path_length"] + 1
    repeats = config["tensor_ops_repeats"]
    steps = config["tensor_ops_decode_steps"]

    rng = np.random.default_rng(0)
    q = rng.normal(size=(batch, heads, q_len, d_head))
    k = rng.normal(size=(batch, heads, k_len, d_head))
    v = rng.normal(size=(batch, heads, k_len, d_head))
    mask = np.zeros((1, 1, q_len, k_len))
    mask[..., 0, -1] = NEG_INF  # objective-column masking, as in real decode rows
    scores_buf = np.empty((batch, heads, q_len, k_len))
    softmax_buf = rng.normal(size=(batch, heads, q_len, k_len))
    residual_a = rng.normal(size=(batch, q_len, heads * d_head))
    residual_b = rng.normal(size=(batch, q_len, heads * d_head))

    with no_grad():
        ops_ns = {
            "score_matmul": _ns_per_call(
                lambda: F._contract_scores(q, k, "matmul", out=scores_buf), repeats
            ),
            "score_einsum": _ns_per_call(
                lambda: F._contract_scores(q, k, "einsum", out=scores_buf), repeats
            ),
            "softmax_inplace": _ns_per_call(lambda: F.softmax_(softmax_buf), repeats),
            "softmax_graph": _ns_per_call(
                lambda: F.softmax(Tensor(softmax_buf), axis=-1), repeats
            ),
            "add_inplace": _ns_per_call(
                lambda: Tensor(residual_a).add_(residual_b), repeats
            ),
            "add_graph": _ns_per_call(
                lambda: Tensor(residual_a) + Tensor(residual_b), repeats
            ),
        }

        fused_ns = _ns_per_call(
            lambda: F.fused_attention(q, k, v, mask=mask), repeats
        )
        q_t, k_t, v_t = Tensor(q), Tensor(k), Tensor(v)
        unfused_ns = _ns_per_call(
            lambda: scaled_dot_product_attention(q_t, k_t, v_t, mask=mask, fused=False),
            repeats,
        )
        fused_out, fused_weights = F.fused_attention(q, k, v, mask=mask)
        unfused_out, unfused_weights = scaled_dot_product_attention(
            q_t, k_t, v_t, mask=mask, fused=False
        )
        parity_diff = max(
            float(np.max(np.abs(fused_out - unfused_out.data))),
            float(np.max(np.abs(fused_weights - unfused_weights.data))),
        )
        f32_out, _ = F.fused_attention(q, k, v, mask=mask, dtype=np.float32)
        f32_diff = float(np.max(np.abs(f32_out.astype(np.float64) - fused_out)))
        fused_f32_ns = _ns_per_call(
            lambda: F.fused_attention(q, k, v, mask=mask, dtype=np.float32), repeats
        )

    # The in-place ops must refuse to run where they would corrupt a graph.
    try:
        Tensor(residual_a).add_(residual_b)
        inplace_guard_raises = False
    except _ConfigError:
        inplace_guard_raises = True

    def decode_allocation(growth: str) -> dict:
        """Simulated objective-mode decode loop over one layer cache."""
        prefix = rng.normal(size=(batch, heads, k_len - steps - 1, d_head))
        step_cols = rng.normal(size=(batch, heads, 2, d_head))
        cache = LayerKVCache(growth=growth)
        cache.extend(prefix, prefix.copy())
        # Count only the decode steps: the one-off prefix encode costs the
        # same under every policy, the per-step appends are what differ.
        reset_allocation_stats()
        extend_ns = _ns_per_call(
            lambda: cache.extend(step_cols, step_cols, persist=1), steps
        )
        stats = allocation_stats()
        reset_allocation_stats()
        return {
            "growth": growth,
            "steps": steps,
            "prefix_length": int(prefix.shape[2]),
            "extend_ns": round(extend_ns, 1),
            "arena_allocated_bytes": stats["arena_allocated_bytes"],
            "copied_bytes": stats["copied_bytes"],
            "concat_equivalent_bytes": stats["concat_equivalent_bytes"],
            "copied_bytes_per_step": round(stats["copied_bytes"] / max(stats["extend_calls"], 1)),
            "copy_reduction": round(
                stats["concat_equivalent_bytes"] / max(stats["copied_bytes"], 1), 2
            ),
        }

    arena = decode_allocation("geometric")
    exact = decode_allocation("exact")

    return {
        "shapes": {
            "batch": batch,
            "heads": heads,
            "query_len": q_len,
            "key_len": k_len,
            "d_head": d_head,
        },
        "repeats": repeats,
        "ops_ns": {name: round(ns, 1) for name, ns in ops_ns.items()},
        "attention": {
            "fused_ns": round(fused_ns, 1),
            "unfused_ns": round(unfused_ns, 1),
            "fused_speedup": round(unfused_ns / fused_ns, 2) if fused_ns > 0 else float("inf"),
            "max_abs_diff": parity_diff,
            "fused_parity": bool(parity_diff <= 1e-9),
        },
        "float32": {
            "fused_ns": round(fused_f32_ns, 1),
            "speedup_vs_f64": round(fused_ns / fused_f32_ns, 2) if fused_f32_ns > 0 else float("inf"),
            "max_abs_diff": f32_diff,
            "tolerance": 5e-4,
            "within_tolerance": bool(f32_diff <= 5e-4),
        },
        "decode_allocation": {
            "arena": arena,
            "exact_growth": exact,
            # The contract bit: a decode step copies (much) less than the
            # concatenate-per-extend baseline, i.e. never the full prefix.
            "no_prefix_copy": bool(
                arena["copied_bytes"] < arena["concat_equivalent_bytes"]
            ),
        },
        "inplace_guard_raises": inplace_guard_raises,
    }


def _bench_observability(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict,
    shard_backend: "str | None" = None, vocab_shards: "int | None" = None,
) -> dict:
    """The observability overhead contract: tracing must be free when off.

    Four experiments over the open-loop ``next_step`` workload:

    * **Disabled no-op** — the default (untraced) serving loop, with the
      process-wide ``obs.trace`` allocation counters snapshotted around the
      run.  A zero delta proves the disabled path allocates no traces and
      no spans — a *structural* no-op, not merely a fast one.  The
      open-loop p95 of this run is the overhead baseline.
    * **Enabled overhead** — the same workload with a full-sampling tracer
      installed; p95 is min-of-``wall_repeats`` on both sides and the
      contract is ``enabled_p95 <= disabled_p95 + budget`` with
      ``budget = max(5% of disabled p95, 2ms)`` — the floor absorbs timer
      noise on machines where the p95 itself is a couple of milliseconds.
    * **Deterministic trace IDs** — every enabled repeat runs the
      identically-seeded trace against a fresh tracer; the sorted trace-ID
      lists must be identical across repeats (IDs derive from routing keys
      and per-key ordinals, never wall time or object identity).
    * **Parity with tracing on** — the lockstep replay bits from the async
      (2 worker shards) and replicated (N replicas) sections, re-checked
      with tracing enabled: instrumentation must never change what is
      answered.
    """
    from repro.evaluation.protocol import rollout_next_step as sequential_rollout
    from repro.obs import Tracer, get_registry
    from repro.replica import ReplicaSet
    from repro.serve import ServingLoop, replay_lockstep, run_open_loop

    contexts = [(list(inst.history), inst.objective, inst.user_index) for inst in instances]
    max_length = config["max_path_length"]
    kwargs = dict(
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
        vocab_shards=resolve_vocab_shards(vocab_shards),
    )
    backend = resolve_shard_backend(shard_backend, num_workers=2)
    num_requests = config["serve_requests_per_context"] * len(contexts)
    repeats = config.get("wall_repeats", 1)

    def make_planner(num_workers: int = 1):
        return BeamSearchPlanner(
            irn,
            max_length=max_length,
            num_workers=num_workers,
            shard_backend=backend,
            **kwargs,
        ).fit(split)

    def open_loop_p95(tracer: "Tracer | None") -> tuple[float, dict]:
        # Fresh planner AND loop per measurement (cold caches, clean queue
        # counters), mirroring the async section's discipline.
        with ServingLoop(make_planner(), tracer=tracer) as loop:
            report = run_open_loop(
                loop,
                contexts,
                arrival_rate=config["serve_arrival_rate"],
                num_requests=num_requests,
                seed=0,
                max_length=max_length,
            )
        return report["latency_ms"]["p95"], report

    # -- disabled baseline: p95 + the structural no-op proof ------------- #
    registry = get_registry()
    counters_before = registry.snapshot("obs.trace")["counters"]
    disabled_p95 = math.inf
    disabled_report: dict = {}
    for _ in range(repeats):
        p95, report = open_loop_p95(None)
        if p95 < disabled_p95:
            disabled_p95, disabled_report = p95, report
    counters_after = registry.snapshot("obs.trace")["counters"]
    allocation_delta = {
        name.rsplit(".", 1)[-1]: counters_after.get(name, 0) - counters_before.get(name, 0)
        for name in counters_after
    }
    disabled_noop = all(delta == 0 for delta in allocation_delta.values())

    # -- enabled runs: p95, determinism, span inventory ------------------ #
    enabled_p95 = math.inf
    enabled_report: dict = {}
    trace_id_runs: "list[list[str]]" = []
    span_summary: dict = {}
    traces_retained = 0
    for _ in range(repeats):
        tracer = Tracer(enabled=True, sample_rate=1.0)
        p95, report = open_loop_p95(tracer)
        if p95 < enabled_p95:
            enabled_p95, enabled_report = p95, report
        trace_id_runs.append(sorted(tracer.trace_ids()))
        span_summary = tracer.summary()
        traces_retained = len(tracer.trace_ids())
    deterministic_trace_ids = all(ids == trace_id_runs[0] for ids in trace_id_runs[1:])

    budget_ms = max(0.05 * disabled_p95, 2.0)
    overhead_ms = enabled_p95 - disabled_p95

    # -- parity with tracing enabled ------------------------------------- #
    sequential_planner = BeamSearchPlanner(irn, max_length=max_length, **kwargs).fit(split)
    sequential_paths = sequential_rollout(sequential_planner, contexts, max_length)

    with ServingLoop(
        make_planner(num_workers=2), tracer=Tracer(enabled=True, sample_rate=1.0)
    ) as loop:
        async_paths = replay_lockstep(loop, contexts, max_length)

    replica_tracer = Tracer(enabled=True, sample_rate=1.0)
    def shared_factory():
        return BeamSearchPlanner(
            irn, max_length=max_length, shard_backend=backend, **kwargs
        ).fit(split)
    with ReplicaSet(
        shared_factory, num_replicas=config["num_replicas"], tracer=replica_tracer
    ) as replica_set:
        replicated_paths = replay_lockstep(replica_set, contexts, max_length)

    return {
        "max_path_length": max_length,
        "num_contexts": len(contexts),
        "backend": backend,
        "arrival_rate": config["serve_arrival_rate"],
        "open_loop_requests": num_requests,
        "wall_repeats": repeats,
        "disabled": {
            "p95_ms": disabled_p95,
            "throughput_rps": disabled_report.get("throughput_rps"),
            "allocation_delta": allocation_delta,
        },
        "enabled": {
            "p95_ms": enabled_p95,
            "throughput_rps": enabled_report.get("throughput_rps"),
            "sample_rate": 1.0,
            "traces_retained": traces_retained,
            "span_summary": span_summary,
        },
        "overhead": {
            "p95_delta_ms": round(overhead_ms, 3),
            "budget_ms": round(budget_ms, 3),
            "within_budget": bool(enabled_p95 <= disabled_p95 + budget_ms),
        },
        "disabled_noop": bool(disabled_noop),
        "deterministic_trace_ids": bool(deterministic_trace_ids),
        "async_parity_with_tracing": async_paths == sequential_paths,
        "replicated_parity_with_tracing": replicated_paths == sequential_paths,
    }


def _step_latency_p95_ms(planner, contexts, plan_max_length: int) -> float:
    """p95 wall-clock latency of serial ``next_step`` calls over ``contexts``.

    Default caches stay on: the sample mixes the first-call replan with the
    subsequent served-from-plan hits — the serving distribution whose tail
    the retrieval section is trying to move.
    """
    latencies: "list[float]" = []
    for history, objective, user in contexts:
        path: "list[int]" = []
        for _ in range(plan_max_length):
            started = time.perf_counter()
            item = planner.next_step(history, objective, path, user_index=user)
            latencies.append(time.perf_counter() - started)
            if item is None:
                break
            path.append(item)
    return round(float(np.percentile(np.asarray(latencies) * 1e3, 95)), 3)


def _bench_two_stage_retrieval(config: dict) -> dict:
    """Exact vs candidate-pruned planning across vocab-size tiers.

    Per tier: a streaming-store corpus and a small single-layer IRN are
    built from scratch (the tier IS the vocabulary size — nothing is shared
    with the other sections), then one exact planner and one pruned planner
    per generator backend plan the same contexts with plan memoisation off.
    Reported per generator: paths/sec and speedup over the exact baseline,
    p95 ``next_step`` latency, candidate-set sizes, fallback counts,
    overlap@k of the candidate sets against the exact score rows, and mean
    plan regret (exact-plan score minus pruned-plan score under exact
    replay; ``None`` when no finite comparison exists).  Deterministic
    bits: ``full_vocab_parity`` — at the smallest tier, planning through
    the pruning machinery with :class:`~repro.retrieval.FullVocabGenerator`
    must be bit-identical to the exact planner — and
    ``objective_in_candidates`` across every context and backend.
    """
    import tempfile

    from repro.data.streaming import StreamingSyntheticConfig, build_streaming_store
    from repro.retrieval import (
        FullVocabGenerator,
        make_generator,
        overlap_at_k,
        plan_regret,
    )

    r = config["retrieval"]
    repeats = config.get("wall_repeats", 1)
    plan_length = r["plan_max_length"]
    overlap_k = r["overlap_k"]
    planner_kwargs = dict(
        beam_width=r["beam_width"], branch_factor=r["branch_factor"]
    )

    full_vocab_parity = True
    objective_in_candidates = True
    tiers_report: "list[dict]" = []
    for tier_index, num_items in enumerate(r["vocab_tiers"]):
        with tempfile.TemporaryDirectory(prefix="repro-bench-retrieval-") as tmp:
            store = build_streaming_store(
                StreamingSyntheticConfig(
                    num_items=num_items,
                    num_users=r["num_users"],
                    min_events=r["min_events"],
                    max_events=r["max_events"],
                    seed=0,
                ),
                os.path.join(tmp, "store"),
                name=f"retrieval-{num_items}",
            )
            corpus = store.as_corpus()
            split = split_corpus(
                corpus, l_min=6, l_max=12, validation_fraction=0.0, seed=0
            )
            irn = IRN(**r["irn"]).fit(split)
            instances = sample_objectives(
                split,
                min_objective_interactions=1,
                seed=0,
                max_instances=r["num_contexts"],
            )
            contexts = [
                ([int(item) for item in inst.history], inst.objective, inst.user_index)
                for inst in instances
            ]
            args = (
                [c[0] for c in contexts],
                [c[1] for c in contexts],
                [c[2] for c in contexts],
            )

            exact_planner = BeamSearchPlanner(
                irn, plan_cache_size=0, **planner_kwargs
            ).fit(split)
            exact_paths, exact_seconds = _timed_best(
                lambda: exact_planner.plan_paths_batch(*args, max_length=plan_length),
                repeats,
            )
            exact_scores = irn.score_with_objective_batch(*args)
            exact_step_p95 = _step_latency_p95_ms(
                BeamSearchPlanner(irn, max_length=plan_length, **planner_kwargs).fit(split),
                contexts,
                plan_length,
            )

            generators_report: dict = {}
            best_speedup = 0.0
            for spec in ("cooccurrence", "ann"):
                generator = make_generator(spec, num_candidates=r["num_candidates"])
                _, fit_seconds = _timed(lambda: generator.fit(split.corpus))
                candidate_sets = [
                    generator.candidates(history, objective, user)
                    for history, objective, user in contexts
                ]
                objective_in_candidates = objective_in_candidates and all(
                    cands is None or objective in cands
                    for cands, (_, objective, _) in zip(candidate_sets, contexts)
                )
                overlaps = [
                    overlap_at_k(exact_scores[row], cands, overlap_k)
                    for row, cands in enumerate(candidate_sets)
                ]
                sizes = [int(c.size) for c in candidate_sets if c is not None]
                pruned_planner = BeamSearchPlanner(
                    irn,
                    candidate_generator=generator,
                    plan_cache_size=0,
                    **planner_kwargs,
                ).fit(split)
                pruned_paths, pruned_seconds = _timed_best(
                    lambda: pruned_planner.plan_paths_batch(
                        *args, max_length=plan_length
                    ),
                    repeats,
                )
                regrets = [
                    plan_regret(irn, history, objective, exact, pruned, user)
                    for (history, objective, user), exact, pruned in zip(
                        contexts, exact_paths, pruned_paths
                    )
                ]
                finite_regrets = [value for value in regrets if np.isfinite(value)]
                retrieval_counters = pruned_planner.cache_info()["retrieval"]
                speedup = (
                    round(exact_seconds / pruned_seconds, 2)
                    if pruned_seconds > 0
                    else float("inf")
                )
                best_speedup = max(best_speedup, speedup)
                generators_report[spec] = {
                    "fit_seconds": round(fit_seconds, 4),
                    "seconds": round(pruned_seconds, 4),
                    "paths_per_sec": (
                        round(len(pruned_paths) / pruned_seconds, 2)
                        if pruned_seconds > 0
                        else float("inf")
                    ),
                    "speedup_vs_exact": speedup,
                    "step_p95_ms": _step_latency_p95_ms(
                        BeamSearchPlanner(
                            irn,
                            candidate_generator=generator,
                            max_length=plan_length,
                            **planner_kwargs,
                        ).fit(split),
                        contexts,
                        plan_length,
                    ),
                    "overlap_at_k": round(float(np.mean(overlaps)), 4),
                    "mean_plan_regret": (
                        round(float(np.mean(finite_regrets)), 4)
                        if finite_regrets
                        else None
                    ),
                    "mean_candidate_size": (
                        round(float(np.mean(sizes)), 1) if sizes else None
                    ),
                    "fallbacks": retrieval_counters["fallbacks"],
                    "requests": retrieval_counters["requests"],
                }

            if tier_index == 0:
                parity_planner = BeamSearchPlanner(
                    irn,
                    candidate_generator=FullVocabGenerator(),
                    plan_cache_size=0,
                    **planner_kwargs,
                ).fit(split)
                parity_paths = parity_planner.plan_paths_batch(
                    *args, max_length=plan_length
                )
                full_vocab_parity = full_vocab_parity and parity_paths == exact_paths

            tiers_report.append(
                {
                    "num_items": num_items,
                    "vocab_size": split.corpus.vocab.size,
                    "num_events": store.num_events,
                    "num_contexts": len(contexts),
                    "exact": {
                        "seconds": round(exact_seconds, 4),
                        "paths_per_sec": (
                            round(len(exact_paths) / exact_seconds, 2)
                            if exact_seconds > 0
                            else float("inf")
                        ),
                        "step_p95_ms": exact_step_p95,
                    },
                    "generators": generators_report,
                    "best_speedup": best_speedup,
                    "peak_rss_kb": peak_rss_kb(),
                }
            )

    return {
        "profile": config["profile"],
        "num_candidates": r["num_candidates"],
        "overlap_k": overlap_k,
        "beam_width": r["beam_width"],
        "branch_factor": r["branch_factor"],
        "plan_max_length": plan_length,
        "wall_repeats": repeats,
        "full_vocab_parity": bool(full_vocab_parity),
        "objective_in_candidates": bool(objective_in_candidates),
        "tiers": tiers_report,
    }


def _bench_multi_tenant(
    irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict,
) -> dict:
    """Multi-tenant serving: per-kind parity, isolation, A/B determinism.

    Three deterministic gate contracts over one in-process tenanted fleet
    (a :class:`~repro.serve.loop.ServingLoop` holding a planner tenant, a
    recommender tenant and a knowledge-graph tenant):

    * **Per-kind parity** — every typed request kind (``next_step`` /
      ``plan_paths`` / ``rank`` / ``kg_path``) served through the tenant
      registry must answer bit-identically to calling the tenant's model
      directly (the multiplexed drain changes *where* the call happens,
      never what it returns).  Per kind: the parity bit and the mean
      serve-latency in microseconds.
    * **Tenant isolation** — a tenant bounded at ``max_inflight`` under
      the reject policy overflows while the drains are held; every reject
      must land on the noisy tenant's own admission scope, and a
      neighbouring unbounded tenant enqueued through the same loop must
      serve its full cohort with zero rejects.
    * **A/B determinism** — two identically-seeded runs of the online A/B
      harness (:func:`repro.tenant.ab.run_ab`, simulated cohorts against
      the control/treatment tenants) must produce identical experiment
      summaries, latency percentiles excluded (wall-clock is the one
      nondeterministic field).
    """
    from repro.evaluation.evaluator import IRSEvaluator
    from repro.kg.graph import ItemKnowledgeGraph
    from repro.models.markov import MarkovChainRecommender
    from repro.serve import ServingLoop
    from repro.serve.api import (
        KGPathRequest,
        NextStepRequest,
        PlanRequest,
        RankRequest,
    )
    from repro.tenant import TenantRegistry
    from repro.tenant.ab import TenantArm, run_ab
    from repro.utils.exceptions import QueueFullError

    max_length = config["max_path_length"]
    planner = BeamSearchPlanner(
        irn,
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
        max_length=max_length,
    ).fit(split)
    markov = MarkovChainRecommender().fit(split)
    graph = ItemKnowledgeGraph().build(split.corpus)

    def registry() -> TenantRegistry:
        reg = TenantRegistry()
        reg.add("irs", planner)
        reg.add("zoo", markov)
        reg.add("kg", graph)
        return reg

    # ---- per-kind parity + serve latency through the tenanted loop ---- #
    contexts = [
        (list(inst.history), inst.objective, inst.user_index) for inst in instances[:8]
    ]
    kg_pairs = [(history[-1], objective) for history, objective, _ in contexts]
    per_kind: "dict[str, dict]" = {}
    with ServingLoop(None, tenants=registry()) as loop:
        kind_traffic = {
            "next_step": (
                [
                    NextStepRequest(
                        history=h, objective=o, user_index=u, tenant="irs"
                    )
                    for h, o, u in contexts
                ],
                [
                    planner.plan_for_requests([("next_step", tuple(h), o, (), u, None)])[0]
                    for h, o, u in contexts
                ],
            ),
            "plan_paths": (
                [
                    PlanRequest(
                        history=h, objective=o, user_index=u,
                        max_length=max_length, tenant="irs",
                    )
                    for h, o, u in contexts
                ],
                [
                    planner.plan_for_requests(
                        [("plan_paths", tuple(h), o, (), u, max_length)]
                    )[0]
                    for h, o, u in contexts
                ],
            ),
            "rank": (
                [
                    RankRequest(history=h, k=10, user_index=u, tenant="zoo")
                    for h, _, u in contexts
                ],
                [
                    markov.top_k(list(h), 10, user_index=u) for h, _, u in contexts
                ],
            ),
            "kg_path": (
                [
                    KGPathRequest(source=s, target=t, tenant="kg")
                    for s, t in kg_pairs
                ],
                [graph.shortest_item_path(s, t) for s, t in kg_pairs],
            ),
        }
        for kind, (requests, expected) in kind_traffic.items():
            started = time.perf_counter()
            answers = [loop.serve(request).result().answer for request in requests]
            elapsed = time.perf_counter() - started
            per_kind[kind] = {
                "requests": len(requests),
                "parity": answers == expected,
                "mean_us": round(1e6 * elapsed / len(requests), 1),
            }

    # ---- isolation: a noisy tenant's rejects never touch its neighbour -- #
    bound = 2
    noisy_attempts = 6
    isolation_registry = TenantRegistry()
    isolation_registry.add("noisy", planner, max_inflight=bound, admission_policy="reject")
    isolation_registry.add("neighbour", markov)
    loop = ServingLoop(None, tenants=isolation_registry)
    history, objective, user = contexts[0]
    noisy_rejects = 0
    futures = []
    # The loop is built but NOT started: admitted envelopes sit in the
    # shard queue holding their tenant's in-flight slots, so the bounded
    # tenant overflows deterministically at its max_inflight.
    for _ in range(noisy_attempts):
        try:
            futures.append(
                loop.enqueue(
                    NextStepRequest(
                        history=history, objective=objective, user_index=user,
                        tenant="noisy",
                    ).to_envelope()
                )
            )
        except QueueFullError:
            noisy_rejects += 1
    for _ in range(noisy_attempts):
        futures.append(
            loop.enqueue(
                RankRequest(history=history, k=5, user_index=user, tenant="neighbour")
                .to_envelope()
            )
        )
    with loop:  # start the drains; every admitted future must resolve
        for future in futures:
            future.result()
    tenant_stats = loop.stats()["tenants"]
    isolation = {
        "max_inflight": bound,
        "noisy_attempts": noisy_attempts,
        "noisy_rejects": noisy_rejects,
        "noisy_served": tenant_stats["noisy"]["served"],
        "neighbour_served": tenant_stats["neighbour"]["served"],
        "isolated": (
            noisy_rejects == noisy_attempts - bound
            and tenant_stats["noisy"]["served"] == bound
            and tenant_stats["noisy"]["admission"]["rejected"] == noisy_rejects
            and tenant_stats["neighbour"]["served"] == noisy_attempts
        ),
    }

    # ---- A/B determinism: identical seeds => identical summaries ---- #
    evaluator = IRSEvaluator(irn)
    ab_instances = instances[: min(len(instances), 6)]

    def ab_registry() -> TenantRegistry:
        # A fresh treatment planner per run: plan-cache affinity carried
        # over from a previous run's sessions would change which steps get
        # replanned — the determinism contract is per *fleet lifetime*,
        # exactly what one CLI invocation or one registry build sees.
        reg = TenantRegistry()
        reg.add("control", markov)
        reg.add(
            "treatment",
            BeamSearchPlanner(
                irn,
                beam_width=config["beam_width"],
                branch_factor=config["branch_factor"],
                max_length=max_length,
            ).fit(split),
        )
        return reg

    def strip_latency(summary: dict) -> dict:
        cleaned = {}
        for arm in ("control", "treatment"):
            cleaned[arm] = {
                key: value
                for key, value in summary[arm].items()
                if key not in ("p50_ms", "p95_ms", "slo_met")
            }
        cleaned["uplift"] = summary["uplift"]
        return cleaned

    summaries = []
    ab_started = time.perf_counter()
    for _ in range(2):
        with ServingLoop(None, tenants=ab_registry()) as ab_loop:
            report = run_ab(
                ab_loop,
                TenantArm("control"),
                TenantArm("treatment"),
                ab_instances,
                evaluator,
                max_steps=2 * max_length,
                seed=0,
            )
        summaries.append(strip_latency(report.summary()))
    ab_seconds = time.perf_counter() - ab_started

    return {
        "max_path_length": max_length,
        "num_contexts": len(contexts),
        "tenants": ["irs", "zoo", "kg"],
        "per_kind": per_kind,
        "isolation": isolation,
        "ab": {
            "sessions_per_cohort": len(ab_instances),
            "runs": 2,
            "seconds": round(ab_seconds, 3),
            "deterministic": summaries[0] == summaries[1],
            "uplift": summaries[0]["uplift"],
        },
    }


#: Section registry: name -> builder(irn, split, instances, config, **knobs).
#: ``run_benchmarks(sections=...)`` and ``repro-irs bench --sections`` filter
#: against these names.
BENCH_SECTIONS = (
    "tensor_ops",
    "beam_planning",
    "greedy_planning",
    "nextitem_evaluation",
    "irs_stepwise_replanning",
    "incremental_decoding",
    "sharded_evaluation",
    "async_serving",
    "replicated_serving",
    "distributed_serving",
    "observability",
    "two_stage_retrieval",
    "multi_tenant",
)


def resolve_sections(sections: "Sequence[str] | None") -> "tuple[str, ...]":
    """Validate a section subset (``None`` means every section), preserving
    the canonical report order."""
    if sections is None:
        return BENCH_SECTIONS
    requested = [str(name).strip() for name in sections if str(name).strip()]
    if not requested:
        raise ConfigurationError(
            f"sections must name at least one of: {', '.join(BENCH_SECTIONS)}"
        )
    unknown = sorted(set(requested) - set(BENCH_SECTIONS))
    if unknown:
        raise ConfigurationError(
            f"unknown bench section(s) {', '.join(unknown)}; "
            f"valid sections: {', '.join(BENCH_SECTIONS)}"
        )
    return tuple(name for name in BENCH_SECTIONS if name in set(requested))


def run_benchmarks(
    profile: str = "default",
    output: str | None = None,
    shard_backend: "str | None" = None,
    vocab_shards: "int | None" = None,
    sections: "Sequence[str] | None" = None,
) -> dict:
    """Train a small IRN on the synthetic corpus and time scalar vs batched.

    Returns the report dict; when ``output`` is given it is also written there
    as JSON (the repo-root ``BENCH_path_planning.json`` artefact).
    ``shard_backend`` / ``vocab_shards`` configure the ``sharded_evaluation``
    and ``async_serving`` sections (defaults: the ``REPRO_*`` environment,
    then thread / 1).  ``sections`` restricts the run to a subset of
    :data:`BENCH_SECTIONS` (the corpus/model setup always runs; unselected
    sections are simply absent from the report).
    """
    selected = resolve_sections(sections)
    config = bench_config(profile)
    # The retrieval section builds its own per-tier corpora/models; when it
    # is the only selection (CI's scale-smoke leg), skip the shared setup
    # entirely instead of training a model nothing will use.
    needs_shared = any(name != "two_stage_retrieval" for name in selected)
    split = irn = instances = None
    if needs_shared:
        split = build_bench_split(config)
        irn = IRN(**config["irn"]).fit(split)
        instances = sample_objectives(
            split,
            min_objective_interactions=2,
            seed=0,
            max_instances=config["num_instances"],
        )

    machine = machine_info()
    report = {
        "benchmark": "path_planning",
        "profile": config["profile"],
        "dataset": config["synthetic"]["name"],
        "vocab_size": split.corpus.vocab.size if split is not None else None,
        "num_users": split.corpus.num_users if split is not None else None,
        "machine": machine,
        "sections": list(selected),
    }
    builders = {
        "tensor_ops": lambda: _bench_tensor_ops(irn, split, instances, config),
        "beam_planning": lambda: _bench_beam(irn, split, instances, config),
        "greedy_planning": lambda: _bench_greedy(irn, instances, config),
        "nextitem_evaluation": lambda: _bench_nextitem(irn, split, config),
        "irs_stepwise_replanning": lambda: _bench_stepwise(irn, split, instances, config),
        "incremental_decoding": lambda: _bench_incremental(split, instances, config),
        "sharded_evaluation": lambda: _bench_sharded(
            irn, split, instances, config,
            shard_backend=shard_backend, vocab_shards=vocab_shards,
        ),
        "async_serving": lambda: _bench_async_serving(
            irn, split, instances, config,
            shard_backend=shard_backend, vocab_shards=vocab_shards,
        ),
        "replicated_serving": lambda: _bench_replicated_serving(
            irn, split, instances, config,
            shard_backend=shard_backend, vocab_shards=vocab_shards,
        ),
        "distributed_serving": lambda: _bench_distributed_serving(
            irn, split, instances, config,
            shard_backend=shard_backend, vocab_shards=vocab_shards,
        ),
        "observability": lambda: _bench_observability(
            irn, split, instances, config,
            shard_backend=shard_backend, vocab_shards=vocab_shards,
        ),
        "two_stage_retrieval": lambda: _bench_two_stage_retrieval(config),
        "multi_tenant": lambda: _bench_multi_tenant(irn, split, instances, config),
    }
    for name in selected:
        report[name] = builders[name]()
        # Peak RSS is monotone per process, so the per-section reading is
        # an upper bound reached BY the end of that section — the reader
        # can attribute a jump to the section that introduced it.
        report[name]["peak_rss_kb"] = peak_rss_kb()
    # Every section records the CPU count and the execution backend it ran
    # on, so the perf trajectory stays comparable across machines: the
    # non-sharded sections run in-process serial NumPy.
    for name in selected:
        report[name].setdefault("backend", "serial")
        report[name]["cpu_count"] = machine["cpu_count"]
    # Refresh the root machine block's peak after the sections ran.
    machine["peak_rss_kb"] = peak_rss_kb()
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
        # Sidecar registry dump: the full metrics state the bench run left
        # behind (cache counters, serving latency histograms, KV allocation
        # bytes, ...), kept out of the main report so the committed bench
        # stays diffable while CI still uploads the complete snapshot.
        from repro.obs.export import metrics_to_json

        metrics_path = f"{os.path.splitext(output)[0]}.metrics.json"
        with open(metrics_path, "w", encoding="utf-8") as handle:
            handle.write(metrics_to_json(indent=2))
            handle.write("\n")
    return report


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile",
        default="default",
        help=f"bench profile ({' | '.join(BENCH_PROFILES)})",
    )
    parser.add_argument("--output", default="BENCH_path_planning.json")
    parser.add_argument(
        "--shard-backend",
        default=None,
        help="backend of the sharded_evaluation section (serial | thread | process)",
    )
    parser.add_argument(
        "--vocab-shards",
        type=int,
        default=None,
        help="column shards of the item axis for top-k in the sharded section",
    )
    parser.add_argument(
        "--sections",
        default=None,
        help=(
            "comma-separated subset of bench sections to run "
            f"(default: all of {', '.join(BENCH_SECTIONS)})"
        ),
    )
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help=(
            "run the selected sections under cProfile and write a pstats dump "
            "next to the JSON output (<output>.pstats), so perf work starts "
            "from evidence"
        ),
    )
    args = parser.parse_args(argv)
    sections = args.sections.split(",") if args.sections else None
    resolve_sections(sections)  # fail on typos BEFORE training the model
    resolve_profile(args.profile)  # same eager validation for the profile
    # Fail on an unwritable output path BEFORE spending minutes benchmarking.
    with open(args.output, "a", encoding="utf-8"):
        pass
    def run() -> dict:
        return run_benchmarks(
            profile=args.profile,
            output=args.output,
            shard_backend=args.shard_backend,
            vocab_shards=args.vocab_shards,
            sections=sections,
        )
    if args.cprofile:
        report, stats_path = profile_benchmarks(run, args.output)
        print(f"cProfile stats written to {stats_path}", file=sys.stderr)
    else:
        report = run()
    print(json.dumps(report, indent=2))
    print("\n" + format_summary(report))


def profile_benchmarks(run, output: str) -> tuple[dict, str]:
    """Run ``run()`` under :mod:`cProfile`, dumping pstats next to ``output``.

    Returns ``(report, stats_path)``.  The dump loads with
    ``pstats.Stats(stats_path)`` for sorting/printing; note the profiler
    inflates the wall-clock numbers inside the report itself, so profiled
    runs are for finding hotspots, not for refreshing the committed bench.
    """
    import cProfile

    stats_path = f"{output}.pstats"
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        report = run()
    finally:
        profiler.disable()
        profiler.dump_stats(stats_path)
    return report, stats_path


def format_summary(report: dict) -> str:
    """Human-readable highlights (shared with the ``repro-irs bench`` CLI).

    Only the sections present in the report are summarised, so subset runs
    (``--sections``) format cleanly.
    """
    lines = []
    if "tensor_ops" in report:
        tensor = report["tensor_ops"]
        attention = tensor["attention"]
        allocation = tensor["decode_allocation"]
        lines.append(
            f"tensor ops: fused attention {attention['fused_ns'] / 1e3:.1f}us vs "
            f"graph {attention['unfused_ns'] / 1e3:.1f}us "
            f"({attention['fused_speedup']}x, parity: {attention['fused_parity']}); "
            f"K/V decode step copies {allocation['arena']['copied_bytes_per_step']} B vs "
            f"{allocation['arena']['copy_reduction']}x more under concatenate "
            f"(no_prefix_copy: {allocation['no_prefix_copy']})"
        )
    if "beam_planning" in report:
        beam = report["beam_planning"]
        lines.append(
            f"beam planning: {beam['scalar']['forwards']} -> {beam['batched']['forwards']} forwards "
            f"({beam['forward_reduction']}x fewer), "
            f"{beam['scalar']['paths_per_sec']} -> {beam['batched']['paths_per_sec']} paths/sec"
        )
    if "greedy_planning" in report:
        greedy = report["greedy_planning"]
        lines.append(
            f"greedy planning: {greedy['scalar']['forwards']} -> "
            f"{greedy['batched']['forwards']} forwards "
            f"({greedy['forward_reduction']}x fewer), plans identical: {greedy['plans_equal']}"
        )
    if "nextitem_evaluation" in report:
        nextitem = report["nextitem_evaluation"]
        lines.append(
            f"next-item evaluation: {nextitem['scalar']['forwards']} -> "
            f"{nextitem['batched']['forwards']} forwards "
            f"({nextitem['forward_reduction']}x fewer), ranks identical: {nextitem['ranks_equal']}"
        )
    if "irs_stepwise_replanning" in report:
        stepwise = report["irs_stepwise_replanning"]
        counters = stepwise["cache_counters"]
        lines.append(
            f"stepwise IRS replanning: {stepwise['baseline']['tokens_encoded']} -> "
            f"{stepwise['cached']['tokens_encoded']} tokens of work "
            f"({stepwise['token_work_reduction']}x less), "
            f"{stepwise['cached']['forwards_per_sec']} forwards/sec"
        )
        lines.append(
            f"plan cache hit rate: {counters['plan_cache']['hit_rate']}, "
            f"step cache hit rate: {counters['step_cache']['hit_rate']} "
            f"(served {counters['serving']['served_from_plan']}, "
            f"replanned {counters['serving']['replans']})"
        )
    if "incremental_decoding" in report:
        incremental = report["incremental_decoding"]
        lines.append(
            f"incremental decoding (1 layer): {incremental['full_reencode']['tokens_encoded']} -> "
            f"{incremental['incremental']['tokens_encoded']} tokens of work "
            f"({incremental['token_work_reduction']}x less)"
        )
    if "sharded_evaluation" in report:
        sharded = report["sharded_evaluation"]
        best = max(sharded["workers"], key=lambda row: row["speedup_vs_serial"])
        lines.append(
            f"sharded evaluation ({sharded['backend']}, {sharded['cpu_count']} cpu): "
            f"{sharded['serial']['paths_per_sec']} paths/sec serial, "
            f"{best['paths_per_sec']} paths/sec at {best['num_workers']} workers "
            f"({best['speedup_vs_serial']}x, efficiency {best['scaling_efficiency']}), "
            f"plans identical: {all(row['plans_equal_serial'] for row in sharded['workers'])}"
        )
    if "async_serving" in report:
        serving = report["async_serving"]
        fastest = max(
            serving["workers"], key=lambda row: row["open_loop"]["throughput_rps"]
        )
        latency = fastest["open_loop"]["latency_ms"]
        lines.append(
            f"async serving ({serving['backend']}, {serving['cpu_count']} cpu, "
            f"{serving['arrival_rate']} req/s offered): "
            f"{fastest['open_loop']['throughput_rps']} req/s served at "
            f"{fastest['num_workers']} workers, latency p50 {latency['p50']} / "
            f"p95 {latency['p95']} / p99 {latency['p99']} ms, "
            f"responses identical: "
            f"{all(row['responses_match_sequential'] for row in serving['workers'])}"
        )
    if "replicated_serving" in report:
        replicated = report["replicated_serving"]
        refit = replicated["hot_refit"].get("refit", {})
        lines.append(
            f"replicated serving ({replicated['num_replicas']} replicas, "
            f"{replicated['cpu_count']} cpu): shared-generation parity "
            f"{replicated['parity']['responses_match_single_replica']}; hot refit "
            f"gen {refit.get('generation_from')} -> {refit.get('generation_to')} "
            f"flipped in {round(1e6 * refit.get('flip_seconds', 0.0), 1)} us, "
            f"no pause: {replicated['hot_refit']['no_pause']} "
            f"({replicated['hot_refit']['errored_requests']} errored, "
            f"{replicated['hot_refit']['rejected_requests']} rejected), "
            f"generations served {replicated['hot_refit']['generations_served']}"
        )
    if "distributed_serving" in report:
        distributed = report["distributed_serving"]
        codec = distributed["codec"]
        if distributed.get("workers"):
            fastest = max(
                distributed["workers"], key=lambda row: row["remote"]["paths_per_sec"]
            )
            sojourn = fastest["remote"]["sojourn_ms"]
            chaos = distributed["chaos"]
            lines.append(
                f"distributed serving (process transport, {distributed['cpu_count']} cpu): "
                f"{fastest['remote']['paths_per_sec']} paths/sec at "
                f"{fastest['num_workers']} workers "
                f"({fastest['remote_vs_in_process']}x in-process), sojourn p50 "
                f"{sojourn['p50']} / p95 {sojourn['p95']} / p99 {sojourn['p99']} ms, "
                f"codec {codec['request_encode_ns']}+{codec['request_decode_ns']} ns/req, "
                f"parity: {all(row['responses_match_sequential'] for row in distributed['workers'])}, "
                f"chaos zero-drop: {chaos['zero_dropped']} "
                f"(detected in {round(1e3 * chaos['detect_seconds'], 1)} ms, budget "
                f"{round(1e3 * chaos['budget_seconds'], 1)} ms)"
            )
        else:  # pragma: no cover - non-fork platforms
            lines.append(
                f"distributed serving: fork unavailable, codec only "
                f"({codec['request_encode_ns']}+{codec['request_decode_ns']} ns/req)"
            )
    if "two_stage_retrieval" in report:
        retrieval = report["two_stage_retrieval"]
        top = retrieval["tiers"][-1]
        best_name, best = max(
            top["generators"].items(), key=lambda item: item[1]["speedup_vs_exact"]
        )
        lines.append(
            f"two-stage retrieval (V={top['vocab_size']}): exact "
            f"{top['exact']['paths_per_sec']} paths/sec (step p95 "
            f"{top['exact']['step_p95_ms']} ms) -> {best['paths_per_sec']} paths/sec "
            f"under '{best_name}' ({best['speedup_vs_exact']}x, step p95 "
            f"{best['step_p95_ms']} ms), overlap@{retrieval['overlap_k']} "
            f"{best['overlap_at_k']}, mean regret {best['mean_plan_regret']}, "
            f"full-vocab parity: {retrieval['full_vocab_parity']}"
        )
    if "observability" in report:
        obs = report["observability"]
        lines.append(
            f"observability: disabled p95 {obs['disabled']['p95_ms']} ms vs enabled "
            f"{obs['enabled']['p95_ms']} ms (delta {obs['overhead']['p95_delta_ms']} ms, "
            f"budget {obs['overhead']['budget_ms']} ms, within: "
            f"{obs['overhead']['within_budget']}); disabled no-op: {obs['disabled_noop']}, "
            f"deterministic trace IDs: {obs['deterministic_trace_ids']}, "
            f"parity with tracing (async/replicated): "
            f"{obs['async_parity_with_tracing']}/{obs['replicated_parity_with_tracing']}"
        )
    return "\n".join(lines)


if __name__ == "__main__":
    main()
