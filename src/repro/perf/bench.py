"""Benchmark harness for the batched inference engine.

Measures, on the synthetic corpus, how the batched planning/evaluation paths
compare against the scalar (pre-batching) ones:

* **beam planning** — ``BeamSearchPlanner.plan_paths_batch`` (one fused
  transformer forward per depth across all hypotheses and instances) versus
  the same planner driven through a :class:`ScalarOnlyBackbone` facade, which
  hides ``score_with_objective_batch`` and therefore reproduces the scalar
  one-forward-per-hypothesis behaviour.
* **greedy rollouts** — ``IRN.generate_paths_batch`` lockstep Algorithm 1
  versus the per-instance ``generate_path`` loop.
* **next-item evaluation** — ``rank_of_batch`` versus per-instance
  ``rank_of``.

Module forwards are counted with :class:`ForwardCounter` (a wrapper around
``module.forward``), NOT wall-clock, so the CI assertions stay deterministic;
wall-clock throughput (paths/sec, forwards/sec) is reported alongside for the
perf trajectory.

Run ``PYTHONPATH=src python -m repro.perf.bench`` from the repo root to write
``BENCH_path_planning.json``; ``--profile smoke`` keeps it to seconds.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Sequence

import numpy as np

from repro.core.beam import BeamSearchPlanner
from repro.core.irn import IRN
from repro.data.preprocessing import build_corpus
from repro.data.splitting import DatasetSplit, split_corpus
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.evaluation.protocol import EvaluationInstance, sample_objectives
from repro.nn.layers import Module

__all__ = [
    "ForwardCounter",
    "ScalarOnlyBackbone",
    "smoke_config",
    "default_config",
    "build_bench_split",
    "run_benchmarks",
    "main",
]


class ForwardCounter:
    """Count calls to a module's ``forward`` (deterministic, no wall-clock).

    Used as a context manager: wraps ``module.forward`` with a counting shim
    for the duration of the block and restores it afterwards.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.count = 0

    def __enter__(self) -> "ForwardCounter":
        original = self.module.forward

        def counted(*args, **kwargs):
            self.count += 1
            return original(*args, **kwargs)

        object.__setattr__(self.module, "forward", counted)
        return self

    def __exit__(self, *exc_info) -> None:
        object.__delattr__(self.module, "forward")


class ScalarOnlyBackbone:
    """Facade exposing only the scalar scoring API of a backbone.

    Hiding ``score_with_objective_batch`` forces :class:`BeamSearchPlanner`
    onto its per-hypothesis fallback, which reproduces the pre-batching
    planner (one module forward per hypothesis per depth) for baseline
    measurements and parity checks.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = f"{getattr(inner, 'name', type(inner).__name__)}-scalar"

    @property
    def corpus(self):
        return self._inner.corpus

    def score_with_objective(
        self, sequence: Sequence[int], objective: int, user_index: int | None = None
    ) -> np.ndarray:
        return self._inner.score_with_objective(sequence, objective, user_index=user_index)


def smoke_config() -> dict:
    """Seconds-scale profile used by the ``pytest -m perf`` smoke test."""
    return {
        "profile": "smoke",
        "synthetic": dict(
            name="perf-smoke",
            num_users=40,
            num_items=60,
            num_genres=6,
            min_sequence_length=14,
            max_sequence_length=28,
            seed=0,
        ),
        "irn": dict(
            embedding_dim=16,
            user_dim=4,
            num_heads=2,
            num_layers=1,
            epochs=1,
            batch_size=32,
            max_sequence_length=20,
            seed=0,
        ),
        "beam_width": 4,
        "branch_factor": 4,
        "max_path_length": 8,
        "num_instances": 8,
        "num_eval_instances": 24,
    }


def default_config() -> dict:
    """The standard profile behind ``BENCH_path_planning.json``."""
    return {
        "profile": "default",
        "synthetic": dict(
            name="perf-synthetic",
            num_users=120,
            num_items=240,
            num_genres=8,
            seed=0,
        ),
        "irn": dict(
            embedding_dim=32,
            user_dim=8,
            num_heads=2,
            num_layers=2,
            epochs=2,
            batch_size=64,
            max_sequence_length=50,
            seed=0,
        ),
        "beam_width": 4,
        "branch_factor": 4,
        "max_path_length": 12,
        "num_instances": 24,
        "num_eval_instances": 60,
    }


def build_bench_split(config: dict) -> DatasetSplit:
    """Generate the synthetic corpus and split for a benchmark profile."""
    dataset = generate_synthetic_dataset(SyntheticConfig(**config["synthetic"]))
    corpus = build_corpus(dataset, min_interactions=3)
    return split_corpus(corpus, l_min=6, l_max=14, validation_fraction=0.1, seed=0)


def _timed(fn) -> tuple[object, float]:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _throughput(paths: int, forwards: int, seconds: float) -> dict:
    return {
        "paths": paths,
        "forwards": forwards,
        "seconds": round(seconds, 4),
        "paths_per_sec": round(paths / seconds, 2) if seconds > 0 else float("inf"),
        "forwards_per_sec": round(forwards / seconds, 2) if seconds > 0 else float("inf"),
    }


def _bench_beam(irn: IRN, split: DatasetSplit, instances: list[EvaluationInstance], config: dict) -> dict:
    contexts = [
        (list(inst.history), inst.objective, inst.user_index) for inst in instances
    ]
    max_length = config["max_path_length"]

    batched_planner = BeamSearchPlanner(
        irn, beam_width=config["beam_width"], branch_factor=config["branch_factor"]
    ).fit(split)
    scalar_planner = BeamSearchPlanner(
        ScalarOnlyBackbone(irn),
        beam_width=config["beam_width"],
        branch_factor=config["branch_factor"],
    ).fit(split)

    with ForwardCounter(irn.module) as counter:
        scalar_paths, scalar_seconds = _timed(
            lambda: [
                scalar_planner.plan_path(history, objective, user_index=user, max_length=max_length)
                for history, objective, user in contexts
            ]
        )
        scalar_forwards = counter.count

    with ForwardCounter(irn.module) as counter:
        batched_paths, batched_seconds = _timed(
            lambda: batched_planner.plan_paths_batch(
                [c[0] for c in contexts],
                [c[1] for c in contexts],
                [c[2] for c in contexts],
                max_length=max_length,
            )
        )
        batched_forwards = counter.count

    return {
        "beam_width": config["beam_width"],
        "branch_factor": config["branch_factor"],
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "scalar": _throughput(len(scalar_paths), scalar_forwards, scalar_seconds),
        "batched": _throughput(len(batched_paths), batched_forwards, batched_seconds),
        "forward_reduction": round(scalar_forwards / max(batched_forwards, 1), 2),
        "speedup": round(scalar_seconds / batched_seconds, 2) if batched_seconds > 0 else float("inf"),
        "plans_equal": scalar_paths == batched_paths,
    }


def _bench_greedy(irn: IRN, instances: list[EvaluationInstance], config: dict) -> dict:
    contexts = [
        (list(inst.history), inst.objective, inst.user_index) for inst in instances
    ]
    max_length = config["max_path_length"]

    with ForwardCounter(irn.module) as counter:
        scalar_paths, scalar_seconds = _timed(
            lambda: [
                irn.generate_path(history, objective, user_index=user, max_length=max_length)
                for history, objective, user in contexts
            ]
        )
        scalar_forwards = counter.count

    with ForwardCounter(irn.module) as counter:
        batched_paths, batched_seconds = _timed(
            lambda: irn.generate_paths_batch(
                [c[0] for c in contexts],
                [c[1] for c in contexts],
                [c[2] for c in contexts],
                max_length=max_length,
            )
        )
        batched_forwards = counter.count

    return {
        "max_path_length": max_length,
        "num_instances": len(contexts),
        "scalar": _throughput(len(scalar_paths), scalar_forwards, scalar_seconds),
        "batched": _throughput(len(batched_paths), batched_forwards, batched_seconds),
        "forward_reduction": round(scalar_forwards / max(batched_forwards, 1), 2),
        "speedup": round(scalar_seconds / batched_seconds, 2) if batched_seconds > 0 else float("inf"),
        "plans_equal": scalar_paths == batched_paths,
    }


def _bench_nextitem(irn: IRN, split: DatasetSplit, config: dict) -> dict:
    instances = split.test[: config["num_eval_instances"]]
    histories = [list(inst.history) for inst in instances]
    targets = [inst.target for inst in instances]
    users = [inst.user_index for inst in instances]

    with ForwardCounter(irn.module) as counter:
        scalar_ranks, scalar_seconds = _timed(
            lambda: [
                irn.rank_of(history, target, user_index=user)
                for history, target, user in zip(histories, targets, users)
            ]
        )
        scalar_forwards = counter.count

    with ForwardCounter(irn.module) as counter:
        batched_ranks, batched_seconds = _timed(
            lambda: irn.rank_of_batch(histories, targets, users)
        )
        batched_forwards = counter.count

    return {
        "num_instances": len(instances),
        "scalar": _throughput(len(scalar_ranks), scalar_forwards, scalar_seconds),
        "batched": _throughput(len(batched_ranks), batched_forwards, batched_seconds),
        "forward_reduction": round(scalar_forwards / max(batched_forwards, 1), 2),
        "ranks_equal": list(scalar_ranks) == list(batched_ranks),
    }


def run_benchmarks(profile: str = "default", output: str | None = None) -> dict:
    """Train a small IRN on the synthetic corpus and time scalar vs batched.

    Returns the report dict; when ``output`` is given it is also written there
    as JSON (the repo-root ``BENCH_path_planning.json`` artefact).
    """
    config = smoke_config() if profile == "smoke" else default_config()
    split = build_bench_split(config)
    irn = IRN(**config["irn"]).fit(split)
    instances = sample_objectives(
        split,
        min_objective_interactions=2,
        seed=0,
        max_instances=config["num_instances"],
    )

    report = {
        "benchmark": "path_planning",
        "profile": config["profile"],
        "dataset": config["synthetic"]["name"],
        "vocab_size": split.corpus.vocab.size,
        "num_users": split.corpus.num_users,
        "beam_planning": _bench_beam(irn, split, instances, config),
        "greedy_planning": _bench_greedy(irn, instances, config),
        "nextitem_evaluation": _bench_nextitem(irn, split, config),
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return report


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=["smoke", "default"], default="default")
    parser.add_argument("--output", default="BENCH_path_planning.json")
    args = parser.parse_args(argv)
    # Fail on an unwritable output path BEFORE spending minutes benchmarking.
    with open(args.output, "a", encoding="utf-8"):
        pass
    report = run_benchmarks(profile=args.profile, output=args.output)
    beam = report["beam_planning"]
    print(json.dumps(report, indent=2))
    print(
        f"\nbeam planning: {beam['scalar']['forwards']} -> {beam['batched']['forwards']} forwards "
        f"({beam['forward_reduction']}x fewer), "
        f"{beam['scalar']['paths_per_sec']} -> {beam['batched']['paths_per_sec']} paths/sec"
    )


if __name__ == "__main__":
    main()
