"""Performance measurement harness (path planning + evaluation throughput)."""

from repro.perf.bench import (
    ForwardCounter,
    ScalarOnlyBackbone,
    run_benchmarks,
    smoke_config,
)

__all__ = ["ForwardCounter", "ScalarOnlyBackbone", "run_benchmarks", "smoke_config"]
