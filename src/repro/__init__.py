"""Reproduction of "Influential Recommender System" (ICDE 2023).

The package is organised in layers:

``repro.nn``
    A from-scratch reverse-mode autograd engine and neural-network layers
    (the substrate that replaces PyTorch in this environment).
``repro.data``
    Interaction datasets, preprocessing, splitting, padding and synthetic
    MovieLens-1M / Lastfm-like corpus generators.
``repro.embeddings``
    item2vec (skip-gram with negative sampling) and PPMI/SVD embeddings.
``repro.models``
    Sequential recommender baselines (POP, BPR, TransRec, GRU4Rec, Caser,
    SASRec, BERT4Rec, Markov) used both as Rec2Inf backbones and as
    candidates for the IRS evaluator.
``repro.core``
    The paper's contribution: the Influential Recommender Network (IRN)
    with the Personalized Impressionability Mask, plus the Pf2Inf and
    Rec2Inf adaptation frameworks, the influence-path generation loop,
    beam-search planning and objective sets (collections / categories).
``repro.kg``
    Item/genre knowledge graph and the Kg2Inf subgraph-expansion
    recommender (the paper's future-work direction 1).
``repro.simulation``
    Stepwise accept/reject user simulation with replanning policies
    (future-work direction 4).
``repro.analysis``
    Genre-transition, diversity/novelty and path-quality diagnostics.
``repro.evaluation``
    The IRS evaluator, the SR/IoI/IoR/PPL metrics and the offline
    evaluation protocols.
``repro.experiments``
    Config objects and runners that regenerate every table and figure of
    the paper's evaluation section, the ablations, the extensions and the
    hyper-parameter grid search.
"""

from repro.version import __version__

__all__ = ["__version__"]
