"""Item knowledge graph: items, attribute (genre) nodes and typed edges.

The graph has two node types:

* ``("item", index)`` — one node per vocabulary item (padding excluded);
* ``("genre", name)`` — one node per genre/attribute.

and two edge types:

* ``has_genre`` — connects an item to each of its genres (weight
  ``genre_edge_weight``);
* ``co_consumed`` — connects two items that appear consecutively in some
  training sequence (weight inversely related to the transition count, so
  frequent transitions are "shorter").

Because every item with metadata is connected through its genre nodes, the
graph stays connected even when the co-consumption graph is sparse or
disjoint — precisely the failure mode of the plain Pf2Inf baseline the paper
points out (§III-C's critique of §III-B).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError

__all__ = ["ItemKnowledgeGraph"]


def _item_node(item: int) -> tuple[str, int]:
    return ("item", int(item))


def _genre_node(genre: str) -> tuple[str, str]:
    return ("genre", genre)


class ItemKnowledgeGraph:
    """Heterogeneous item/attribute graph built from a corpus and its splits.

    Parameters
    ----------
    genre_edge_weight:
        Length of an item—genre edge.  Going through a genre node costs two
        such hops, so the default of 0.75 makes a shared-genre connection
        (1.5) slightly more expensive than a strong co-consumption edge but
        cheaper than a chain of weak ones.
    count_weights:
        If True, co-consumption edges get weight ``1 / count`` (frequent
        transitions are shorter); if False every co-consumption edge has
        weight 1.
    """

    def __init__(self, genre_edge_weight: float = 0.75, count_weights: bool = True) -> None:
        if genre_edge_weight <= 0:
            raise ConfigurationError("genre_edge_weight must be positive")
        self.genre_edge_weight = genre_edge_weight
        self.count_weights = count_weights
        self.graph = nx.Graph()
        self._corpus: SequenceCorpus | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(
        self,
        corpus: SequenceCorpus,
        sequences: Iterable[Sequence[int]] | None = None,
    ) -> "ItemKnowledgeGraph":
        """Build the graph from ``corpus`` metadata and training ``sequences``.

        ``sequences`` defaults to the corpus' full user sequences; pass the
        training sub-sequences to avoid leaking evaluation transitions.
        """
        self._corpus = corpus
        self.graph = nx.Graph()
        for item in range(1, corpus.vocab.size):
            self.graph.add_node(_item_node(item), kind="item")
        for genre in corpus.genre_names:
            self.graph.add_node(_genre_node(genre), kind="genre")

        # has_genre edges
        if corpus.item_genre_matrix is not None:
            for item in range(1, corpus.vocab.size):
                for genre in corpus.item_genres(item):
                    self.graph.add_edge(
                        _item_node(item),
                        _genre_node(genre),
                        relation="has_genre",
                        weight=self.genre_edge_weight,
                    )

        # co_consumed edges
        if sequences is None:
            sequences = corpus.user_sequences
        for sequence in sequences:
            items = [item for item in sequence if item != 0]
            for previous, current in zip(items[:-1], items[1:]):
                if previous == current:
                    continue
                first, second = _item_node(previous), _item_node(current)
                if self.graph.has_edge(first, second):
                    self.graph[first][second]["count"] += 1
                else:
                    self.graph.add_edge(first, second, relation="co_consumed", count=1)
        for _, _, attributes in self.graph.edges(data=True):
            if attributes.get("relation") == "co_consumed":
                count = attributes["count"]
                attributes["weight"] = 1.0 / count if self.count_weights else 1.0
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def corpus(self) -> SequenceCorpus:
        if self._corpus is None:
            raise ConfigurationError("the knowledge graph has not been built yet")
        return self._corpus

    @property
    def num_item_nodes(self) -> int:
        return sum(1 for _, data in self.graph.nodes(data=True) if data.get("kind") == "item")

    @property
    def num_genre_nodes(self) -> int:
        return sum(1 for _, data in self.graph.nodes(data=True) if data.get("kind") == "genre")

    def item_neighbors(self, item: int) -> list[int]:
        """Items directly co-consumed with ``item``."""
        node = _item_node(item)
        if node not in self.graph:
            return []
        return sorted(
            neighbor[1]
            for neighbor in self.graph.neighbors(node)
            if neighbor[0] == "item"
        )

    def genres_of(self, item: int) -> list[str]:
        """Genre names adjacent to ``item`` in the graph."""
        node = _item_node(item)
        if node not in self.graph:
            return []
        return sorted(
            neighbor[1]
            for neighbor in self.graph.neighbors(node)
            if neighbor[0] == "genre"
        )

    def shared_genres(self, first: int, second: int) -> list[str]:
        """Genres shared by two items."""
        return sorted(set(self.genres_of(first)) & set(self.genres_of(second)))

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def distance(self, source: int, target: int) -> float:
        """Weighted shortest-path distance between two items (inf if disconnected)."""
        source_node, target_node = _item_node(source), _item_node(target)
        if source_node not in self.graph or target_node not in self.graph:
            return float("inf")
        try:
            return float(
                nx.shortest_path_length(self.graph, source_node, target_node, weight="weight")
            )
        except nx.NetworkXNoPath:
            return float("inf")

    def distances_from(self, target: int) -> dict[int, float]:
        """Distances from every reachable item to ``target`` (item indices only)."""
        target_node = _item_node(target)
        if target_node not in self.graph:
            return {}
        lengths = nx.single_source_dijkstra_path_length(self.graph, target_node, weight="weight")
        return {node[1]: float(length) for node, length in lengths.items() if node[0] == "item"}

    def shortest_item_path(self, source: int, target: int) -> list[int]:
        """Item indices along the shortest path (genre hops are skipped)."""
        source_node, target_node = _item_node(source), _item_node(target)
        if source_node not in self.graph or target_node not in self.graph:
            return []
        try:
            nodes = nx.shortest_path(self.graph, source_node, target_node, weight="weight")
        except nx.NetworkXNoPath:
            return []
        return [node[1] for node in nodes if node[0] == "item"]

    # ------------------------------------------------------------------ #
    # Interest subgraph
    # ------------------------------------------------------------------ #
    def interest_frontier(self, interest_items: Sequence[int]) -> list[int]:
        """Items adjacent to the user's interest subgraph but not yet in it.

        Adjacency is taken over both edge types: an item belongs to the
        frontier if it is co-consumed with an interest item *or* shares a
        genre with one.
        """
        interest = {int(item) for item in interest_items if item != 0}
        frontier: set[int] = set()
        for item in interest:
            node = _item_node(item)
            if node not in self.graph:
                continue
            for neighbor in self.graph.neighbors(node):
                if neighbor[0] == "item":
                    frontier.add(neighbor[1])
                else:
                    for second_hop in self.graph.neighbors(neighbor):
                        if second_hop[0] == "item":
                            frontier.add(second_hop[1])
        return sorted(frontier - interest)

    def popularity(self) -> np.ndarray:
        """Item popularity from the underlying corpus (used for tie-breaking)."""
        return self.corpus.item_popularity()
