"""Kg2Inf: knowledge-graph-based influential recommendation.

The plain Pf2Inf baseline finds one shortest path between the last history
item and the objective on the co-occurrence graph; it ignores most of the
user's history and breaks on disjoint graphs.  ``Kg2Inf`` follows the
paper's future-work suggestion instead: it models the user's historical
interests as a *subgraph* of the item knowledge graph and expands that
subgraph toward the objective item one step at a time.

At every step the candidate set is the frontier of the interest subgraph
(items co-consumed with, or sharing a genre with, something the user already
likes).  Each candidate is scored by how much closer it brings the subgraph
to the objective, discounted by how far it strays from the user's current
interests:

``score(c) = distance(c, objective) + smoothness_weight * distance(c, interest)``

where both distances are weighted shortest-path lengths on the knowledge
graph.  The lowest-scoring frontier item is recommended; once the objective
itself enters the frontier it is recommended directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import InfluentialRecommender, influential_registry
from repro.data.splitting import DatasetSplit
from repro.kg.graph import ItemKnowledgeGraph
from repro.utils.exceptions import ConfigurationError

__all__ = ["Kg2Inf"]


@influential_registry.register("kg2inf")
class Kg2Inf(InfluentialRecommender):
    """Interest-subgraph expansion on the item knowledge graph.

    Parameters
    ----------
    graph:
        A pre-built :class:`~repro.kg.graph.ItemKnowledgeGraph`; built from
        the training split when omitted.
    smoothness_weight:
        Trade-off between approaching the objective (0) and staying close to
        the user's existing interests (larger values).  Plays the role of the
        inverse aggressiveness degree of §IV-D3.
    interest_window:
        How many of the most recent consumed items anchor the "stay close to
        the user" term; ``None`` uses the full history.
    max_frontier:
        Cap on the number of frontier candidates scored per step (the most
        popular candidates are kept), bounding the per-step cost.
    """

    name = "Kg2Inf"

    def __init__(
        self,
        graph: ItemKnowledgeGraph | None = None,
        smoothness_weight: float = 0.5,
        interest_window: int | None = 10,
        max_frontier: int = 200,
    ) -> None:
        super().__init__()
        if smoothness_weight < 0:
            raise ConfigurationError("smoothness_weight must be non-negative")
        if interest_window is not None and interest_window <= 0:
            raise ConfigurationError("interest_window must be positive (or None)")
        if max_frontier <= 0:
            raise ConfigurationError("max_frontier must be positive")
        self.graph = graph
        self.smoothness_weight = smoothness_weight
        self.interest_window = interest_window
        self.max_frontier = max_frontier
        self._objective_distances: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "Kg2Inf":
        self.corpus = split.corpus
        if self.graph is None:
            self.graph = ItemKnowledgeGraph().build(
                split.corpus, sequences=[sequence.items for sequence in split.train]
            )
        elif self.graph._corpus is None:
            self.graph.build(split.corpus, sequences=[sequence.items for sequence in split.train])
        self._objective_distances = {}
        return self

    # ------------------------------------------------------------------ #
    def _distances_to_objective(self, objective: int) -> dict[int, float]:
        if objective not in self._objective_distances:
            assert self.graph is not None
            self._objective_distances[objective] = self.graph.distances_from(objective)
        return self._objective_distances[objective]

    def _interest_items(self, sequence: Sequence[int]) -> list[int]:
        items = [item for item in sequence if item != 0]
        if self.interest_window is not None:
            items = items[-self.interest_window :]
        return items

    def _interest_distance(self, candidate: int, interest: Sequence[int]) -> float:
        assert self.graph is not None
        distances = [self.graph.distance(candidate, item) for item in interest]
        finite = [value for value in distances if np.isfinite(value)]
        return float(np.mean(finite)) if finite else float("inf")

    # ------------------------------------------------------------------ #
    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        self._require_fitted()
        assert self.graph is not None
        sequence = list(history) + list(path_so_far)
        seen = {item for item in sequence if item != 0}
        frontier = [item for item in self.graph.interest_frontier(sequence) if item not in seen]
        if not frontier:
            return None
        if objective in frontier:
            return int(objective)

        if len(frontier) > self.max_frontier:
            popularity = self.graph.popularity()
            frontier = sorted(frontier, key=lambda item: -popularity[item])[: self.max_frontier]

        objective_distances = self._distances_to_objective(objective)
        interest = self._interest_items(sequence)
        popularity = self.graph.popularity()

        best_item: int | None = None
        best_key: tuple[float, float] | None = None
        for candidate in frontier:
            to_objective = objective_distances.get(candidate, float("inf"))
            if not np.isfinite(to_objective):
                continue
            to_interest = self._interest_distance(candidate, interest)
            if not np.isfinite(to_interest):
                to_interest = 0.0
            score = to_objective + self.smoothness_weight * to_interest
            key = (score, -float(popularity[candidate]))
            if best_key is None or key < best_key:
                best_item, best_key = int(candidate), key
        return best_item
