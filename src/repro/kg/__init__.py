"""Knowledge-graph extension of the path-finding IRS (future-work direction 1).

The paper's Pf2Inf baseline (§III-B) works on a plain item co-occurrence
graph and therefore fails on sparse or disjoint graphs.  Its conclusion
suggests extending the path-finding idea with a knowledge graph: "model the
user's historical interests as a subgraph and expand the subgraph toward the
objective item".

This subpackage implements that extension:

* :class:`~repro.kg.graph.ItemKnowledgeGraph` — a heterogeneous graph whose
  nodes are items and attributes (genres); items are linked to their
  attributes and to co-consumed items, so two items are always connected when
  they share metadata even if they never co-occur in a session.
* :class:`~repro.kg.kg2inf.Kg2Inf` — an influential recommender that keeps a
  user-interest subgraph and, at each step, recommends the frontier item that
  moves the subgraph closest to the objective while staying adjacent to what
  the user already likes.
"""

from repro.kg.graph import ItemKnowledgeGraph
from repro.kg.kg2inf import Kg2Inf

__all__ = ["ItemKnowledgeGraph", "Kg2Inf"]
