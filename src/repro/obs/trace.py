"""Per-request trace spans with deterministic, reproducible identifiers.

A :class:`Trace` rides inside the :class:`~repro.serve.request.ServeRequest`
envelope and collects :class:`Span` records — named wall-clock intervals
with attributes — as the request moves through admission, queue wait,
micro-batch drain, beam expansion, shard scatter/gather and cache
decisions.  Three properties shape the design:

**Deterministic identifiers.**  A trace ID is derived from the request's
routing key (``stable_hash`` of the context key) plus a per-key arrival
ordinal, *not* from wall time or object identity, so the same seeded
open-loop run produces the same trace IDs every time — traces are
diffable across runs, and ``repro.perf.gate`` asserts exactly that.
Sampling decisions hash the same pair, so *which* requests get traced is
reproducible too.  Span IDs are ``<trace_id>/<name>#<n>`` with ``n`` the
occurrence ordinal of that span name within the trace.

**Zero cost when off.**  A disabled :class:`Tracer` (the default — see
:mod:`repro.obs.config`) makes :meth:`Tracer.begin` return ``None`` after
one attribute check; every hot-path instrumentation site guards on
``tracer.enabled`` / ``request.trace is not None`` and allocates nothing.
The tracer counts every ``Trace``/``Span`` it allocates in the registry
group ``obs.trace``, which is how the bench proves the disabled path is a
structural no-op (allocation delta == 0), not merely fast.

**Batch-to-request fan-out.**  Micro-batch stages (planning, shard
scatter/gather, per-depth beam expansion) do work for many requests in one
call, below the layer that knows about :class:`ServeRequest`.  The drain
thread installs a :class:`BatchSink` — a thread-local carrying the traces
of the batch — and deep stages broadcast batch-wide spans through
:func:`current_sink` without any signature changes.  The sink is captured
and re-installed inside shard worker threads, so spans recorded by the
thread backend still land in the right traces.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from typing import Hashable, Iterator, Sequence

from repro.obs.config import resolve_trace_enabled, resolve_trace_sample_rate
from repro.obs.registry import MetricGroup, MetricsRegistry, get_registry

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "NULL_TRACER",
    "BatchSink",
    "current_sink",
    "use_sink",
]

#: Fixed registry scope for the tracer's process-wide allocation counters.
TRACE_METRICS_SCOPE = "obs.trace"

# 2^53: stable_hash fractions compared against the sample rate use the top
# 53 bits so the quotient is exactly representable as a float.
_SAMPLE_DENOMINATOR = float(1 << 53)


def stable_hash(key: Hashable) -> int:
    """A 64-bit interpreter-independent hash of ``key``.

    Same construction as :func:`repro.shard.partition.stable_hash`
    (``blake2b`` over the ``repr`` encoding), restated here so the
    observability layer stays a leaf dependency — the shard executor
    imports *this* package for its batch sink, so importing the shard
    package back would be circular.  Keeping the construction identical
    means a trace ID's key-hash prefix agrees with the request's shard
    routing hash.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Span:
    """One named wall-clock interval inside a trace."""

    __slots__ = ("span_id", "name", "start", "end", "attrs")

    def __init__(self, span_id: str, name: str, start: float, end: float, attrs: dict):
        self.span_id = span_id
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_s": round(self.start, 6),
            "duration_ms": round(self.duration_ms, 3),
            "attrs": dict(self.attrs),
        }


class Trace:
    """The spans of one request; append-safe from concurrent shard workers."""

    __slots__ = ("trace_id", "attrs", "spans", "_lock", "_name_counts", "_finished")

    def __init__(self, trace_id: str, attrs: dict):
        self.trace_id = trace_id
        self.attrs = attrs
        self.spans: "list[Span]" = []
        self._lock = threading.Lock()
        self._name_counts: "dict[str, int]" = {}
        self._finished = False

    def span(self, name: str, start: float, end: float, **attrs) -> Span:
        """Record a completed interval.  Span IDs number repeated names
        (``beam.depth#0``, ``beam.depth#1`` …) in recording order."""
        with self._lock:
            ordinal = self._name_counts.get(name, 0)
            self._name_counts[name] = ordinal + 1
            span = Span(f"{self.trace_id}/{name}#{ordinal}", name, start, end, attrs)
            self.spans.append(span)
        return span

    @contextmanager
    def timed(self, name: str, **attrs) -> "Iterator[None]":
        """Record the span of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.span(name, start, time.perf_counter(), **attrs)

    def to_dict(self) -> dict:
        with self._lock:
            spans = [span.to_dict() for span in self.spans]
        return {
            "trace_id": self.trace_id,
            "attrs": dict(self.attrs),
            "spans": spans,
        }


class Tracer:
    """Creates traces; owns sampling, identity and allocation accounting.

    ``enabled`` / ``sample_rate`` default through
    :func:`~repro.obs.config.resolve_trace_enabled` and
    :func:`~repro.obs.config.resolve_trace_sample_rate` (``REPRO_TRACE`` /
    ``REPRO_TRACE_SAMPLE_RATE``), so the process-default tracer is **off**
    and serving pays one boolean check per request.
    """

    def __init__(
        self,
        enabled: "bool | None" = None,
        sample_rate: "float | None" = None,
        capacity: int = 4096,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.enabled = resolve_trace_enabled(enabled)
        self.sample_rate = resolve_trace_sample_rate(sample_rate)
        self.capacity = int(capacity)
        registry = registry if registry is not None else get_registry()
        # Fixed scope: allocation counts are a process-wide property (the
        # disabled no-op contract), not a per-tracer one.
        self._metrics = MetricGroup(
            registry,
            TRACE_METRICS_SCOPE,
            counters=("traces", "spans", "sampled_out", "dropped"),
        )
        self._lock = threading.Lock()
        self._sequences: "dict[int, int]" = {}
        self._traces: "list[Trace]" = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def begin(self, routing_key, **attrs) -> "Trace | None":
        """Start a trace for a request, or ``None`` (disabled / sampled out).

        The trace ID is ``<key_hash:012x>-<seq>`` where ``seq`` counts prior
        requests with the same routing-key hash.  The seeded open-loop
        driver submits requests single-threaded in schedule order, so the
        per-key ordinal — and therefore every trace ID — is identical
        across identically-seeded runs.
        """
        if not self.enabled:
            return None
        key_hash = stable_hash(routing_key)
        with self._lock:
            sequence = self._sequences.get(key_hash, 0)
            self._sequences[key_hash] = sequence + 1
        if self.sample_rate < 1.0:
            # Deterministic sampling: hash the (key, ordinal) pair rather
            # than drawing randomness, so reruns trace the same requests.
            fraction = (stable_hash((key_hash, sequence)) >> 11) / _SAMPLE_DENOMINATOR
            if fraction >= self.sample_rate:
                self._metrics.record(add={"sampled_out": 1})
                return None
        trace = Trace(f"{key_hash & 0xFFFFFFFFFFFF:012x}-{sequence}", attrs)
        with self._lock:
            if len(self._traces) < self.capacity:
                self._traces.append(trace)
                retained = True
            else:
                retained = False
        self._metrics.record(add={"traces": 1} if retained else {"traces": 1, "dropped": 1})
        return trace

    def finish(self, trace: "Trace | None") -> None:
        """Seal a trace (called once the request's future is about to
        resolve) and account its spans."""
        if trace is None or trace._finished:
            return
        trace._finished = True
        with trace._lock:
            num_spans = len(trace.spans)
        if num_spans:
            self._metrics.record(add={"spans": num_spans})

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def export(self) -> "list[dict]":
        """Every retained trace as a JSON-ready list, in begin order."""
        with self._lock:
            traces = list(self._traces)
        return [trace.to_dict() for trace in traces]

    def trace_ids(self) -> "list[str]":
        with self._lock:
            return [trace.trace_id for trace in self._traces]

    def summary(self) -> dict:
        """Per-span-name aggregates (count / total / mean / max ms)."""
        totals: "dict[str, list]" = {}
        with self._lock:
            traces = list(self._traces)
        for trace in traces:
            with trace._lock:
                spans = list(trace.spans)
            for span in spans:
                entry = totals.setdefault(span.name, [0, 0.0, 0.0])
                entry[0] += 1
                entry[1] += span.duration_ms
                if span.duration_ms > entry[2]:
                    entry[2] = span.duration_ms
        return {
            name: {
                "count": count,
                "total_ms": round(total, 3),
                "mean_ms": round(total / count, 3) if count else 0.0,
                "max_ms": round(peak, 3),
            }
            for name, (count, total, peak) in sorted(totals.items())
        }

    def counters(self) -> dict:
        """The ``obs.trace`` allocation counters (traces / spans /
        sampled_out / dropped) — shared by every tracer in the process."""
        return self._metrics.values()

    def reset(self) -> None:
        with self._lock:
            self._sequences.clear()
            self._traces.clear()


#: The process-default disabled tracer: serving components fall back to it
#: when no tracer is injected, making instrumentation a no-op by default.
NULL_TRACER = Tracer(enabled=False)


class BatchSink:
    """Thread-local bridge from batch-wide stages to per-request traces.

    ``traces`` is aligned with the micro-batch's request order; entries are
    ``None`` for untraced requests.  Deep stages (planner, shard executor)
    call :meth:`batch_span` to broadcast an interval to every traced
    request in the batch, or :meth:`request_span` to target one position.
    """

    __slots__ = ("traces", "_any")

    def __init__(self, traces: "Sequence[Trace | None]"):
        self.traces = list(traces)
        self._any = any(trace is not None for trace in self.traces)

    def __bool__(self) -> bool:
        return self._any

    def batch_span(self, name: str, start: float, end: float, **attrs) -> None:
        for trace in self.traces:
            if trace is not None:
                trace.span(name, start, end, **attrs)

    def request_span(
        self, index: int, name: str, start: float, end: float, **attrs
    ) -> None:
        if 0 <= index < len(self.traces):
            trace = self.traces[index]
            if trace is not None:
                trace.span(name, start, end, **attrs)


_LOCAL = threading.local()


def current_sink() -> "BatchSink | None":
    """The sink of the micro-batch being served on this thread, if any.

    One thread-local attribute read — cheap enough for hot paths to call
    unconditionally, and ``None`` whenever tracing is off or the caller is
    not inside a traced drain.
    """
    return getattr(_LOCAL, "sink", None)


@contextmanager
def use_sink(sink: "BatchSink | None") -> "Iterator[None]":
    """Install ``sink`` as this thread's batch sink for the ``with`` body.

    Passing ``None`` (or an all-``None`` sink) keeps the previous state —
    callers never need their own enabled-check.  Shard worker lambdas
    capture :func:`current_sink` in the dispatching thread and re-enter
    through this to carry the sink across the thread boundary.
    """
    if sink is None or not sink:
        yield
        return
    previous = getattr(_LOCAL, "sink", None)
    _LOCAL.sink = sink
    try:
        yield
    finally:
        _LOCAL.sink = previous
