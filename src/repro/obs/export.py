"""Exporters: registry snapshots as JSON or Prometheus text, traces as JSON.

Both exporters read through :meth:`MetricsRegistry.snapshot`, so an export
is one atomic view of the process — the same guarantee the in-process read
APIs give.  The Prometheus writer follows the text exposition format
(``# TYPE`` lines, ``_total`` counter suffix, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``); dots and other
non-identifier characters in metric paths become underscores.
"""

from __future__ import annotations

import json
import re

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import Tracer

__all__ = [
    "metrics_snapshot",
    "metrics_to_json",
    "metrics_to_prometheus",
    "traces_to_json",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def metrics_snapshot(
    registry: "MetricsRegistry | None" = None, prefix: "str | None" = None
) -> dict:
    """One atomic snapshot of the registry (the JSON exporter's payload)."""
    registry = registry if registry is not None else get_registry()
    return registry.snapshot(prefix)


def metrics_to_json(
    registry: "MetricsRegistry | None" = None,
    prefix: "str | None" = None,
    indent: int = 2,
) -> str:
    return json.dumps(metrics_snapshot(registry, prefix), indent=indent, sort_keys=True)


def metrics_to_prometheus(
    registry: "MetricsRegistry | None" = None, prefix: "str | None" = None
) -> str:
    """The registry in Prometheus text exposition format."""
    snapshot = metrics_snapshot(registry, prefix)
    lines: "list[str]" = []
    for name in sorted(snapshot["counters"]):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {snapshot['counters'][name]}")
    for name in sorted(snapshot["gauges"]):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {snapshot['gauges'][name]}")
    for name in sorted(snapshot["histograms"]):
        data = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{prom}_sum {data['sum']}")
        lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def traces_to_json(tracer: Tracer, indent: int = 2) -> str:
    """Every retained trace plus the per-span-name summary, as JSON."""
    payload = {
        "traces": tracer.export(),
        "summary": tracer.summary(),
        "counters": tracer.counters(),
        "sample_rate": tracer.sample_rate,
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
