"""Unified observability: trace spans, metrics registry, exporters.

See :mod:`repro.obs.registry` for the single-locked metrics registry,
:mod:`repro.obs.trace` for deterministic per-request trace spans, and
:mod:`repro.obs.export` for the JSON / Prometheus-text exporters.  The
whole subsystem is off by default and contractually free when off — the
``observability`` bench section and ``repro.perf.gate`` enforce it.
"""

from repro.obs.config import (
    DEFAULT_TRACE_ENABLED,
    DEFAULT_TRACE_SAMPLE_RATE,
    resolve_trace_enabled,
    resolve_trace_sample_rate,
)
from repro.obs.export import (
    metrics_snapshot,
    metrics_to_json,
    metrics_to_prometheus,
    traces_to_json,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricGroup,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    NULL_TRACER,
    BatchSink,
    Span,
    Trace,
    Tracer,
    current_sink,
    use_sink,
)

__all__ = [
    "BatchSink",
    "Counter",
    "DEFAULT_TRACE_ENABLED",
    "DEFAULT_TRACE_SAMPLE_RATE",
    "Gauge",
    "Histogram",
    "MetricGroup",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "Trace",
    "Tracer",
    "current_sink",
    "get_registry",
    "metrics_snapshot",
    "metrics_to_json",
    "metrics_to_prometheus",
    "resolve_trace_enabled",
    "resolve_trace_sample_rate",
    "set_registry",
    "traces_to_json",
    "use_sink",
]
