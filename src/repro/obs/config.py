"""Configuration surface of the observability subsystem.

Two knobs, resolved with the serving subsystem's precedence rule
(explicit argument > environment variable > built-in default):

* ``trace_enabled`` (``REPRO_TRACE``) — whether request tracing is on at
  all.  **Defaults to off**: the overhead contract in ``repro.perf.gate``
  asserts that a disabled tracer is a structural no-op on the serving hot
  path (zero ``Trace``/``Span`` allocations), so production serving pays
  nothing for the subsystem's existence.
* ``trace_sample_rate`` (``REPRO_TRACE_SAMPLE_RATE``) — fraction of
  requests traced once tracing is on, in ``[0, 1]``.  Sampling is
  deterministic per (routing key, arrival ordinal), so the same seeded
  open-loop run always traces the same requests.

The environment hooks mirror the ``REPRO_NUM_WORKERS`` family: CI and
operators flip tracing on a whole run (``REPRO_TRACE=1``) without touching
any call site.
"""

from __future__ import annotations

import os

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_TRACE_ENABLED",
    "DEFAULT_TRACE_SAMPLE_RATE",
    "resolve_trace_enabled",
    "resolve_trace_sample_rate",
]

_ENV_TRACE = "REPRO_TRACE"
_ENV_TRACE_SAMPLE_RATE = "REPRO_TRACE_SAMPLE_RATE"

DEFAULT_TRACE_ENABLED = False
DEFAULT_TRACE_SAMPLE_RATE = 1.0

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


def _resolve(value, env_var: str, default, parse):
    if value is not None:
        return parse(value, "argument")
    env = os.environ.get(env_var)
    if env is not None and env != "":
        return parse(env, f"${env_var}")
    return default


def resolve_trace_enabled(value: "bool | str | None" = None) -> bool:
    """Tracing switch: explicit > ``REPRO_TRACE`` > off."""

    def parse(raw, source):
        if isinstance(raw, bool):
            return raw
        text = str(raw).lower()
        if text in _TRUTHY:
            return True
        if text in _FALSY:
            return False
        raise ConfigurationError(
            f"trace_enabled must be one of {_TRUTHY + _FALSY}, got {raw!r} "
            f"(from {source})"
        )

    return _resolve(value, _ENV_TRACE, DEFAULT_TRACE_ENABLED, parse)


def resolve_trace_sample_rate(value: "float | None" = None) -> float:
    """Sampling fraction: explicit > ``REPRO_TRACE_SAMPLE_RATE`` > 1.0."""

    def parse(raw, source):
        try:
            rate = float(raw)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"trace_sample_rate must be a number, got {raw!r} (from {source})"
            ) from None
        if rate != rate or not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"trace_sample_rate must be in [0, 1], got {rate} (from {source})"
            )
        return rate

    return _resolve(value, _ENV_TRACE_SAMPLE_RATE, DEFAULT_TRACE_SAMPLE_RATE, parse)
