"""Process-wide metrics registry: counters, gauges and histograms.

The serving stack grew one ad-hoc counter surface per subsystem —
``DecodeStats``, ``PlanCache`` counters, the K/V allocation dict, admission
and queue counters, dispatcher picks — each with its own lock and its own
snapshot semantics.  :class:`MetricsRegistry` replaces the *storage* layer
of all of them with one registry and **one lock**:

* every instrument (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  mutates under the registry's single re-entrant lock, so
* :meth:`MetricsRegistry.snapshot` is a genuinely atomic read — one lock
  acquisition covers every instrument, and a snapshot taken while another
  thread is mid-update can never observe a torn combination (a hit counted
  next to a miss total it does not belong with);
* :class:`MetricGroup` bundles the instruments of one component so a
  multi-field update (``full_forwards += 1`` *and* ``tokens_full += n``)
  is one lock acquisition, exactly as atomic as the per-component locks it
  replaces.

The existing public read APIs (``DecodeStats.snapshot()``,
``PlanCache.counters()``, ``allocation_stats()``, ``ServingLoop.stats()``)
keep their shapes — they become views over the registry, so no caller
changes.  Exporters (:mod:`repro.obs.export`) read the same snapshot.

Instrument names are dot-separated paths (``serve.loop.0.queue.1.enqueued``).
Components that may be instantiated many times in one process obtain a
unique namespace via :meth:`MetricsRegistry.scope`, which appends a
monotonic per-prefix index; fixed module-wide surfaces (the K/V allocation
counters) use a literal scope.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricGroup",
    "MetricsRegistry",
    "DEFAULT_BUCKETS_MS",
    "get_registry",
    "set_registry",
]

#: Default latency-histogram bucket upper bounds, in milliseconds (the last
#: bucket is the implicit +Inf overflow).
DEFAULT_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                      1000.0, 2000.0, 5000.0)


class Counter:
    """A monotonically increasing value (int or float increments)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: "threading.RLock") -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def value(self):
        with self._lock:
            return self._value

    def _reset_locked(self) -> None:
        self._value = 0

    def _snapshot_locked(self):
        return self._value


class Gauge:
    """A point-in-time value (queue depth, EWMA load, in-flight count)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: "threading.RLock") -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value) -> None:
        """Keep the running maximum (high-water marks)."""
        with self._lock:
            if value > self._value:
                self._value = value

    def value(self):
        with self._lock:
            return self._value

    def _reset_locked(self) -> None:
        self._value = 0

    def _snapshot_locked(self):
        return self._value


class Histogram:
    """A fixed-bucket distribution (count / sum / min / max per snapshot)."""

    __slots__ = ("name", "_lock", "buckets", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self, name: str, lock: "threading.RLock", buckets: "tuple[float, ...]"
    ) -> None:
        self.name = name
        self._lock = lock
        self.buckets = tuple(sorted(float(bound) for bound in buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def observe(self, value) -> None:
        value = float(value)
        with self._lock:
            self._observe_locked(value)

    def observe_many(self, values: "Iterable[float]") -> None:
        """Record several samples under one lock acquisition."""
        with self._lock:
            for value in values:
                self._observe_locked(float(value))

    def _observe_locked(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self._counts[index] += 1
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def value(self) -> dict:
        with self._lock:
            return self._snapshot_locked()

    def _reset_locked(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None

    def _snapshot_locked(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "count": self._count,
            "sum": round(self._sum, 6),
            "min": self._min,
            "max": self._max,
            "mean": round(self._sum / self._count, 6) if self._count else 0.0,
        }


class MetricsRegistry:
    """All instruments of one process behind one re-entrant lock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}
        self._scope_indices: "dict[str, int]" = {}

    # ------------------------------------------------------------------ #
    # Namespacing
    # ------------------------------------------------------------------ #
    def scope(self, prefix: str) -> str:
        """A unique instance namespace: ``prefix.<n>`` with n monotonic.

        Components instantiated many times per process (serving loops,
        plan caches, decode-stats instances) call this once in their
        constructor so their instruments never collide.
        """
        with self._lock:
            index = self._scope_indices.get(prefix, 0)
            self._scope_indices[prefix] = index + 1
        return f"{prefix}.{index}"

    # ------------------------------------------------------------------ #
    # Instrument factories (get-or-create; names are process-unique)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_free(name, self._counters)
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_free(name, self._gauges)
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, self._lock)
            return instrument

    def histogram(
        self, name: str, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        with self._lock:
            self._check_free(name, self._histograms)
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, self._lock, buckets)
            return instrument

    def _check_free(self, name: str, own: Mapping) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric name {name!r} is already registered as a different "
                    f"instrument type"
                )

    # ------------------------------------------------------------------ #
    # Atomic reads
    # ------------------------------------------------------------------ #
    def snapshot(self, prefix: "str | None" = None) -> dict:
        """One atomic read of every instrument (optionally under ``prefix``).

        Returns ``{"counters": {name: value}, "gauges": {...},
        "histograms": {name: {...}}}``.  The whole snapshot is taken under
        one lock acquisition, so any multi-field update that happened
        through a :class:`MetricGroup` is either fully visible or not at
        all — this is what makes ``ServingLoop.stats()`` and
        ``allocation_stats()`` race-free.
        """

        def keep(name: str) -> bool:
            return prefix is None or name == prefix or name.startswith(prefix + ".")

        with self._lock:
            return {
                "counters": {
                    name: c._snapshot_locked()
                    for name, c in self._counters.items()
                    if keep(name)
                },
                "gauges": {
                    name: g._snapshot_locked()
                    for name, g in self._gauges.items()
                    if keep(name)
                },
                "histograms": {
                    name: h._snapshot_locked()
                    for name, h in self._histograms.items()
                    if keep(name)
                },
            }

    def reset(self, prefix: "str | None" = None) -> None:
        """Zero every instrument (optionally only those under ``prefix``)."""

        def keep(name: str) -> bool:
            return prefix is None or name == prefix or name.startswith(prefix + ".")

        with self._lock:
            for family in (self._counters, self._gauges, self._histograms):
                for name, instrument in family.items():
                    if keep(name):
                        instrument._reset_locked()


class MetricGroup:
    """The instruments of one component, updated under one lock acquisition.

    A group bundles counters and gauges that belong together (the six
    decode-work fields, a queue's depth/batch counters) so a logically
    atomic multi-field update stays atomic: :meth:`record` takes the
    registry lock once and applies every increment/max/set inside it —
    exactly the guarantee the per-component locks used to give, now
    composable with every other group's under the same snapshot.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        scope: str,
        counters: "Iterable[str]" = (),
        gauges: "Iterable[str]" = (),
    ) -> None:
        self.registry = registry
        self.scope = scope
        self._lock = registry._lock
        self._counters = {name: registry.counter(f"{scope}.{name}") for name in counters}
        self._gauges = {name: registry.gauge(f"{scope}.{name}") for name in gauges}

    def record(
        self,
        add: "Mapping | None" = None,
        max_: "Mapping | None" = None,
        set_: "Mapping | None" = None,
    ) -> None:
        """Apply increments (``add``, counters), running maxima (``max_``,
        gauges) and assignments (``set_``, gauges) atomically."""
        with self._lock:
            if add:
                for name, amount in add.items():
                    self._counters[name]._value += amount
            if max_:
                for name, value in max_.items():
                    gauge = self._gauges[name]
                    if value > gauge._value:
                        gauge._value = value
            if set_:
                for name, value in set_.items():
                    self._gauges[name]._value = value

    def value(self, name: str):
        """One field's current value (single locked read)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]._value
            return self._gauges[name]._value

    def values(self) -> dict:
        """Every field of the group under one lock acquisition."""
        with self._lock:
            snapshot = {name: c._value for name, c in self._counters.items()}
            snapshot.update({name: g._value for name, g in self._gauges.items()})
            return snapshot

    def reset(self) -> None:
        with self._lock:
            for instrument in self._counters.values():
                instrument._reset_locked()
            for instrument in self._gauges.values():
                instrument._reset_locked()


# ---------------------------------------------------------------------- #
# The process-wide default registry
# ---------------------------------------------------------------------- #
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every component records into."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one.

    Existing components keep the instruments they were constructed with —
    the swap only affects components created afterwards.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
