"""One declarative resolver table for every ``REPRO_*`` configuration knob.

Before this module existed, four packages (``serve/``, ``replica/``,
``distributed/``, ``shard/`` — plus ``retrieval/``'s spec strings) each
hand-rolled the same three-step resolution dance: explicit argument beats
``$REPRO_*`` environment variable beats built-in default, with a
:class:`~repro.utils.exceptions.ConfigurationError` naming the offending
source on bad input.  The dance was identical; the boilerplate was not —
every package re-implemented the integer/float/choice parsers and their
error wording drifted one adjective at a time.

Now there is one table.  Each knob is a :class:`ConfigField` row declaring
its typed parser, its environment variable (derived from the field name
unless history says otherwise — ``num_replicas`` reads ``REPRO_REPLICAS``),
its CLI flag spelling, its argparse group, and its help text.  Everything
downstream is generated from the rows:

* the ``resolve_<knob>()`` functions the packages re-export (signatures and
  error messages unchanged — the per-package ``config`` modules are now
  thin compatibility shims over this table);
* the grouped ``repro-irs`` flag sections
  (:func:`add_config_arguments` builds one ``argparse`` argument group per
  knob group, so a new knob is one table row, not another entry in a flat
  flag list);
* the single ConfigurationError format:
  ``"<knob> must be <expectation>, got <value!r> (from <source>)"`` where
  the source is ``argument`` or ``$REPRO_<NAME>``.

The tenancy rows (``tenants``, ``cohort_sessions``, ``slo_p95``) configure
the multi-tenant serving surface (:mod:`repro.tenant`): how many tenants
``serve-sim`` binds, how many simulated sessions each A/B cohort runs, and
the per-tenant p95 latency SLO the report grades against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "ConfigField",
    "CONFIG_FIELDS",
    "CONFIG_GROUPS",
    "GROUP_TITLES",
    "resolve",
    "fields_in_group",
    "add_config_arguments",
    # valid-choice tuples (historically exported by the package configs)
    "VALID_ADMISSION_POLICIES",
    "VALID_DISPATCH_POLICIES",
    "VALID_TRANSPORTS",
    "VALID_BACKENDS",
    "RETRIEVAL_SPECS",
    # typed resolvers, one per table row
    "resolve_max_queue_depth",
    "resolve_admission_policy",
    "resolve_drain_deadline",
    "resolve_arrival_rate",
    "resolve_serve_duration",
    "resolve_num_workers",
    "resolve_shard_backend_name",
    "resolve_vocab_shards",
    "resolve_num_replicas",
    "resolve_refit_at",
    "resolve_dispatch_policy",
    "resolve_transport",
    "resolve_heartbeat_interval",
    "resolve_heartbeat_misses",
    "resolve_probation_beats",
    "resolve_retrieval_spec",
    "resolve_candidate_k",
    "resolve_tenants",
    "resolve_cohort_sessions",
    "resolve_slo_p95",
]

VALID_ADMISSION_POLICIES = ("block", "reject")
VALID_DISPATCH_POLICIES = ("least_loaded", "round_robin")
VALID_TRANSPORTS = ("inproc", "process")
VALID_BACKENDS = ("serial", "thread", "process")
RETRIEVAL_SPECS = ("none", "full", "ann", "cooccurrence")


# --------------------------------------------------------------------- #
# Typed parsers.  Each returns a ``(raw, source) -> value`` closure whose
# error wording matches the historical per-package resolvers exactly —
# the table centralises the logic without breaking a single test that
# greps for a knob name or a ``$REPRO_*`` source in the message.
# --------------------------------------------------------------------- #
def int_at_least(name: str, minimum: int = 1, hint: str = "") -> Callable:
    def parse(raw, source):
        try:
            parsed = int(raw)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{name} must be an integer, got {raw!r} (from {source})"
            ) from None
        if parsed < minimum:
            raise ConfigurationError(
                f"{name} must be at least {minimum}, got {parsed} (from {source}){hint}"
            )
        return parsed

    return parse


def choice_of(name: str, choices: tuple) -> Callable:
    def parse(raw, source):
        value = str(raw).lower()
        if value not in choices:
            raise ConfigurationError(
                f"{name} must be one of {', '.join(choices)}, got {raw!r} (from {source})"
            )
        return value

    return parse


def _finite_float(raw, name: str, source: str, noun: str = "a number") -> float:
    try:
        parsed = float(raw)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be {noun}, got {raw!r} (from {source})"
        ) from None
    return parsed


def float_with(name: str, noun: str, check: Callable) -> Callable:
    """A float parser with a per-knob range ``check(parsed, source)``."""

    def parse(raw, source):
        parsed = _finite_float(raw, name, source, noun)
        return check(parsed, source)

    return parse


def _drain_deadline_check(parsed: float, source: str) -> float:
    if parsed != parsed or parsed in (float("inf"), float("-inf")):
        raise ConfigurationError(
            f"drain_deadline must be finite, got {parsed} (from {source})"
        )
    if parsed < 0:
        raise ConfigurationError(
            f"drain_deadline must be non-negative seconds, got {parsed} "
            f"(from {source}); use 0 to drain immediately"
        )
    return parsed


def _positive_finite_check(name: str, what: str) -> Callable:
    def check(parsed: float, source: str) -> float:
        if parsed != parsed or parsed in (float("inf"), float("-inf")):
            raise ConfigurationError(f"{name} must be finite, got {parsed} (from {source})")
        if parsed <= 0:
            raise ConfigurationError(f"{name} must be {what}, got {parsed} (from {source})")
        return parsed

    return check


def _positive_finite_seconds_check(name: str) -> Callable:
    """The combined wording used by ``refit_at`` and ``heartbeat_interval``."""

    def check(parsed: float, source: str) -> float:
        if parsed != parsed or parsed in (float("inf"), float("-inf")) or parsed <= 0:
            raise ConfigurationError(
                f"{name} must be positive finite seconds, got {parsed} (from {source})"
            )
        return parsed

    return check


def _retrieval_spec_parse(raw, source):
    spec = (str(raw) if raw is not None else "none").strip().lower() or "none"
    if spec not in RETRIEVAL_SPECS:
        raise ConfigurationError(
            f"unknown retrieval spec '{raw}'; known: {', '.join(RETRIEVAL_SPECS)}"
        )
    return spec


def _candidate_k_parse(raw, source):
    try:
        parsed = int(raw)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"--candidate-k must be an integer, got {raw!r}"
        ) from None
    return parsed


# --------------------------------------------------------------------- #
# The table.
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConfigField:
    """One knob: its group, parser, env hook, CLI flag and documentation."""

    name: str
    group: str
    default: Any
    parse: Callable
    help: str
    #: environment variable; derived ``REPRO_<NAME>`` unless overridden
    env: "str | None" = None
    #: CLI flag; derived ``--<name-with-dashes>`` unless overridden
    flag: "str | None" = None
    #: whether :func:`add_config_arguments` emits a flag for this knob
    cli: bool = True

    @property
    def env_var(self) -> str:
        return self.env if self.env is not None else "REPRO_" + self.name.upper()

    @property
    def flag_name(self) -> str:
        return self.flag if self.flag is not None else "--" + self.name.replace("_", "-")

    @property
    def dest(self) -> str:
        return self.flag_name.lstrip("-").replace("-", "_")


GROUP_TITLES = {
    "traffic": "traffic (repro.serve)",
    "sharding": "sharding (repro.shard)",
    "replication": "replication (repro.replica)",
    "transport": "transport (repro.distributed)",
    "retrieval": "retrieval (repro.retrieval)",
    "tenancy": "tenancy (repro.tenant)",
}

_TABLE = (
    # ------------------------------ traffic ------------------------------ #
    ConfigField(
        "arrival_rate",
        "traffic",
        100.0,
        float_with(
            "arrival_rate",
            "a number",
            _positive_finite_check("arrival_rate", "positive requests/second"),
        ),
        "serve-sim: mean Poisson arrivals/sec (default: $REPRO_ARRIVAL_RATE or 100)",
    ),
    ConfigField(
        "serve_duration",
        "traffic",
        2.0,
        float_with(
            "serve_duration",
            "a number",
            _positive_finite_check("serve_duration", "positive seconds"),
        ),
        "serve-sim: seconds of synthetic traffic (default: $REPRO_SERVE_DURATION or 2)",
        flag="--duration",
    ),
    ConfigField(
        "max_queue_depth",
        "traffic",
        64,
        int_at_least("max_queue_depth"),
        "serve-sim: per-shard request queue bound (default: $REPRO_MAX_QUEUE_DEPTH or 64)",
    ),
    ConfigField(
        "drain_deadline",
        "traffic",
        0.002,
        float_with("drain_deadline", "a number", _drain_deadline_check),
        "serve-sim: seconds a drain holds a queue open to widen the micro-batch "
        "(default: $REPRO_DRAIN_DEADLINE or 0.002)",
    ),
    ConfigField(
        "admission_policy",
        "traffic",
        "block",
        choice_of("admission_policy", VALID_ADMISSION_POLICIES),
        "serve-sim: block | reject on a full queue (default: $REPRO_ADMISSION_POLICY or block)",
    ),
    # ----------------------------- sharding ------------------------------ #
    ConfigField(
        "num_workers",
        "sharding",
        1,
        int_at_least("num_workers", hint="; use 1 to disable sharding"),
        "worker shards for planning/evaluation (default: $REPRO_NUM_WORKERS or 1)",
    ),
    ConfigField(
        "shard_backend",
        "sharding",
        None,  # dynamic: 'thread' when num_workers > 1, else 'serial'
        choice_of("shard_backend", VALID_BACKENDS),
        "serial | thread | process (default: $REPRO_SHARD_BACKEND, else "
        "'thread' when --num-workers > 1)",
    ),
    ConfigField(
        "vocab_shards",
        "sharding",
        1,
        int_at_least("vocab_shards", hint="; use 1 to disable sharding"),
        "column shards of the item axis for top-k (default: $REPRO_VOCAB_SHARDS or 1)",
    ),
    # ---------------------------- replication ---------------------------- #
    ConfigField(
        "num_replicas",
        "replication",
        1,
        int_at_least("num_replicas"),
        "serve-sim: backbone replicas behind the dispatcher (default: $REPRO_REPLICAS or 1)",
        env="REPRO_REPLICAS",
        flag="--replicas",
    ),
    ConfigField(
        "refit_at",
        "replication",
        None,
        float_with(
            "refit_at", "a number of seconds", _positive_finite_seconds_check("refit_at")
        ),
        "serve-sim: seconds into the trace to trigger a hot refit; must fall "
        "strictly inside --duration (default: $REPRO_REFIT_AT or no refit)",
    ),
    ConfigField(
        "dispatch_policy",
        "replication",
        "least_loaded",
        choice_of("dispatch_policy", VALID_DISPATCH_POLICIES),
        "serve-sim: least_loaded | round_robin replica routing "
        "(default: $REPRO_DISPATCH_POLICY or least_loaded)",
    ),
    # ----------------------------- transport ----------------------------- #
    ConfigField(
        "transport",
        "transport",
        "inproc",
        choice_of("transport", VALID_TRANSPORTS),
        "serve-sim: inproc | process replica transport; 'process' forks one "
        "worker per replica behind the binary wire protocol "
        "(default: $REPRO_TRANSPORT or inproc)",
    ),
    ConfigField(
        "heartbeat_interval",
        "transport",
        0.05,
        float_with(
            "heartbeat_interval",
            "a number of seconds",
            _positive_finite_seconds_check("heartbeat_interval"),
        ),
        "serve-sim: seconds between worker heartbeats under --transport "
        "process (default: $REPRO_HEARTBEAT_INTERVAL or 0.05)",
    ),
    ConfigField(
        "heartbeat_misses",
        "transport",
        5,
        int_at_least("heartbeat_misses"),
        "serve-sim: consecutive missed heartbeats before a worker is suspected "
        "(default: $REPRO_HEARTBEAT_MISSES or 5)",
    ),
    ConfigField(
        "probation_beats",
        "transport",
        3,
        int_at_least("probation_beats"),
        "serve-sim: heartbeats a suspected worker must deliver to rejoin "
        "dispatch (default: $REPRO_PROBATION_BEATS or 3)",
    ),
    # ----------------------------- retrieval ----------------------------- #
    ConfigField(
        "retrieval_spec",
        "retrieval",
        "none",
        _retrieval_spec_parse,
        "serve-sim: candidate-generation backend for two-stage retrieval "
        "(none | full | ann | cooccurrence; default: none = exact full-vocab "
        "scoring)",
        env="REPRO_RETRIEVAL",
        flag="--retrieval",
    ),
    ConfigField(
        "candidate_k",
        "retrieval",
        256,
        _candidate_k_parse,
        "serve-sim: candidate-set size per context for --retrieval "
        "(default: 256; requires --retrieval)",
        env="REPRO_CANDIDATE_K",
        flag="--candidate-k",
    ),
    # ------------------------------ tenancy ------------------------------ #
    ConfigField(
        "tenants",
        "tenancy",
        1,
        int_at_least("tenants"),
        "serve-sim: tenant bindings behind the serving fleet; 2 runs the "
        "two-tenant A/B harness over simulated cohorts "
        "(default: $REPRO_TENANTS or 1)",
    ),
    ConfigField(
        "cohort_sessions",
        "tenancy",
        24,
        int_at_least("cohort_sessions"),
        "serve-sim: simulated user sessions per tenant cohort in the A/B "
        "harness (default: $REPRO_COHORT_SESSIONS or 24)",
    ),
    ConfigField(
        "slo_p95",
        "tenancy",
        0.25,
        float_with(
            "slo_p95", "a number of seconds", _positive_finite_seconds_check("slo_p95")
        ),
        "serve-sim: per-tenant p95 latency SLO in seconds, graded in the "
        "A/B report (default: $REPRO_SLO_P95 or 0.25)",
    ),
)

CONFIG_FIELDS: "dict[str, ConfigField]" = {row.name: row for row in _TABLE}
CONFIG_GROUPS: "tuple[str, ...]" = tuple(GROUP_TITLES)


def fields_in_group(group: str) -> "tuple[ConfigField, ...]":
    return tuple(row for row in _TABLE if row.group == group)


def resolve(name: str, value: Any = None) -> Any:
    """Resolve one knob: explicit argument > ``$REPRO_*`` env > default."""
    row = CONFIG_FIELDS[name]
    if value is not None:
        return row.parse(value, "argument")
    env = os.environ.get(row.env_var)
    if env is not None and env != "":
        return row.parse(env, f"${row.env_var}")
    return row.default


def add_config_arguments(parser, groups: "tuple[str, ...]" = CONFIG_GROUPS) -> None:
    """Emit one argparse argument group per knob group, from the table.

    Flags are collected as raw strings (``default=None``) and validated by
    the ``resolve_*`` functions, so a mistyped value surfaces as a
    :class:`~repro.utils.exceptions.ConfigurationError` naming the source
    and the ``$REPRO_*`` environment defaults keep applying when a flag is
    omitted — exactly the behaviour of the historical flat flag list.
    """
    for group in groups:
        section = parser.add_argument_group(GROUP_TITLES[group])
        for row in fields_in_group(group):
            if row.cli:
                section.add_argument(row.flag_name, dest=row.dest, default=None, help=row.help)


# --------------------------------------------------------------------- #
# Typed resolvers.  One per row; the per-package config modules re-export
# these names so historical imports keep working.
# --------------------------------------------------------------------- #
def resolve_max_queue_depth(value: "int | None" = None) -> int:
    """Queue bound: explicit > ``REPRO_MAX_QUEUE_DEPTH`` > 64."""
    return resolve("max_queue_depth", value)


def resolve_admission_policy(value: "str | None" = None) -> str:
    """Back-pressure policy: explicit > ``REPRO_ADMISSION_POLICY`` > block."""
    return resolve("admission_policy", value)


def resolve_drain_deadline(value: "float | None" = None) -> float:
    """Micro-batch window: explicit > ``REPRO_DRAIN_DEADLINE`` > 0.002 s."""
    return resolve("drain_deadline", value)


def resolve_arrival_rate(value: "float | None" = None) -> float:
    """Poisson arrival rate: explicit > ``REPRO_ARRIVAL_RATE`` > 100 req/s."""
    return resolve("arrival_rate", value)


def resolve_serve_duration(value: "float | None" = None) -> float:
    """Simulated traffic duration: explicit > ``REPRO_SERVE_DURATION`` > 2 s."""
    return resolve("serve_duration", value)


def resolve_num_workers(value: "int | None" = None) -> int:
    """Worker count: explicit > ``REPRO_NUM_WORKERS`` > 1."""
    return resolve("num_workers", value)


def resolve_shard_backend_name(value: "str | None" = None, num_workers: int = 1) -> str:
    """Backend *name* resolution (the fork-availability check stays in
    :mod:`repro.shard.config`, whose ``fork_available`` tests monkeypatch)."""
    resolved = resolve("shard_backend", value)
    if resolved is None:
        return "thread" if num_workers > 1 else "serial"
    return resolved


def resolve_vocab_shards(value: "int | None" = None) -> int:
    """Vocabulary shard count: explicit > ``REPRO_VOCAB_SHARDS`` > 1."""
    return resolve("vocab_shards", value)


def resolve_num_replicas(value: "int | None" = None) -> int:
    """Replica count: explicit > ``REPRO_REPLICAS`` > 1."""
    return resolve("num_replicas", value)


def resolve_refit_at(value: "float | None" = None) -> "float | None":
    """Hot-refit trigger offset: explicit > ``REPRO_REFIT_AT`` > no refit."""
    return resolve("refit_at", value)


def resolve_dispatch_policy(value: "str | None" = None) -> str:
    """Routing policy: explicit > ``REPRO_DISPATCH_POLICY`` > least_loaded."""
    return resolve("dispatch_policy", value)


def resolve_transport(value: "str | None" = None) -> str:
    """Serving transport: explicit > ``REPRO_TRANSPORT`` > ``inproc``."""
    return resolve("transport", value)


def resolve_heartbeat_interval(value: "float | None" = None) -> float:
    """Heartbeat period: explicit > ``REPRO_HEARTBEAT_INTERVAL`` > 0.05 s."""
    return resolve("heartbeat_interval", value)


def resolve_heartbeat_misses(value: "int | None" = None) -> int:
    """Missed-heartbeat budget: explicit > ``REPRO_HEARTBEAT_MISSES`` > 5."""
    return resolve("heartbeat_misses", value)


def resolve_probation_beats(value: "int | None" = None) -> int:
    """Probation window: explicit > ``REPRO_PROBATION_BEATS`` > 3 beats."""
    return resolve("probation_beats", value)


def resolve_retrieval_spec(value: "str | None" = None) -> str:
    """Retrieval spec: explicit > ``REPRO_RETRIEVAL`` > ``none``.

    Historically ``None`` meant "no pruning", so an explicit ``None`` (and
    blank strings) normalise to ``none`` rather than falling through to the
    environment hook with a changed meaning for existing callers passing
    ``None`` literally — the env var only applies when no argument is given
    at a call site that opted into it via the CLI path.
    """
    if value is None:
        return "none"
    return resolve("retrieval_spec", value)


def resolve_candidate_k(value: "int | None" = None) -> int:
    """Shortlist size: explicit > ``REPRO_CANDIDATE_K`` > 256."""
    return resolve("candidate_k", value)


def resolve_tenants(value: "int | None" = None) -> int:
    """Tenant count: explicit > ``REPRO_TENANTS`` > 1."""
    return resolve("tenants", value)


def resolve_cohort_sessions(value: "int | None" = None) -> int:
    """A/B cohort size: explicit > ``REPRO_COHORT_SESSIONS`` > 24."""
    return resolve("cohort_sessions", value)


def resolve_slo_p95(value: "float | None" = None) -> float:
    """Per-tenant p95 latency SLO: explicit > ``REPRO_SLO_P95`` > 0.25 s."""
    return resolve("slo_p95", value)
