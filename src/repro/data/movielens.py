"""MovieLens-1M: real-file loader and synthetic stand-in.

The paper evaluates on MovieLens-1M (https://grouplens.org/datasets/movielens/1m).
:func:`load_movielens_1m` parses the original ``ratings.dat`` / ``movies.dat``
files when a local copy is available.  In the offline environment used for
this reproduction the files are absent, so :func:`synthetic_movielens`
generates a scaled-down corpus with the same structural properties (18 movie
genres, long sessions, dense interactions) via :mod:`repro.data.synthetic`.
"""

from __future__ import annotations

import os

from repro.data.interactions import Interaction, InteractionDataset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.utils.exceptions import DataError

__all__ = ["MOVIELENS_GENRES", "load_movielens_1m", "synthetic_movielens"]

#: The 18 genres of MovieLens-1M.
MOVIELENS_GENRES = [
    "Action",
    "Adventure",
    "Animation",
    "Children's",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "Film-Noir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "Sci-Fi",
    "Thriller",
    "War",
    "Western",
]


def load_movielens_1m(directory: str) -> InteractionDataset:
    """Parse an original MovieLens-1M dump from ``directory``.

    Expects ``ratings.dat`` (``UserID::MovieID::Rating::Timestamp``) and,
    optionally, ``movies.dat`` (``MovieID::Title::Genre|Genre``) for genre
    metadata.  All ratings are treated as positive feedback, as in the paper.
    """
    ratings_path = os.path.join(directory, "ratings.dat")
    if not os.path.exists(ratings_path):
        raise DataError(f"ratings.dat not found under {directory!r}")

    interactions: list[Interaction] = []
    with open(ratings_path, "r", encoding="latin-1") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split("::")
            if len(parts) != 4:
                raise DataError(f"malformed ratings.dat line {line_number}: {line!r}")
            user, item, rating, timestamp = parts
            interactions.append(
                Interaction(
                    user=f"u{user}",
                    item=f"m{item}",
                    timestamp=float(timestamp),
                    rating=float(rating),
                )
            )

    item_genres: dict[str, tuple[str, ...]] = {}
    movies_path = os.path.join(directory, "movies.dat")
    if os.path.exists(movies_path):
        with open(movies_path, "r", encoding="latin-1") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                parts = line.split("::")
                if len(parts) < 3:
                    continue
                item_genres[f"m{parts[0]}"] = tuple(parts[2].split("|"))

    return InteractionDataset(
        name="movielens-1m", interactions=interactions, item_genres=item_genres
    )


def synthetic_movielens(scale: float = 1.0, seed: int = 0) -> InteractionDataset:
    """Return a MovieLens-1M-flavoured synthetic corpus.

    The base configuration (``scale=1.0``) is a few-hundred-user corpus whose
    *relative* statistics match Table I of the paper: dense interactions
    (several percent), long per-user histories (~10x the Lastfm average) and
    18 genres.  ``scale`` multiplies the user and item counts.
    """
    if scale <= 0:
        raise DataError(f"scale must be positive, got {scale}")
    config = SyntheticConfig(
        name="movielens-1m-synthetic",
        num_users=max(8, int(round(200 * scale))),
        num_items=max(20, int(round(300 * scale))),
        num_genres=len(MOVIELENS_GENRES),
        genre_names=list(MOVIELENS_GENRES),
        min_sequence_length=40,
        max_sequence_length=90,
        genre_stay_probability=0.62,
        genre_adjacency_decay=0.45,
        home_return_probability=0.5,
        popularity_exponent=1.1,
        multi_genre_probability=0.35,
        seed=seed,
    )
    return generate_synthetic_dataset(config)
