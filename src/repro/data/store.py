"""Chunked, memory-mapped interaction storage for scale-tier corpora.

:class:`SequenceCorpus` materialises every sequence as a Python list —
fine at ``V = 217``, hopeless at ``V = 10**6``.  :class:`InteractionStore`
keeps the event log in two flat files under one directory:

* ``items.bin`` — every user's items back to back (``int32`` memmap)
* ``indptr.bin`` — per-user offsets into ``items.bin`` (``int64``,
  ``num_users + 1`` entries)
* ``meta.json`` — name, vocab size, dtype, counts

Sequences are written from any (possibly generator-backed) iterable in
bounded chunks, so a corpus far larger than RAM is buildable; reads are
zero-copy memmap slices.  :meth:`InteractionStore.as_corpus` exposes the
store through the corpus duck type (``vocab.size`` + ``user_sequences``)
that the embedding fitters and candidate generators consume, with a
dict-free :class:`~repro.data.vocab.RangeVocabulary`.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.vocab import RangeVocabulary
from repro.utils.exceptions import DataError

__all__ = ["InteractionStore", "StoredCorpus"]

_ITEMS_FILE = "items.bin"
_INDPTR_FILE = "indptr.bin"
_META_FILE = "meta.json"

# Events buffered in memory before flushing to disk during a write.
_WRITE_CHUNK_EVENTS = 1 << 20


class InteractionStore:
    """A directory-backed, memory-mapped per-user event log."""

    def __init__(
        self,
        path: str,
        items: np.ndarray,
        indptr: np.ndarray,
        vocab_size: int,
        name: str,
    ) -> None:
        self.path = path
        self._items = items
        self._indptr = indptr
        self._vocab_size = int(vocab_size)
        self.name = name

    # -- construction ------------------------------------------------------

    @classmethod
    def write(
        cls,
        path: str,
        sequences: "Iterable[Sequence[int] | np.ndarray]",
        vocab_size: int,
        name: str = "interactions",
        dtype: np.dtype = np.int32,
    ) -> "InteractionStore":
        """Stream ``sequences`` into a new store directory and open it.

        Items must lie in ``[1, vocab_size)``; validation is vectorised per
        flush chunk so generator inputs never materialise in full.
        """
        if vocab_size < 2:
            raise DataError(f"vocab_size must be >= 2, got {vocab_size}")
        os.makedirs(path, exist_ok=True)
        indptr: "list[int]" = [0]
        buffered: "list[np.ndarray]" = []
        buffered_events = 0
        total = 0
        with open(os.path.join(path, _ITEMS_FILE), "wb") as handle:

            def flush() -> None:
                nonlocal buffered, buffered_events
                if not buffered:
                    return
                chunk = np.concatenate(buffered).astype(dtype, copy=False)
                if chunk.size and (chunk.min() < 1 or chunk.max() >= vocab_size):
                    raise DataError(
                        f"store '{name}': items must be in [1, {vocab_size})"
                    )
                handle.write(chunk.tobytes())
                buffered, buffered_events = [], 0

            for sequence in sequences:
                array = np.asarray(sequence, dtype=np.int64)
                if array.ndim != 1:
                    raise DataError("each sequence must be one-dimensional")
                total += int(array.size)
                indptr.append(total)
                if array.size:
                    buffered.append(array)
                    buffered_events += int(array.size)
                if buffered_events >= _WRITE_CHUNK_EVENTS:
                    flush()
            flush()
        np.asarray(indptr, dtype=np.int64).tofile(os.path.join(path, _INDPTR_FILE))
        meta = {
            "name": name,
            "vocab_size": int(vocab_size),
            "num_users": len(indptr) - 1,
            "num_events": total,
            "dtype": np.dtype(dtype).name,
        }
        with open(os.path.join(path, _META_FILE), "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2)
        return cls.open(path)

    @classmethod
    def open(cls, path: str) -> "InteractionStore":
        meta_path = os.path.join(path, _META_FILE)
        if not os.path.exists(meta_path):
            raise DataError(f"no interaction store at '{path}'")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        indptr = np.fromfile(os.path.join(path, _INDPTR_FILE), dtype=np.int64)
        if indptr.size != meta["num_users"] + 1:
            raise DataError(f"store '{path}': indptr length mismatch")
        dtype = np.dtype(meta["dtype"])
        items_path = os.path.join(path, _ITEMS_FILE)
        if meta["num_events"]:
            items = np.memmap(items_path, dtype=dtype, mode="r", shape=(meta["num_events"],))
        else:
            items = np.empty(0, dtype=dtype)
        return cls(
            path=path,
            items=items,
            indptr=indptr,
            vocab_size=meta["vocab_size"],
            name=meta["name"],
        )

    # -- reads -------------------------------------------------------------

    @property
    def vocab_size(self) -> int:
        return self._vocab_size

    @property
    def num_users(self) -> int:
        return self._indptr.size - 1

    @property
    def num_events(self) -> int:
        return int(self._indptr[-1])

    def sequence(self, user_position: int) -> np.ndarray:
        """Zero-copy memmap view of one user's item sequence."""
        if not 0 <= user_position < self.num_users:
            raise DataError(
                f"user position {user_position} out of range ({self.num_users} users)"
            )
        lo, hi = self._indptr[user_position], self._indptr[user_position + 1]
        return self._items[lo:hi]

    def iter_sequences(self) -> "Iterator[np.ndarray]":
        for position in range(self.num_users):
            yield self.sequence(position)

    def item_popularity(self) -> np.ndarray:
        """Interaction counts per item index, computed in bounded chunks."""
        counts = np.zeros(self._vocab_size, dtype=np.int64)
        items = self._items
        for start in range(0, items.size, _WRITE_CHUNK_EVENTS):
            chunk = np.asarray(items[start : start + _WRITE_CHUNK_EVENTS])
            counts += np.bincount(chunk, minlength=self._vocab_size)
        return counts

    def as_corpus(self) -> "StoredCorpus":
        return StoredCorpus(self)


class _SequenceView:
    """Lazy list-like over a store's per-user memmap slices."""

    __slots__ = ("_store",)

    def __init__(self, store: InteractionStore) -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.num_users

    def __getitem__(self, position: int) -> np.ndarray:
        return self._store.sequence(position)

    def __iter__(self) -> "Iterator[np.ndarray]":
        return self._store.iter_sequences()


class StoredCorpus:
    """Corpus facade over an :class:`InteractionStore`.

    Quacks like :class:`~repro.data.interactions.SequenceCorpus` for the
    consumers that only need ``vocab.size``, ``user_sequences``,
    ``user_ids`` and ``item_popularity`` — embedding fitters, candidate
    generators and the scale bench — without materialising anything.
    """

    def __init__(self, store: InteractionStore) -> None:
        self.store = store
        self.name = store.name
        self.vocab = RangeVocabulary(store.vocab_size - 1)
        self.user_sequences = _SequenceView(store)

    @property
    def user_ids(self) -> range:
        return range(self.store.num_users)

    @property
    def num_users(self) -> int:
        return self.store.num_users

    def item_popularity(self) -> np.ndarray:
        return self.store.item_popularity()
