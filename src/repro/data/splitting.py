"""Dataset splitting into training sub-sequences and test instances (§IV-A2).

For each user with full history ``{i_1, ..., i_q}``:

* the last item ``i_q`` is held out as the next-item test label;
* the remaining prefix is cut into continuous, non-overlapping sub-sequences
  whose lengths are drawn uniformly from ``[l_min, l_max]``; the last item of
  every sub-sequence acts as the training objective ``i_t`` for IRN;
* a fraction of the training sub-sequences is reserved for validation;
* the next-item / IRS test instance for the user is the pair
  ``(history = {i_1..i_{q-1}}, target = i_q)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng

__all__ = ["UserSequence", "TestInstance", "DatasetSplit", "split_corpus", "cut_subsequences"]


@dataclass(frozen=True)
class UserSequence:
    """A training (or validation) sub-sequence owned by one user.

    The last element of ``items`` is used as the objective item ``i_t``
    during IRN training.
    """

    user_index: int
    items: tuple[int, ...]

    @property
    def objective(self) -> int:
        """The objective item (last element of the sub-sequence)."""
        return self.items[-1]

    def __len__(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class TestInstance:
    """A held-out evaluation instance for one user."""

    #: tell pytest this is a data container, not a test class
    __test__ = False

    user_index: int
    history: tuple[int, ...]
    target: int


@dataclass
class DatasetSplit:
    """The full train / validation / test split of a corpus."""

    corpus: SequenceCorpus
    train: list[UserSequence]
    validation: list[UserSequence]
    test: list[TestInstance]
    l_min: int
    l_max: int

    def summary(self) -> dict[str, int]:
        """Return split sizes (useful for logging and sanity checks)."""
        return {
            "train_sequences": len(self.train),
            "validation_sequences": len(self.validation),
            "test_instances": len(self.test),
        }


def cut_subsequences(
    items: list[int], l_min: int, l_max: int, rng: np.random.Generator
) -> list[list[int]]:
    """Cut ``items`` into continuous, non-overlapping pieces of length in [l_min, l_max].

    Short histories (fewer than ``l_min`` items) yield a single piece as-is;
    padding to ``l_min`` happens later at batch time, as in the paper.  A
    final fragment shorter than ``l_min`` is merged into the previous piece.
    """
    if l_min <= 1 or l_max < l_min:
        raise ConfigurationError(f"invalid sub-sequence lengths l_min={l_min}, l_max={l_max}")
    if len(items) <= l_min:
        return [list(items)]
    pieces: list[list[int]] = []
    start = 0
    n = len(items)
    while start < n:
        length = int(rng.integers(l_min, l_max + 1))
        end = min(start + length, n)
        piece = items[start:end]
        if len(piece) < l_min and pieces:
            pieces[-1].extend(piece)
        else:
            pieces.append(piece)
        start = end
    return pieces


def split_corpus(
    corpus: SequenceCorpus,
    l_min: int = 20,
    l_max: int = 50,
    validation_fraction: float = 0.1,
    seed: "int | np.random.Generator | None" = 0,
) -> DatasetSplit:
    """Split ``corpus`` into train / validation sub-sequences and test instances."""
    if not 0.0 <= validation_fraction < 1.0:
        raise ConfigurationError(
            f"validation_fraction must be in [0, 1), got {validation_fraction}"
        )
    rng = as_rng(seed)
    sequences: list[UserSequence] = []
    test: list[TestInstance] = []

    for user_index, items in enumerate(corpus.user_sequences):
        if len(items) < 3:
            # Not enough history to both train and evaluate; keep for training only.
            sequences.append(UserSequence(user_index, tuple(items)))
            continue
        history, target = items[:-1], items[-1]
        test.append(TestInstance(user_index=user_index, history=tuple(history), target=target))
        for piece in cut_subsequences(list(history), l_min, l_max, rng):
            if len(piece) >= 2:
                sequences.append(UserSequence(user_index, tuple(piece)))

    if not sequences:
        raise ConfigurationError("splitting produced no training sequences")

    order = rng.permutation(len(sequences))
    num_validation = int(round(validation_fraction * len(sequences)))
    validation_idx = set(order[:num_validation].tolist())
    train = [seq for i, seq in enumerate(sequences) if i not in validation_idx]
    validation = [seq for i, seq in enumerate(sequences) if i in validation_idx]
    if not train:
        train, validation = validation, []

    return DatasetSplit(
        corpus=corpus,
        train=train,
        validation=validation,
        test=test,
        l_min=l_min,
        l_max=l_max,
    )
