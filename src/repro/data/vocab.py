"""Item vocabulary mapping raw item identifiers to contiguous indices.

Index ``0`` is reserved for the padding token (:data:`PAD_INDEX` in
:mod:`repro.data.padding`); real items occupy ``1 .. num_items``.  Models that
need extra special tokens (e.g. the ``[MASK]`` token of BERT4Rec) allocate
them *above* ``size`` so the vocabulary itself stays model-agnostic.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.utils.exceptions import DataError

__all__ = ["Vocabulary", "RangeVocabulary", "PAD_TOKEN"]

PAD_TOKEN = "<pad>"


class Vocabulary:
    """Bidirectional mapping between raw item ids and contiguous indices."""

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._item_to_index: dict[Hashable, int] = {PAD_TOKEN: 0}
        self._index_to_item: list[Hashable] = [PAD_TOKEN]
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> int:
        """Add ``item`` if unseen and return its index."""
        if item == PAD_TOKEN:
            raise DataError(f"'{PAD_TOKEN}' is reserved for padding")
        index = self._item_to_index.get(item)
        if index is None:
            index = len(self._index_to_item)
            self._item_to_index[item] = index
            self._index_to_item.append(item)
        return index

    def index(self, item: Hashable) -> int:
        """Return the index of ``item`` (raises :class:`DataError` if unknown)."""
        try:
            return self._item_to_index[item]
        except KeyError as exc:
            raise DataError(f"unknown item {item!r}") from exc

    def item(self, index: int) -> Hashable:
        """Return the raw item id stored at ``index``."""
        if not 0 <= index < len(self._index_to_item):
            raise DataError(f"index {index} out of range (size {self.size})")
        return self._index_to_item[index]

    def encode(self, items: Iterable[Hashable]) -> list[int]:
        """Map raw item ids to indices."""
        return [self.index(item) for item in items]

    def decode(self, indices: Iterable[int]) -> list[Hashable]:
        """Map indices back to raw item ids."""
        return [self.item(index) for index in indices]

    def __contains__(self, item: Hashable) -> bool:
        return item in self._item_to_index

    def __len__(self) -> int:
        return len(self._index_to_item)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._index_to_item)

    @property
    def size(self) -> int:
        """Total number of indices, including the padding slot at 0."""
        return len(self._index_to_item)

    @property
    def num_items(self) -> int:
        """Number of real items (excluding the padding slot)."""
        return len(self._index_to_item) - 1

    def item_indices(self) -> range:
        """Indices of real items (``1 .. size-1``)."""
        return range(1, self.size)


class RangeVocabulary:
    """A dict-free vocabulary whose raw ids *are* the indices ``1..num_items``.

    Million-item corpora cannot afford :class:`Vocabulary`'s per-item dict
    and list (hundreds of MB at ``V = 10**6``); synthetic scale corpora and
    the memory-mapped :class:`repro.data.store.InteractionStore` already
    speak contiguous integer ids, so the mapping is the identity.  Index
    ``0`` stays the padding slot, exactly as in :class:`Vocabulary`.
    """

    __slots__ = ("_num_items",)

    def __init__(self, num_items: int) -> None:
        if num_items < 0:
            raise DataError(f"num_items must be >= 0, got {num_items}")
        self._num_items = int(num_items)

    def add(self, item: Hashable) -> int:
        raise DataError("RangeVocabulary is fixed-size; items cannot be added")

    def index(self, item: Hashable) -> int:
        if not isinstance(item, (int, np.integer)) or not 1 <= int(item) <= self._num_items:
            raise DataError(f"unknown item {item!r}")
        return int(item)

    def item(self, index: int) -> Hashable:
        if index == 0:
            return PAD_TOKEN
        if not 1 <= index <= self._num_items:
            raise DataError(f"index {index} out of range (size {self.size})")
        return int(index)

    def encode(self, items: Iterable[Hashable]) -> list[int]:
        return [self.index(item) for item in items]

    def decode(self, indices: Iterable[int]) -> list[Hashable]:
        return [self.item(index) for index in indices]

    def __contains__(self, item: Hashable) -> bool:
        return isinstance(item, (int, np.integer)) and 1 <= int(item) <= self._num_items

    def __len__(self) -> int:
        return self._num_items + 1

    def __iter__(self) -> Iterator[Hashable]:
        yield PAD_TOKEN
        yield from range(1, self._num_items + 1)

    @property
    def size(self) -> int:
        return self._num_items + 1

    @property
    def num_items(self) -> int:
        return self._num_items

    def item_indices(self) -> range:
        return range(1, self.size)
