"""Datasets and preprocessing for the IRS reproduction.

The data flow mirrors §IV-A of the paper:

1. Raw interactions (user, item, timestamp) are loaded from disk
   (:mod:`~repro.data.movielens`, :mod:`~repro.data.lastfm`) or generated
   synthetically (:mod:`~repro.data.synthetic`) as an
   :class:`~repro.data.interactions.InteractionDataset`.
2. :func:`~repro.data.preprocessing.build_corpus` groups interactions into
   per-user chronological sequences, merges consecutive duplicates, filters
   rare users/items and produces a :class:`~repro.data.interactions.SequenceCorpus`.
3. :func:`~repro.data.splitting.split_corpus` carves the corpus into training
   sub-sequences (length between ``l_min`` and ``l_max``), a validation set
   and a next-item / IRS test set.
4. :mod:`~repro.data.padding` and :mod:`~repro.data.batching` turn variable
   length sequences into padded mini-batches (pre-padding, §III-D5).
"""

from repro.data.batching import iterate_batches, sequences_to_batch
from repro.data.interactions import (
    DatasetStatistics,
    Interaction,
    InteractionDataset,
    SequenceCorpus,
)
from repro.data.lastfm import load_lastfm, synthetic_lastfm
from repro.data.movielens import load_movielens_1m, synthetic_movielens
from repro.data.padding import PAD_INDEX, pad_sequence, pre_pad, post_pad
from repro.data.preprocessing import build_corpus
from repro.data.splitting import DatasetSplit, TestInstance, UserSequence, split_corpus
from repro.data.store import InteractionStore, StoredCorpus
from repro.data.streaming import (
    StreamingSyntheticConfig,
    build_streaming_store,
    iter_streaming_sequences,
)
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.data.vocab import RangeVocabulary, Vocabulary

__all__ = [
    "DatasetSplit",
    "DatasetStatistics",
    "Interaction",
    "InteractionDataset",
    "InteractionStore",
    "PAD_INDEX",
    "RangeVocabulary",
    "SequenceCorpus",
    "StoredCorpus",
    "StreamingSyntheticConfig",
    "SyntheticConfig",
    "TestInstance",
    "UserSequence",
    "Vocabulary",
    "build_corpus",
    "build_streaming_store",
    "generate_synthetic_dataset",
    "iter_streaming_sequences",
    "iterate_batches",
    "load_lastfm",
    "load_movielens_1m",
    "pad_sequence",
    "post_pad",
    "pre_pad",
    "sequences_to_batch",
    "split_corpus",
    "synthetic_lastfm",
    "synthetic_movielens",
]
