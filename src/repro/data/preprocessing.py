"""Preprocessing of raw interaction logs into sequence corpora (§IV-A1).

Following the paper:

* every numeric rating / tagging event counts as positive feedback;
* interactions are grouped by user and ordered by timestamp;
* (Lastfm) consecutive repetitions of the same user-item pair are merged;
* users and items with fewer than ``min_interactions`` events are removed
  (applied iteratively until stable, the common "5-core"-style filter).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable

import numpy as np

from repro.data.interactions import InteractionDataset, SequenceCorpus
from repro.data.vocab import Vocabulary
from repro.utils.exceptions import DataError
from repro.utils.logging import get_logger

__all__ = ["build_corpus", "group_by_user", "merge_consecutive_duplicates", "filter_min_interactions"]

_LOGGER = get_logger("data.preprocessing")


def group_by_user(dataset: InteractionDataset) -> dict[Hashable, list[tuple[float, Hashable]]]:
    """Group interactions per user as time-sorted ``(timestamp, item)`` lists."""
    grouped: dict[Hashable, list[tuple[float, Hashable]]] = defaultdict(list)
    for interaction in dataset.interactions:
        grouped[interaction.user].append((interaction.timestamp, interaction.item))
    for user, events in grouped.items():
        events.sort(key=lambda pair: pair[0])
    return dict(grouped)


def merge_consecutive_duplicates(items: list[Hashable]) -> list[Hashable]:
    """Collapse runs of the same item into a single interaction."""
    merged: list[Hashable] = []
    for item in items:
        if not merged or merged[-1] != item:
            merged.append(item)
    return merged


def filter_min_interactions(
    user_items: dict[Hashable, list[Hashable]], min_interactions: int
) -> dict[Hashable, list[Hashable]]:
    """Iteratively drop users and items with fewer than ``min_interactions`` events."""
    if min_interactions <= 0:
        return dict(user_items)
    current = {user: list(items) for user, items in user_items.items()}
    while True:
        item_counts: Counter = Counter()
        for items in current.values():
            item_counts.update(items)
        valid_items = {item for item, count in item_counts.items() if count >= min_interactions}
        filtered = {
            user: [item for item in items if item in valid_items]
            for user, items in current.items()
        }
        filtered = {
            user: items for user, items in filtered.items() if len(items) >= min_interactions
        }
        if filtered == current:
            return filtered
        if not filtered:
            raise DataError(
                "filtering removed every interaction; lower min_interactions"
            )
        current = filtered


def build_corpus(
    dataset: InteractionDataset,
    min_interactions: int = 5,
    merge_consecutive: bool = False,
) -> SequenceCorpus:
    """Preprocess ``dataset`` into a :class:`SequenceCorpus`.

    Parameters
    ----------
    dataset:
        Raw interaction log (with optional genre metadata).
    min_interactions:
        The "filter out users and items with less than 5 interactions" rule
        of the paper.
    merge_consecutive:
        Merge consecutive repetitions of the same item (used for Lastfm).
    """
    grouped = group_by_user(dataset)
    user_items: dict[Hashable, list[Hashable]] = {}
    for user, events in grouped.items():
        items = [item for _, item in events]
        if merge_consecutive:
            items = merge_consecutive_duplicates(items)
        user_items[user] = items

    user_items = filter_min_interactions(user_items, min_interactions)
    if not user_items:
        raise DataError("no users left after preprocessing")

    vocab = Vocabulary()
    # Deterministic item numbering: add in order of first appearance over a
    # deterministic user order.
    ordered_users = sorted(user_items, key=lambda u: str(u))
    for user in ordered_users:
        for item in user_items[user]:
            vocab.add(item)

    user_ids: list[Hashable] = []
    user_sequences: list[list[int]] = []
    for user in ordered_users:
        user_ids.append(user)
        user_sequences.append(vocab.encode(user_items[user]))

    genre_names: list[str] | None = None
    genre_matrix: np.ndarray | None = None
    if dataset.item_genres:
        all_genres = sorted({g for genres in dataset.item_genres.values() for g in genres})
        genre_names = all_genres
        genre_matrix = np.zeros((vocab.size, len(all_genres)), dtype=bool)
        genre_index = {name: i for i, name in enumerate(all_genres)}
        for item_index in vocab.item_indices():
            raw = vocab.item(item_index)
            for genre in dataset.item_genres.get(raw, ()):
                genre_matrix[item_index, genre_index[genre]] = True

    user_traits = None
    if dataset.user_traits:
        user_traits = np.array(
            [dataset.user_traits.get(user, np.nan) for user in ordered_users], dtype=np.float64
        )

    corpus = SequenceCorpus(
        name=dataset.name,
        vocab=vocab,
        user_ids=user_ids,
        user_sequences=user_sequences,
        genre_names=genre_names,
        item_genre_matrix=genre_matrix,
        user_traits=user_traits,
    )
    stats = corpus.statistics()
    _LOGGER.info(
        "built corpus '%s': %d users, %d items, %d interactions (density %.2f%%)",
        corpus.name,
        stats.num_users,
        stats.num_items,
        stats.num_interactions,
        100.0 * stats.density,
    )
    return corpus
