"""Sequence padding (pre- and post-padding, §III-D5 of the paper).

IRN uses *pre-padding* so the objective item always occupies the final
position of the fixed-length window; the conventional baselines use
post-padding.  Both schemes are provided and unit/property tested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.exceptions import DataError

__all__ = ["PAD_INDEX", "pre_pad", "post_pad", "pad_sequence", "pad_batch"]

#: Index of the padding token in every vocabulary built by this package.
PAD_INDEX = 0


def pre_pad(sequence: Sequence[int], length: int, pad_value: int = PAD_INDEX) -> list[int]:
    """Left-pad (or left-truncate) ``sequence`` to exactly ``length`` items.

    When the sequence is longer than ``length`` the *oldest* items are
    dropped, keeping the most recent ones (and therefore the objective item
    at the final position).
    """
    if length <= 0:
        raise DataError(f"target length must be positive, got {length}")
    sequence = list(sequence)
    if len(sequence) >= length:
        return sequence[-length:]
    return [pad_value] * (length - len(sequence)) + sequence


def post_pad(sequence: Sequence[int], length: int, pad_value: int = PAD_INDEX) -> list[int]:
    """Right-pad (or right-truncate to the first items) to exactly ``length``."""
    if length <= 0:
        raise DataError(f"target length must be positive, got {length}")
    sequence = list(sequence)
    if len(sequence) >= length:
        return sequence[:length]
    return sequence + [pad_value] * (length - len(sequence))


def pad_sequence(
    sequence: Sequence[int],
    length: int,
    scheme: str = "pre",
    pad_value: int = PAD_INDEX,
) -> list[int]:
    """Pad with the named scheme (``"pre"`` or ``"post"``)."""
    if scheme == "pre":
        return pre_pad(sequence, length, pad_value)
    if scheme == "post":
        return post_pad(sequence, length, pad_value)
    raise DataError(f"unknown padding scheme '{scheme}'")


def pad_batch(
    sequences: Sequence[Sequence[int]],
    length: int | None = None,
    scheme: str = "pre",
    pad_value: int = PAD_INDEX,
) -> np.ndarray:
    """Pad a batch of sequences into an ``(batch, length)`` int64 array.

    ``length`` defaults to the longest sequence in the batch.
    """
    if not sequences:
        raise DataError("cannot pad an empty batch")
    if length is None:
        length = max(len(seq) for seq in sequences)
    rows = [pad_sequence(seq, length, scheme=scheme, pad_value=pad_value) for seq in sequences]
    return np.asarray(rows, dtype=np.int64)
