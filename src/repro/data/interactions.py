"""Core dataset containers: raw interactions and preprocessed sequence corpora."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from repro.data.vocab import Vocabulary
from repro.utils.exceptions import DataError

__all__ = ["Interaction", "InteractionDataset", "SequenceCorpus", "DatasetStatistics"]


@dataclass(frozen=True)
class Interaction:
    """A single (user, item, timestamp) event with an optional rating."""

    user: Hashable
    item: Hashable
    timestamp: float
    rating: float | None = None


@dataclass
class InteractionDataset:
    """A raw interaction log plus optional item metadata (genres).

    ``item_genres`` maps raw item ids to a tuple of genre names; it is used
    by the Rec2Inf genre-distance option and the Table VII case study.
    """

    name: str
    interactions: list[Interaction]
    item_genres: dict[Hashable, tuple[str, ...]] = field(default_factory=dict)
    user_traits: dict[Hashable, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.interactions:
            raise DataError(f"dataset '{self.name}' has no interactions")

    def __len__(self) -> int:
        return len(self.interactions)

    @property
    def users(self) -> list[Hashable]:
        """Distinct user ids in first-appearance order."""
        seen: dict[Hashable, None] = {}
        for interaction in self.interactions:
            seen.setdefault(interaction.user, None)
        return list(seen)

    @property
    def items(self) -> list[Hashable]:
        """Distinct item ids in first-appearance order."""
        seen: dict[Hashable, None] = {}
        for interaction in self.interactions:
            seen.setdefault(interaction.item, None)
        return list(seen)


@dataclass(frozen=True)
class DatasetStatistics:
    """The per-dataset statistics reported in Table I of the paper."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    density: float
    avg_items_per_user: float

    def as_row(self) -> dict[str, float | int | str]:
        """Return the statistics as a flat dict (one Table I row)."""
        return {
            "dataset": self.name,
            "users": self.num_users,
            "items": self.num_items,
            "interactions": self.num_interactions,
            "density": round(self.density, 4),
            "avg_items_per_user": round(self.avg_items_per_user, 1),
        }


class SequenceCorpus:
    """Preprocessed per-user chronological item sequences.

    Attributes
    ----------
    name:
        Dataset name (``"movielens-1m"``, ``"lastfm"``, ...).
    vocab:
        Item vocabulary; item indices start at 1, index 0 is padding.
    user_ids:
        Raw user ids; position in this list is the user index used everywhere
        downstream (user embeddings, test instances, ...).
    user_sequences:
        ``user_sequences[u]`` is the full, time-ordered list of item indices
        for user index ``u``.
    genre_names / item_genre_matrix:
        Optional genre metadata: a boolean matrix of shape
        ``(vocab.size, num_genres)`` where row 0 (padding) is all False.
    user_traits:
        Optional ground-truth per-user impressionability (only available for
        synthetic corpora; used in analysis, never in training).
    """

    def __init__(
        self,
        name: str,
        vocab: Vocabulary,
        user_ids: list[Hashable],
        user_sequences: list[list[int]],
        genre_names: list[str] | None = None,
        item_genre_matrix: np.ndarray | None = None,
        user_traits: np.ndarray | None = None,
    ) -> None:
        if len(user_ids) != len(user_sequences):
            raise DataError("user_ids and user_sequences must have the same length")
        for sequence in user_sequences:
            if not sequence:
                raise DataError("empty user sequence in corpus")
            for item in sequence:
                if not 1 <= item < vocab.size:
                    raise DataError(f"item index {item} outside vocabulary")
        self.name = name
        self.vocab = vocab
        self.user_ids = list(user_ids)
        self.user_sequences = [list(seq) for seq in user_sequences]
        self.genre_names = list(genre_names) if genre_names else []
        if item_genre_matrix is not None:
            item_genre_matrix = np.asarray(item_genre_matrix, dtype=bool)
            if item_genre_matrix.shape[0] != vocab.size:
                raise DataError(
                    "item_genre_matrix must have one row per vocabulary index"
                )
        self.item_genre_matrix = item_genre_matrix
        self.user_traits = user_traits

    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        return len(self.user_ids)

    @property
    def num_items(self) -> int:
        return self.vocab.num_items

    def item_popularity(self) -> np.ndarray:
        """Return occurrence counts per item index (index 0 stays 0)."""
        counts = np.zeros(self.vocab.size, dtype=np.int64)
        for sequence in self.user_sequences:
            for item in sequence:
                counts[item] += 1
        return counts

    def item_genres(self, item_index: int) -> tuple[str, ...]:
        """Return genre names of an item index (empty if no metadata)."""
        if self.item_genre_matrix is None or not self.genre_names:
            return ()
        row = self.item_genre_matrix[item_index]
        return tuple(name for name, flag in zip(self.genre_names, row) if flag)

    def statistics(self) -> DatasetStatistics:
        """Compute the Table I statistics for this corpus."""
        num_interactions = sum(len(seq) for seq in self.user_sequences)
        num_users = self.num_users
        num_items = self.num_items
        density = num_interactions / (num_users * num_items) if num_users and num_items else 0.0
        avg_items = num_interactions / num_users if num_users else 0.0
        return DatasetStatistics(
            name=self.name,
            num_users=num_users,
            num_items=num_items,
            num_interactions=num_interactions,
            density=density,
            avg_items_per_user=avg_items,
        )

    def subset_users(self, user_indices: Iterable[int]) -> "SequenceCorpus":
        """Return a corpus restricted to the given user indices (same vocab)."""
        indices = list(user_indices)
        return SequenceCorpus(
            name=self.name,
            vocab=self.vocab,
            user_ids=[self.user_ids[u] for u in indices],
            user_sequences=[self.user_sequences[u] for u in indices],
            genre_names=self.genre_names or None,
            item_genre_matrix=self.item_genre_matrix,
            user_traits=(
                self.user_traits[indices] if self.user_traits is not None else None
            ),
        )
