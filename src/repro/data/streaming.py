"""Streaming synthetic corpora for the scale bench tiers.

:func:`repro.data.synthetic.generate_synthetic_dataset` builds one Python
:class:`Interaction` object per event — pleasant at 10^4 events, unusable at
10^7.  The streaming generator here draws whole *user chunks* of events with
vectorised numpy and never holds more than one chunk in memory, so a
10^6-item corpus streams straight into a memory-mapped
:class:`~repro.data.store.InteractionStore`.

The generative model mirrors the spirit of the eager synthetic dataset:
items are partitioned into genres (contiguous index blocks), each user has
a home genre and walks a genre ring with a configurable switch probability,
and within-genre item choice follows a Zipf popularity law.  Everything is
driven by one seeded :class:`numpy.random.Generator`, so a given config
always produces the same corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.store import InteractionStore
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "StreamingSyntheticConfig",
    "iter_streaming_sequences",
    "build_streaming_store",
]


@dataclass(frozen=True)
class StreamingSyntheticConfig:
    """Knobs for the vectorised streaming synthetic corpus."""

    num_items: int = 100_000
    num_users: int = 2_000
    num_genres: int = 64
    min_events: int = 16
    max_events: int = 48
    zipf_exponent: float = 1.1
    genre_switch_prob: float = 0.2
    seed: int = 0
    chunk_users: int = 512

    def __post_init__(self) -> None:
        if self.num_items < 1 or self.num_users < 1:
            raise ConfigurationError("num_items and num_users must be >= 1")
        if not 1 <= self.num_genres:
            raise ConfigurationError("num_genres must be >= 1")
        if not 1 <= self.min_events <= self.max_events:
            raise ConfigurationError("need 1 <= min_events <= max_events")
        if not 0.0 <= self.genre_switch_prob <= 1.0:
            raise ConfigurationError("genre_switch_prob must be in [0, 1]")
        if self.chunk_users < 1:
            raise ConfigurationError("chunk_users must be >= 1")

    @property
    def vocab_size(self) -> int:
        """Vocabulary size including the padding slot at index 0."""
        return self.num_items + 1


def _genre_tables(config: StreamingSyntheticConfig) -> "tuple[np.ndarray, list[np.ndarray]]":
    """Per-genre item block starts and within-genre Zipf CDFs."""
    genres = min(config.num_genres, config.num_items)
    bounds = np.linspace(1, config.num_items + 1, genres + 1).astype(np.int64)
    cdfs: "list[np.ndarray]" = []
    for g in range(genres):
        block = int(bounds[g + 1] - bounds[g])
        weights = 1.0 / np.arange(1, block + 1, dtype=np.float64) ** config.zipf_exponent
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        cdfs.append(cdf)
    return bounds, cdfs


def iter_streaming_sequences(
    config: StreamingSyntheticConfig,
) -> "Iterator[np.ndarray]":
    """Yield one ``int64`` item sequence per user, chunk-vectorised."""
    rng = np.random.default_rng(config.seed)
    bounds, cdfs = _genre_tables(config)
    genres = len(cdfs)
    switch = config.genre_switch_prob
    for chunk_start in range(0, config.num_users, config.chunk_users):
        users = min(config.chunk_users, config.num_users - chunk_start)
        lengths = rng.integers(config.min_events, config.max_events + 1, users)
        total = int(lengths.sum())
        homes = rng.integers(0, genres, users)

        # Genre ring walk, vectorised across the whole chunk: per-event
        # steps in {-1, 0, +1}, cumulated per user by subtracting each
        # user's pre-walk offset from the global running sum.
        draws = rng.random(total)
        steps = (draws < switch / 2).astype(np.int64) - (draws > 1 - switch / 2)
        running = np.cumsum(steps)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        offsets = np.repeat(running[starts] - steps[starts], lengths)
        walk = running - offsets
        genre_per_event = (np.repeat(homes, lengths) + walk) % genres

        # Within-genre Zipf draw via inverse-CDF, grouped by genre.
        uniform = rng.random(total)
        items = np.empty(total, dtype=np.int64)
        for g in range(genres):
            mask = genre_per_event == g
            if not mask.any():
                continue
            ranks = np.searchsorted(cdfs[g], uniform[mask], side="left")
            items[mask] = bounds[g] + ranks

        for user in range(users):
            yield items[starts[user] : ends[user]]


def build_streaming_store(
    config: StreamingSyntheticConfig, path: str, name: str = "scale-synthetic"
) -> InteractionStore:
    """Stream a synthetic corpus straight into a memmap store at ``path``."""
    return InteractionStore.write(
        path,
        iter_streaming_sequences(config),
        vocab_size=config.vocab_size,
        name=name,
    )
