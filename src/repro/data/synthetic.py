"""Synthetic interaction-corpus generator.

The public MovieLens-1M and Lastfm datasets used by the paper cannot be
downloaded in this offline environment, so experiments run on synthetic
corpora that reproduce the *structural* properties the paper's evaluation
relies on:

* **Sequential genre coherence** — users move between item genres following a
  Markov chain whose transitions prefer "adjacent" genres, so multi-step
  paths between distant genres exist in the data (the raw material of
  influence paths, cf. Figure 1 of the paper).
* **Popularity skew** — item popularity within a genre is Zipfian, as in real
  recommendation logs.
* **User heterogeneity** — every user has a set of home genres and a latent
  *impressionability* in ``[0, 1]``: impressionable users wander further from
  their home genres, conservative users return to them.  This is the
  ground-truth counterpart of the Personalized Impressionability Factor that
  IRN learns, and lets the Figure 8 analysis be checked against a known
  distribution.

The generator emits a plain :class:`~repro.data.interactions.InteractionDataset`
so the exact preprocessing / splitting / evaluation pipeline of the paper
runs unchanged on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.interactions import Interaction, InteractionDataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng

__all__ = ["SyntheticConfig", "generate_synthetic_dataset"]


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic corpus generator.

    The defaults produce a small corpus suitable for NumPy-speed training;
    the MovieLens-1M- and Lastfm-flavoured presets live in
    :func:`repro.data.movielens.synthetic_movielens` and
    :func:`repro.data.lastfm.synthetic_lastfm`.
    """

    name: str = "synthetic"
    num_users: int = 120
    num_items: int = 240
    num_genres: int = 8
    genre_names: list[str] = field(default_factory=list)
    min_sequence_length: int = 25
    max_sequence_length: int = 60
    #: probability of staying in the current genre at each step
    genre_stay_probability: float = 0.6
    #: geometric decay of transition probability with ring distance between genres
    genre_adjacency_decay: float = 0.45
    #: probability (scaled by 1 - impressionability) of snapping back to a home genre
    home_return_probability: float = 0.55
    #: Zipf exponent for within-genre item popularity
    popularity_exponent: float = 1.1
    #: probability that an item carries a second (adjacent) genre
    multi_genre_probability: float = 0.3
    #: Beta distribution parameters of the latent user impressionability
    impressionability_alpha: float = 4.0
    impressionability_beta: float = 4.0
    #: number of home genres per user
    min_home_genres: int = 1
    max_home_genres: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0 or self.num_genres <= 0:
            raise ConfigurationError("num_users, num_items and num_genres must be positive")
        if self.num_genres > self.num_items:
            raise ConfigurationError("cannot have more genres than items")
        if self.min_sequence_length < 2 or self.max_sequence_length < self.min_sequence_length:
            raise ConfigurationError("invalid sequence length range")
        if not self.genre_names:
            self.genre_names = [f"genre-{i}" for i in range(self.num_genres)]
        if len(self.genre_names) != self.num_genres:
            raise ConfigurationError(
                f"expected {self.num_genres} genre names, got {len(self.genre_names)}"
            )


class _ItemCatalog:
    """Items with genres and within-genre Zipf popularity."""

    def __init__(self, config: SyntheticConfig, rng: np.random.Generator) -> None:
        self.primary_genre = rng.integers(0, config.num_genres, size=config.num_items)
        # Guarantee each genre has at least one item.
        for genre in range(config.num_genres):
            if not np.any(self.primary_genre == genre):
                self.primary_genre[rng.integers(0, config.num_items)] = genre
        self.secondary_genre = np.full(config.num_items, -1, dtype=np.int64)
        second = rng.random(config.num_items) < config.multi_genre_probability
        neighbour = (self.primary_genre + rng.choice([-1, 1], size=config.num_items)) % config.num_genres
        self.secondary_genre[second] = neighbour[second]

        # Within-genre Zipf popularity.
        self.popularity = np.zeros(config.num_items, dtype=np.float64)
        for genre in range(config.num_genres):
            members = np.flatnonzero(self.primary_genre == genre)
            ranks = rng.permutation(len(members)) + 1
            self.popularity[members] = 1.0 / ranks**config.popularity_exponent

        self.items_by_genre = [
            np.flatnonzero(
                (self.primary_genre == genre) | (self.secondary_genre == genre)
            )
            for genre in range(config.num_genres)
        ]

    def sample_item(self, genre: int, rng: np.random.Generator, avoid: int | None) -> int:
        members = self.items_by_genre[genre]
        weights = self.popularity[members].copy()
        if avoid is not None:
            weights[members == avoid] = 0.0
        total = weights.sum()
        if total <= 0:
            return int(rng.choice(members))
        return int(rng.choice(members, p=weights / total))

    def genres_of(self, item: int, names: list[str]) -> tuple[str, ...]:
        genres = [names[self.primary_genre[item]]]
        if self.secondary_genre[item] >= 0:
            genres.append(names[self.secondary_genre[item]])
        return tuple(dict.fromkeys(genres))


def _genre_transition_matrix(config: SyntheticConfig) -> np.ndarray:
    """Ring-structured genre transition matrix (rows sum to 1)."""
    n = config.num_genres
    matrix = np.zeros((n, n), dtype=np.float64)
    for source in range(n):
        for target in range(n):
            if source == target:
                continue
            distance = min(abs(source - target), n - abs(source - target))
            matrix[source, target] = config.genre_adjacency_decay**distance
        row_sum = matrix[source].sum()
        matrix[source] = (1.0 - config.genre_stay_probability) * matrix[source] / row_sum
        matrix[source, source] = config.genre_stay_probability
    return matrix


def generate_synthetic_dataset(config: SyntheticConfig) -> InteractionDataset:
    """Generate an :class:`InteractionDataset` according to ``config``."""
    rng = as_rng(config.seed)
    catalog = _ItemCatalog(config, rng)
    transition = _genre_transition_matrix(config)

    interactions: list[Interaction] = []
    user_traits: dict[str, float] = {}
    for user_number in range(config.num_users):
        user_id = f"u{user_number:05d}"
        impressionability = float(
            rng.beta(config.impressionability_alpha, config.impressionability_beta)
        )
        user_traits[user_id] = impressionability

        num_home = int(rng.integers(config.min_home_genres, config.max_home_genres + 1))
        anchor = int(rng.integers(0, config.num_genres))
        home_genres = [(anchor + offset) % config.num_genres for offset in range(num_home)]

        length = int(rng.integers(config.min_sequence_length, config.max_sequence_length + 1))
        genre = int(rng.choice(home_genres))
        previous_item: int | None = None
        for step in range(length):
            item = catalog.sample_item(genre, rng, avoid=previous_item)
            interactions.append(
                Interaction(user=user_id, item=f"i{item:05d}", timestamp=float(step), rating=1.0)
            )
            previous_item = item
            # Next genre: conservative users snap back to a home genre,
            # impressionable users follow the genre Markov chain.
            snap_back = rng.random() < config.home_return_probability * (1.0 - impressionability)
            if snap_back:
                genre = int(rng.choice(home_genres))
            else:
                genre = int(rng.choice(config.num_genres, p=transition[genre]))

    item_genres = {
        f"i{item:05d}": catalog.genres_of(item, config.genre_names)
        for item in range(config.num_items)
    }
    return InteractionDataset(
        name=config.name,
        interactions=interactions,
        item_genres=item_genres,
        user_traits=user_traits,
    )
