"""Lastfm (HetRec 2011): real-file loader and synthetic stand-in.

The paper uses the Lastfm dataset from HetRec 2011
(https://grouplens.org/datasets/hetrec-2011/), specifically the
``user_taggedartists-timestamps.dat`` interactions.  As with MovieLens, the
real files are unavailable offline, so :func:`synthetic_lastfm` generates a
sparser, shorter-session corpus mirroring the Lastfm row of Table I.
"""

from __future__ import annotations

import os

from repro.data.interactions import Interaction, InteractionDataset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.utils.exceptions import DataError

__all__ = ["LASTFM_GENRES", "load_lastfm", "synthetic_lastfm"]

#: Coarse music genres used by the synthetic Lastfm stand-in.
LASTFM_GENRES = [
    "rock",
    "indie",
    "pop",
    "electronic",
    "metal",
    "punk",
    "folk",
    "jazz",
    "hip-hop",
    "classical",
    "ambient",
    "blues",
]


def load_lastfm(directory: str) -> InteractionDataset:
    """Parse the HetRec 2011 Lastfm dump from ``directory``.

    Expects ``user_taggedartists-timestamps.dat`` with tab-separated columns
    ``userID  artistID  tagID  timestamp`` (header line allowed).  Tagging
    behaviour is treated as positive feedback, as in the paper.
    """
    path = os.path.join(directory, "user_taggedartists-timestamps.dat")
    if not os.path.exists(path):
        raise DataError(f"user_taggedartists-timestamps.dat not found under {directory!r}")

    interactions: list[Interaction] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split("\t")
            if line_number == 1 and not parts[0].isdigit():
                continue  # header
            if len(parts) < 4:
                raise DataError(f"malformed lastfm line {line_number}: {line!r}")
            user, artist, _tag, timestamp = parts[0], parts[1], parts[2], parts[3]
            interactions.append(
                Interaction(
                    user=f"u{user}",
                    item=f"a{artist}",
                    timestamp=float(timestamp),
                    rating=1.0,
                )
            )
    return InteractionDataset(name="lastfm", interactions=interactions)


def synthetic_lastfm(scale: float = 1.0, seed: int = 1) -> InteractionDataset:
    """Return a Lastfm-flavoured synthetic corpus.

    Compared to the MovieLens stand-in it is sparser (more items relative to
    interactions) and has shorter per-user histories, mirroring the contrast
    between the two rows of Table I.
    """
    if scale <= 0:
        raise DataError(f"scale must be positive, got {scale}")
    config = SyntheticConfig(
        name="lastfm-synthetic",
        num_users=max(8, int(round(160 * scale))),
        num_items=max(20, int(round(360 * scale))),
        num_genres=len(LASTFM_GENRES),
        genre_names=list(LASTFM_GENRES),
        min_sequence_length=22,
        max_sequence_length=45,
        genre_stay_probability=0.58,
        genre_adjacency_decay=0.5,
        home_return_probability=0.55,
        popularity_exponent=1.2,
        multi_genre_probability=0.25,
        seed=seed,
    )
    return generate_synthetic_dataset(config)
