"""Mini-batch iteration over training sub-sequences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.padding import PAD_INDEX, pad_batch
from repro.data.splitting import UserSequence
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng

__all__ = ["SequenceBatch", "sequences_to_batch", "iterate_batches"]


@dataclass(frozen=True)
class SequenceBatch:
    """A padded batch of user sub-sequences.

    Attributes
    ----------
    items:
        ``(batch, length)`` int64 array of item indices (0 = padding).
    users:
        ``(batch,)`` int64 array of user indices.
    lengths:
        ``(batch,)`` original (unpadded) sequence lengths.
    """

    items: np.ndarray
    users: np.ndarray
    lengths: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.items.shape[0]

    @property
    def max_length(self) -> int:
        return self.items.shape[1]

    def padding_mask(self) -> np.ndarray:
        """Boolean mask that is True at real (non-padding) positions."""
        return self.items != PAD_INDEX


def sequences_to_batch(
    sequences: Sequence[UserSequence],
    length: int | None = None,
    scheme: str = "pre",
) -> SequenceBatch:
    """Pad a list of :class:`UserSequence` into a :class:`SequenceBatch`."""
    if not sequences:
        raise ConfigurationError("cannot build a batch from zero sequences")
    items = pad_batch([seq.items for seq in sequences], length=length, scheme=scheme)
    users = np.asarray([seq.user_index for seq in sequences], dtype=np.int64)
    lengths = np.asarray([len(seq) for seq in sequences], dtype=np.int64)
    return SequenceBatch(items=items, users=users, lengths=lengths)


def iterate_batches(
    sequences: Sequence[UserSequence],
    batch_size: int,
    shuffle: bool = True,
    scheme: str = "pre",
    length: int | None = None,
    seed: "int | np.random.Generator | None" = None,
) -> Iterator[SequenceBatch]:
    """Yield padded mini-batches over ``sequences``.

    With ``length=None`` each batch is padded to its own longest sequence,
    which keeps the quadratic attention cost proportional to actual lengths.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    rng = as_rng(seed)
    order = np.arange(len(sequences))
    if shuffle:
        rng.shuffle(order)
    for start in range(0, len(sequences), batch_size):
        chunk = [sequences[i] for i in order[start : start + batch_size]]
        yield sequences_to_batch(chunk, length=length, scheme=scheme)
