"""Logging helpers.

The package uses the standard :mod:`logging` module.  Modules declare
``logger = logging.getLogger(__name__)`` at module level — since every
module lives under the ``repro`` package, those loggers inherit the single
stream handler that :func:`_ensure_configured` attaches to the package
root, and applications embedding the library can reconfigure output as
usual.  (:func:`get_logger` remains for callers composing names by hand.)

The package-wide level resolves through :func:`resolve_log_level` with the
standard precedence (explicit argument > ``REPRO_LOG_LEVEL`` > ``INFO``);
``repro-irs --log-level`` and the env hook both land in
:func:`configure_logging`.
"""

from __future__ import annotations

import logging
import os

from repro.utils.exceptions import ConfigurationError

_ROOT_NAME = "repro"
_ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"
DEFAULT_LOG_LEVEL = logging.INFO
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.INFO)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the package root.

    ``get_logger("models.irn")`` yields the logger ``repro.models.irn``.
    """
    _ensure_configured()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the log level of the whole package (e.g. ``logging.DEBUG``)."""
    _ensure_configured()
    logging.getLogger(_ROOT_NAME).setLevel(level)


def resolve_log_level(value: "str | int | None" = None) -> int:
    """Package log level: explicit > ``REPRO_LOG_LEVEL`` > ``INFO``.

    Accepts standard level names (``DEBUG`` … ``CRITICAL``, case-insensitive)
    or numeric levels.
    """

    def parse(raw, source):
        if isinstance(raw, int):
            return raw
        text = str(raw).strip()
        if text.isdigit():
            return int(text)
        resolved = logging.getLevelName(text.upper())
        if isinstance(resolved, int):
            return resolved
        raise ConfigurationError(
            f"log level must be a standard level name or integer, got {raw!r} "
            f"(from {source})"
        )

    if value is not None:
        return parse(value, "argument")
    env = os.environ.get(_ENV_LOG_LEVEL)
    if env is not None and env != "":
        return parse(env, f"${_ENV_LOG_LEVEL}")
    return DEFAULT_LOG_LEVEL


def configure_logging(level: "str | int | None" = None) -> int:
    """Resolve the level (see :func:`resolve_log_level`) and apply it to the
    package root.  Returns the numeric level applied."""
    resolved = resolve_log_level(level)
    set_verbosity(resolved)
    return resolved
