"""Logging helpers.

The package uses the standard :mod:`logging` module.  :func:`get_logger`
returns namespaced loggers (``repro.<component>``) with a single stream
handler attached to the root package logger, so applications embedding the
library can reconfigure output as usual.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.INFO)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the package root.

    ``get_logger("models.irn")`` yields the logger ``repro.models.irn``.
    """
    _ensure_configured()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int) -> None:
    """Set the log level of the whole package (e.g. ``logging.DEBUG``)."""
    _ensure_configured()
    logging.getLogger(_ROOT_NAME).setLevel(level)
