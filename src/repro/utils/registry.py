"""A minimal name -> factory registry.

Used to register recommender models and IRS frameworks under short string
names so experiments and the CLI can instantiate them from configuration.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

from repro.utils.exceptions import ConfigurationError

T = TypeVar("T")


class Registry(Generic[T]):
    """Maps lower-case string keys to factories (classes or callables)."""

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: dict[str, Callable[..., T]] = {}

    def register(self, name: str) -> Callable[[Callable[..., T]], Callable[..., T]]:
        """Class/function decorator registering the object under ``name``."""
        key = name.lower()

        def decorator(factory: Callable[..., T]) -> Callable[..., T]:
            if key in self._entries:
                raise ConfigurationError(
                    f"{self._kind} '{name}' is already registered"
                )
            self._entries[key] = factory
            return factory

        return decorator

    def get(self, name: str) -> Callable[..., T]:
        """Return the factory registered under ``name`` (case-insensitive)."""
        key = name.lower()
        if key not in self._entries:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise ConfigurationError(
                f"unknown {self._kind} '{name}'; known: {known}"
            )
        return self._entries[key]

    def create(self, name: str, /, *args, **kwargs) -> T:
        """Instantiate the factory registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def names(self) -> list[str]:
        """Return the sorted list of registered names."""
        return sorted(self._entries)
