"""Random-number-generator helpers.

Every stochastic component in the package accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalises it with
:func:`as_rng`.  This keeps experiments reproducible end-to-end: a single seed
passed to an experiment config deterministically derives the seeds of every
sub-component via :func:`spawn_rng`.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an existing generator (returned unchanged), an integer, or
    ``None`` (fresh entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int = 1) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are statistically independent of each other and of the
    parent's future output, so components seeded this way do not interact.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` suitable for seeding children."""
    return int(rng.integers(0, 2**31 - 1))
