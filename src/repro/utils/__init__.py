"""Shared utilities: RNG handling, logging, registries and exceptions."""

from repro.utils.exceptions import ConfigurationError, DataError, ReproError
from repro.utils.logging import get_logger
from repro.utils.registry import Registry
from repro.utils.rng import as_rng, spawn_rng

__all__ = [
    "ConfigurationError",
    "DataError",
    "ReproError",
    "Registry",
    "as_rng",
    "get_logger",
    "spawn_rng",
]
