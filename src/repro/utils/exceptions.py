"""Exception hierarchy for the repro package.

Keeping a small, explicit hierarchy lets callers distinguish configuration
mistakes (caller error) from data problems (corpus error) without matching on
message strings.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a model, experiment or layer is configured inconsistently."""


class DataError(ReproError):
    """Raised when an interaction corpus or dataset file is malformed."""


class NotFittedError(ReproError):
    """Raised when a model is used for inference before being fitted."""


class GraphError(ReproError):
    """Raised for item-graph problems (e.g. no path between two items)."""


class ServingError(ReproError):
    """Raised when the asynchronous serving loop is misused (e.g. submitting
    to a closed loop)."""


class QueueFullError(ServingError):
    """Raised by the admission controller's ``reject`` policy when a shard's
    request queue is at its depth bound."""


class StaleGenerationError(ReproError):
    """Raised when a generation-pinned planner (or a fused shard dispatch
    guarded by :meth:`~repro.shard.executor.ShardedExecutor.run_shards`)
    observes its backbone's ``fit_generation`` change under it.  The
    replicated-serving protocol never retrains a replica's backbone in
    place — a refit swaps whole replicas — so this error marks a protocol
    violation, not a recoverable condition."""
