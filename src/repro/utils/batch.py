"""Validation helpers shared by the batched inference entry points."""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.utils.exceptions import ConfigurationError

__all__ = ["broadcast_user_indices", "check_batch_lengths"]

T = TypeVar("T")


def broadcast_user_indices(
    count: int, user_indices: "Sequence[int | None] | None"
) -> "list[int | None]":
    """Default missing user indices to ``None`` and validate the batch size."""
    users = list(user_indices) if user_indices is not None else [None] * count
    if len(users) != count:
        raise ConfigurationError(f"got {len(users)} user indices for a batch of {count}")
    return users


def check_batch_lengths(count: int, **named: Sequence[T]) -> None:
    """Raise when any named sequence disagrees with the batch size ``count``."""
    for name, values in named.items():
        if len(values) != count:
            raise ConfigurationError(f"got {len(values)} {name} for a batch of {count}")
