"""Stateless neural-network operations on :class:`~repro.nn.tensor.Tensor`.

These functions mirror ``torch.nn.functional``: they build autograd graph
nodes but hold no parameters.  Numerically sensitive operations (softmax,
log-softmax, cross entropy) are implemented with the usual max-subtraction
stabilisation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "gelu",
    "relu",
    "sigmoid",
    "tanh",
    "dropout",
    "embedding",
    "linear",
    "binary_cross_entropy_with_logits",
    "mean_squared_error",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation used by BERT)."""
    inner = Tensor(np.sqrt(2.0 / np.pi)) * (x + x * x * x * 0.044715)
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot ``float64`` matrix for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def nll_loss(
    log_probs: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``.

    ``log_probs`` has shape ``(..., num_classes)`` and ``targets`` the
    corresponding leading shape.  Positions equal to ``ignore_index``
    contribute zero loss and are excluded from the mean.
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = log_probs.shape[-1]
    flat_logp = log_probs.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    # Replace ignored targets with 0 so the gather is well defined; their
    # contribution is multiplied by zero below.
    safe_targets = np.where(valid, flat_targets, 0)

    rows = np.arange(flat_targets.shape[0])
    picked = flat_logp[rows, safe_targets]
    weights = Tensor(valid.astype(np.float64))
    losses = -(picked * weights)

    if reduction == "none":
        return losses
    if reduction == "sum":
        return losses.sum()
    if reduction == "mean":
        count = max(int(valid.sum()), 1)
        return losses.sum() * (1.0 / count)
    raise ValueError(f"unknown reduction '{reduction}'")


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Softmax cross entropy between ``logits`` and integer ``targets``."""
    return nll_loss(
        log_softmax(logits, axis=-1),
        targets,
        ignore_index=ignore_index,
        reduction=reduction,
    )


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Stable binary cross entropy on raw logits.

    Uses ``max(x, 0) - x * y + log(1 + exp(-|x|))``.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    positive = logits.relu()
    abs_logits = logits.relu() + (-logits).relu()
    loss = positive - logits * targets_t + ((-abs_logits).exp() + 1.0).log()
    if reduction == "none":
        return loss
    if reduction == "sum":
        return loss.sum()
    if reduction == "mean":
        return loss.mean()
    raise ValueError(f"unknown reduction '{reduction}'")


def mean_squared_error(prediction: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Elementwise squared error between a tensor and a constant target."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    loss = diff * diff
    if reduction == "none":
        return loss
    if reduction == "sum":
        return loss.sum()
    if reduction == "mean":
        return loss.mean()
    raise ValueError(f"unknown reduction '{reduction}'")


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (gather with grad)."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` matching ``torch.nn.functional.linear``."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out
