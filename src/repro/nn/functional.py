"""Stateless neural-network operations on :class:`~repro.nn.tensor.Tensor`.

These functions mirror ``torch.nn.functional``: they build autograd graph
nodes but hold no parameters.  Numerically sensitive operations (softmax,
log-softmax, cross entropy) are implemented with the usual max-subtraction
stabilisation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, inference_dtype, is_grad_enabled
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "gelu",
    "relu",
    "sigmoid",
    "tanh",
    "dropout",
    "embedding",
    "linear",
    "binary_cross_entropy_with_logits",
    "mean_squared_error",
    "one_hot",
    "fused_attention",
    "softmax_",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation used by BERT)."""
    if not is_grad_enabled():
        # Fused inference path: the same ufuncs in the same order as the
        # graph path below (products commuted, which is bitwise-exact), but
        # in place on one scratch buffer instead of eight graph temporaries.
        data = x.data
        inner = data * data
        inner *= data
        inner *= 0.044715
        inner += data
        inner *= np.sqrt(2.0 / np.pi)
        np.tanh(inner, out=inner)
        inner += 1.0
        inner *= data * 0.5
        return Tensor(inner)
    inner = Tensor(np.sqrt(2.0 / np.pi)) * (x + x * x * x * 0.044715)
    return x * 0.5 * (inner.tanh() + 1.0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot ``float64`` matrix for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def nll_loss(
    log_probs: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``.

    ``log_probs`` has shape ``(..., num_classes)`` and ``targets`` the
    corresponding leading shape.  Positions equal to ``ignore_index``
    contribute zero loss and are excluded from the mean.
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = log_probs.shape[-1]
    flat_logp = log_probs.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)

    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones_like(flat_targets, dtype=bool)
    # Replace ignored targets with 0 so the gather is well defined; their
    # contribution is multiplied by zero below.
    safe_targets = np.where(valid, flat_targets, 0)

    rows = np.arange(flat_targets.shape[0])
    picked = flat_logp[rows, safe_targets]
    weights = Tensor(valid.astype(np.float64))
    losses = -(picked * weights)

    if reduction == "none":
        return losses
    if reduction == "sum":
        return losses.sum()
    if reduction == "mean":
        count = max(int(valid.sum()), 1)
        return losses.sum() * (1.0 / count)
    raise ValueError(f"unknown reduction '{reduction}'")


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
    reduction: str = "mean",
) -> Tensor:
    """Softmax cross entropy between ``logits`` and integer ``targets``."""
    return nll_loss(
        log_softmax(logits, axis=-1),
        targets,
        ignore_index=ignore_index,
        reduction=reduction,
    )


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Stable binary cross entropy on raw logits.

    Uses ``max(x, 0) - x * y + log(1 + exp(-|x|))``.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    positive = logits.relu()
    abs_logits = logits.relu() + (-logits).relu()
    loss = positive - logits * targets_t + ((-abs_logits).exp() + 1.0).log()
    if reduction == "none":
        return loss
    if reduction == "sum":
        return loss.sum()
    if reduction == "mean":
        return loss.mean()
    raise ValueError(f"unknown reduction '{reduction}'")


def mean_squared_error(prediction: Tensor, target: np.ndarray, reduction: str = "mean") -> Tensor:
    """Elementwise squared error between a tensor and a constant target."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    loss = diff * diff
    if reduction == "none":
        return loss
    if reduction == "sum":
        return loss.sum()
    if reduction == "mean":
        return loss.mean()
    raise ValueError(f"unknown reduction '{reduction}'")


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: np.random.Generator | None = None,
) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (gather with grad)."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` matching ``torch.nn.functional.linear``."""
    if not is_grad_enabled():
        # Fused inference path: the identical GEMM + broadcast add, without
        # the transpose/matmul/add graph wrappers (bitwise-equal output).
        out = np.matmul(x.data, weight.data.T)
        if bias is not None:
            out += bias.data
        return Tensor(out)
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


# ---------------------------------------------------------------------- #
# Fused inference kernels (raw ndarrays, no autograd graph)
# ---------------------------------------------------------------------- #

#: score-contraction strategies of :func:`fused_attention`.  ``matmul``
#: routes through batched BLAS GEMMs; ``einsum`` is the loop-fused
#: contraction.  ``auto`` picks per the specialization point below.
SCORE_STRATEGIES = ("auto", "matmul", "einsum")

#: Specialization point of the ``auto`` strategy, sized to the micro-batch
#: shapes the serving loop actually produces (``micro_batches.mean_size``
#: ~24 contexts x beam width 4 rows, 1-2 query positions per decode step,
#: a few dozen key columns, d_head 8-16).  The ``tensor_ops`` microbench
#: measures both contractions at exactly those shapes; on every NumPy/BLAS
#: probed so far batched ``matmul`` wins at decode shapes too (~2.5x), so
#: ``auto`` resolves to ``matmul`` for all query lengths above this
#: threshold — 0 ships the measured winner while keeping the einsum
#: contraction selectable should a future BLAS flip the ordering.
EINSUM_MAX_QUERY_LEN = 0


def softmax_(scores: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis, **in place**.

    The max-subtraction, exponentiation and normalisation all reuse
    ``scores``'s buffer; only the per-row max/sum reductions allocate.
    Returns ``scores`` for chaining.
    """
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return scores


def _contract_scores(
    query: np.ndarray, key: np.ndarray, strategy: str, out: np.ndarray
) -> np.ndarray:
    """``query @ key^T`` into the preallocated ``out`` buffer."""
    if strategy == "auto":
        strategy = "einsum" if query.shape[-2] <= EINSUM_MAX_QUERY_LEN else "matmul"
    if strategy == "einsum":
        return np.einsum("...qd,...kd->...qk", query, key, out=out)
    return np.matmul(query, key.swapaxes(-1, -2), out=out)


def fused_attention(
    query: np.ndarray,
    key: np.ndarray,
    value: np.ndarray,
    mask: np.ndarray | None = None,
    dtype: "np.dtype | None" = None,
    strategy: str = "auto",
) -> tuple[np.ndarray, np.ndarray]:
    """Scaled dot-product attention fused into one pass over raw ndarrays.

    Computes ``softmax(QK^T / sqrt(d_k) + mask) V`` exactly like the
    graph-building implementation in :mod:`repro.nn.attention`, but with
    score + scale + mask + softmax all applied **in place** on a single
    preallocated score buffer (one allocation where the graph path
    materialises an intermediate per op, plus the graph nodes themselves).
    Inference only — the result carries no autograd graph, so the call
    raises unless grad is disabled; the graph path remains the training
    implementation and the parity oracle (equal to ~1e-12, same BLAS
    contractions in the same order).

    ``dtype`` selects the compute precision (default: the thread's
    :func:`~repro.nn.tensor.inference_dtype`); float32 is the opt-in
    reduced-precision mode.  ``strategy`` picks the score contraction
    (see :data:`SCORE_STRATEGIES`).

    Returns ``(context, weights)`` as raw ndarrays of the compute dtype.
    """
    if is_grad_enabled():
        raise ConfigurationError(
            "fused_attention builds no autograd graph; wrap the call in no_grad() "
            "(the Tensor implementation in repro.nn.attention is the training path)"
        )
    if strategy not in SCORE_STRATEGIES:
        raise ConfigurationError(
            f"score strategy must be one of {SCORE_STRATEGIES}, got {strategy!r}"
        )
    compute = np.dtype(dtype) if dtype is not None else inference_dtype()
    query = np.asarray(query, dtype=compute)
    key = np.asarray(key, dtype=compute)
    value = np.asarray(value, dtype=compute)
    d_k = query.shape[-1]
    batch_shape = np.broadcast_shapes(query.shape[:-2], key.shape[:-2])
    scores = np.empty(
        batch_shape + (query.shape[-2], key.shape[-2]), dtype=compute
    )
    _contract_scores(query, key, strategy, out=scores)
    scores *= compute.type(1.0 / np.sqrt(d_k))
    if mask is not None:
        scores += np.asarray(mask)
    softmax_(scores)
    context = np.matmul(scores, value)
    return context, scores
