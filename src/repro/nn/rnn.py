"""Gated recurrent units (the backbone of GRU4Rec).

The implementation follows Cho et al. (2014):

.. math::

    r_t &= \\sigma(W_r x_t + U_r h_{t-1} + b_r) \\\\
    z_t &= \\sigma(W_z x_t + U_z h_{t-1} + b_z) \\\\
    n_t &= \\tanh(W_n x_t + r_t \\odot (U_n h_{t-1}) + b_n) \\\\
    h_t &= (1 - z_t) \\odot n_t + z_t \\odot h_{t-1}
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, stack
from repro.utils.rng import as_rng, spawn_rng

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """A single GRU step mapping ``(x_t, h_{t-1}) -> h_t``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        rngs = spawn_rng(rng, 6)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.reset_x = Linear(input_size, hidden_size, rng=rngs[0])
        self.reset_h = Linear(hidden_size, hidden_size, bias=False, rng=rngs[1])
        self.update_x = Linear(input_size, hidden_size, rng=rngs[2])
        self.update_h = Linear(hidden_size, hidden_size, bias=False, rng=rngs[3])
        self.candidate_x = Linear(input_size, hidden_size, rng=rngs[4])
        self.candidate_h = Linear(hidden_size, hidden_size, bias=False, rng=rngs[5])

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        reset = (self.reset_x(x) + self.reset_h(hidden)).sigmoid()
        update = (self.update_x(x) + self.update_h(hidden)).sigmoid()
        candidate = (self.candidate_x(x) + reset * self.candidate_h(hidden)).tanh()
        return (1.0 - update) * candidate + update * hidden


class GRU(Module):
    """A (single-layer) GRU over a batched sequence.

    Input has shape ``(batch, length, input_size)``; the output is the
    sequence of hidden states ``(batch, length, hidden_size)`` plus the final
    hidden state ``(batch, hidden_size)``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor | None = None) -> tuple[Tensor, Tensor]:
        batch, length, _ = x.shape
        if hidden is None:
            hidden = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for step in range(length):
            hidden = self.cell(x[:, step, :], hidden)
            outputs.append(hidden)
        return stack(outputs, axis=1), hidden
