"""A small reverse-mode autodiff and neural-network library on NumPy.

This subpackage is the substrate that replaces PyTorch in this reproduction.
It provides:

* :class:`~repro.nn.tensor.Tensor` — an n-dimensional array with reverse-mode
  automatic differentiation and broadcasting-aware gradients.
* :mod:`~repro.nn.functional` — stateless operations (softmax, layer norm,
  cross entropy, dropout, GELU, ...).
* :mod:`~repro.nn.layers` — stateful modules (``Linear``, ``Embedding``,
  ``LayerNorm``, ``Dropout``, containers).
* :mod:`~repro.nn.attention` / :mod:`~repro.nn.transformer` — multi-head
  attention with additive masks and Transformer blocks (the basis of SASRec,
  BERT4Rec and IRN).
* :mod:`~repro.nn.rnn` — a GRU implementation (the basis of GRU4Rec).
* :mod:`~repro.nn.conv` — convolution helpers (the basis of Caser).
* :mod:`~repro.nn.optim` — SGD / Adam optimizers and LR schedulers.
* :mod:`~repro.nn.serialization` — ``state_dict`` save / load on ``.npz``.
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadAttention
from repro.nn.conv import Conv2d
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Sequential,
)
from repro.nn.optim import SGD, Adam, ReduceLROnPlateau, StepLR
from repro.nn.rnn import GRU, GRUCell
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import (
    PositionwiseFeedForward,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "Adam",
    "Conv2d",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "MultiHeadAttention",
    "Parameter",
    "PositionwiseFeedForward",
    "ReduceLROnPlateau",
    "SGD",
    "Sequential",
    "StepLR",
    "Tensor",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "functional",
    "load_state_dict",
    "no_grad",
    "save_state_dict",
]
