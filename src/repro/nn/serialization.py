"""Checkpoint save/load for modules (``state_dict`` <-> ``.npz`` files)."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_state_dict", "load_state_dict", "save_module", "load_module"]


def save_state_dict(state: dict[str, np.ndarray], path: str) -> None:
    """Save a flat name -> array mapping to ``path`` (``.npz`` format)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: str) -> dict[str, np.ndarray]:
    """Load a mapping previously written with :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Save a module's parameters to ``path``."""
    save_state_dict(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` from ``path`` and return it."""
    module.load_state_dict(load_state_dict(path))
    return module
