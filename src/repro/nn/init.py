"""Parameter initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so models are
reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "normal", "uniform", "zeros"]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02, mean: float = 0.0
) -> np.ndarray:
    """Gaussian initialisation (BERT-style small std by default)."""
    return rng.normal(mean, std, size=shape)


def uniform(
    shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.05, high: float = 0.05
) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        fan = shape[0] if shape else 1
        return fan, fan
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (for ReLU activations)."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)
