"""Convolution layers (the backbone of Caser).

Caser applies *horizontal* filters spanning a few consecutive items across
the full embedding dimension and *vertical* filters spanning the whole
sequence for a single embedding dimension.  Both are expressible with a plain
2-D convolution over the ``(length, embedding)`` "image", which is what
:class:`Conv2d` provides (implemented with im2col + matmul so it runs on the
autograd engine).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor, concatenate
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng

__all__ = ["Conv2d"]


class Conv2d(Module):
    """2-D convolution with stride 1 and no padding (valid convolution).

    Input shape ``(batch, in_channels, height, width)``; output shape
    ``(batch, out_channels, height - kh + 1, width - kw + 1)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: tuple[int, int],
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        if len(kernel_size) != 2:
            raise ConfigurationError("kernel_size must be a (height, width) pair")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = tuple(kernel_size)
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init.xavier_uniform((out_channels, in_channels, kh, kw), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,)))

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        kh, kw = self.kernel_size
        if channels != self.in_channels:
            raise ConfigurationError(
                f"expected {self.in_channels} input channels, got {channels}"
            )
        if height < kh or width < kw:
            raise ConfigurationError(
                f"input ({height}x{width}) smaller than kernel ({kh}x{kw})"
            )
        out_h = height - kh + 1
        out_w = width - kw + 1

        # im2col: gather every (kh, kw) patch as a row, as a single advanced
        # index so the gradient flows through Tensor.__getitem__.
        patch_rows = []
        for dh in range(kh):
            for dw in range(kw):
                patch = x[:, :, dh : dh + out_h, dw : dw + out_w]
                patch_rows.append(patch.reshape(batch, channels, 1, out_h, out_w))
        # (batch, channels, kh*kw, out_h, out_w)
        patches = concatenate(patch_rows, axis=2)
        # -> (batch, out_h, out_w, channels * kh * kw)
        columns = patches.transpose(0, 3, 4, 1, 2).reshape(
            batch, out_h, out_w, channels * kh * kw
        )
        kernel = self.weight.reshape(self.out_channels, channels * kh * kw)
        # (batch, out_h, out_w, out_channels)
        result = columns.matmul(kernel.transpose()) + self.bias
        return result.transpose(0, 3, 1, 2)
