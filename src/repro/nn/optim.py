"""Optimizers and learning-rate schedulers.

The paper trains IRN with Adam plus a ``ReduceLROnPlateau``-style scheduler
("reduces the learning rate by a factor of 2 once the learning stagnates"),
both of which are provided here alongside plain SGD with momentum.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter
from repro.utils.exceptions import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "ReduceLROnPlateau", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float(np.sum(grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.parameters = [p for p in parameters if p.requires_grad]
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step
        bias2 = 1.0 - beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        """Advance one epoch, decaying the learning rate when due."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class ReduceLROnPlateau:
    """Halve the learning rate when a monitored loss stops improving.

    This mirrors the scheduler described in §IV-D6 of the paper ("reduces the
    learning rate by a factor of 2 once the learning stagnates").
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 2,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ) -> None:
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self._best = float("inf")
        self._bad_epochs = 0

    def step(self, metric: float) -> None:
        """Report the latest validation loss; decay the LR after ``patience`` stalls."""
        if metric < self._best - self.threshold:
            self._best = metric
            self._bad_epochs = 0
            return
        self._bad_epochs += 1
        if self._bad_epochs > self.patience:
            self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
            self._bad_epochs = 0
