"""Stateful neural-network modules.

:class:`Module` provides parameter registration, recursive traversal,
``train()`` / ``eval()`` switching and ``state_dict`` round-tripping, closely
mirroring the PyTorch API used by the original IRN implementation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng

__all__ = [
    "Parameter",
    "Module",
    "ModuleList",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically and show up in
    :meth:`parameters`, :meth:`named_parameters` and :meth:`state_dict`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -------------------------------------------------------------- #
    # Registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (used by containers)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -------------------------------------------------------------- #
    # Traversal
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        """Clear the gradient of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -------------------------------------------------------------- #
    # Mode switching
    # -------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -------------------------------------------------------------- #
    # Serialization
    # -------------------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name -> array mapping of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from a :meth:`state_dict` mapping."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ConfigurationError(
                f"state_dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ConfigurationError(
                    f"shape mismatch for '{name}': {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # -------------------------------------------------------------- #
    # Forward
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list container whose elements are registered as child modules."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self.add_module(str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.add_module(str(len(self._items)), module)
            self._items.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x


class Linear(Module):
    """Affine transformation ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Embedding(Module):
    """Dense lookup table mapping integer ids to vectors.

    ``padding_idx`` (if given) is initialised to zero and its gradient is
    zeroed after each backward pass by the optimizers' ``step`` via the hook
    :meth:`apply_padding_mask` — callers training embeddings with a padding
    token should invoke it after ``backward()`` (the provided models do).
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        padding_idx: int | None = None,
        rng: "int | np.random.Generator | None" = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), rng, std=init_std)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)

    def apply_padding_mask(self) -> None:
        """Zero the gradient (and value) of the padding row, if configured."""
        if self.padding_idx is None:
            return
        if self.weight.grad is not None:
            self.weight.grad[self.padding_idx] = 0.0

    def load_pretrained(self, vectors: np.ndarray, freeze: bool = False) -> None:
        """Overwrite the table with pre-trained ``vectors`` (e.g. item2vec)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape != self.weight.data.shape:
            raise ConfigurationError(
                f"pretrained embedding shape {vectors.shape} does not match "
                f"{self.weight.data.shape}"
            )
        self.weight.data = vectors.copy()
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0
        if freeze:
            self.weight.requires_grad = False


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.normalized_shape = normalized_shape
        self.weight = Parameter(np.ones((normalized_shape,)))
        self.bias = Parameter(np.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        if not is_grad_enabled():
            # Fused inference path: same reductions and ufuncs as the graph
            # path below (bitwise-equal), in place on one centred buffer.
            data = x.data
            centered = data - data.mean(axis=-1, keepdims=True)
            variance = np.mean(centered * centered, axis=-1, keepdims=True)
            centered /= (variance + self.eps) ** 0.5
            centered *= self.weight.data
            centered += self.bias.data
            return Tensor(centered)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / ((variance + self.eps) ** 0.5)
        return normalised * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float = 0.1, rng: "int | np.random.Generator | None" = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class ReLU(Module):
    """ReLU activation as a module (for :class:`Sequential`)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """GELU activation as a module (for :class:`Sequential`)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)
