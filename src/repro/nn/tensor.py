"""Reverse-mode automatic differentiation on top of NumPy arrays.

The :class:`Tensor` class records the computation graph as operations are
applied and computes gradients with a single reverse topological sweep in
:meth:`Tensor.backward`.  Gradients are broadcasting-aware: an operand that
was broadcast during the forward pass receives a gradient summed back to its
original shape.

Only the operations required by the models in this repository are
implemented, but they are implemented generally (arbitrary shapes, arbitrary
broadcasting) so the layer code reads like ordinary PyTorch-style NumPy.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "inference_dtype",
    "inference_dtype_scope",
    "resolve_inference_dtype",
]

# Grad mode is thread-local so the sharded execution subsystem can run
# inference on worker threads without one worker's ``no_grad`` exit
# re-enabling graph construction under another worker mid-forward.  Each
# thread starts with grad enabled, matching the old module-global default.
_GRAD_STATE = threading.local()

# The inference compute dtype is thread-local for the same reason as grad
# mode: serving drains run scoring on worker threads, and one worker's
# float32 scope must not leak into another's forward.  It only affects the
# *inference fast path* (the fused attention kernel and the K/V cache
# arenas); the autograd graph and all parameters stay float64.
_DTYPE_STATE = threading.local()

#: environment knob of the opt-in reduced-precision inference mode
INFERENCE_DTYPE_ENV = "REPRO_INFERENCE_DTYPE"

_DTYPE_NAMES = {"float64": np.float64, "float32": np.float32}


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph (per thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def inference_dtype() -> np.dtype:
    """The compute dtype of the inference fast path for this thread.

    ``float64`` (the default) makes the fused kernels bit-compatible with
    the graph-building implementation; ``float32`` is the opt-in
    reduced-precision mode (see :func:`resolve_inference_dtype` for the
    documented tolerance).
    """
    return getattr(_DTYPE_STATE, "dtype", np.dtype(np.float64))


@contextlib.contextmanager
def inference_dtype_scope(dtype: "np.dtype | str | None"):
    """Set the thread's inference compute dtype for the duration of a block.

    ``None`` leaves the current dtype untouched (so callers can thread an
    optional configuration through unconditionally).
    """
    previous = inference_dtype()
    _DTYPE_STATE.dtype = previous if dtype is None else resolve_inference_dtype(dtype)
    try:
        yield
    finally:
        _DTYPE_STATE.dtype = previous


def resolve_inference_dtype(value: "np.dtype | str | None" = None) -> np.dtype:
    """Resolve the inference dtype from an explicit value or the environment.

    Precedence: explicit ``value`` -> ``$REPRO_INFERENCE_DTYPE`` -> float64.
    Only ``float32`` and ``float64`` are legal.  Float32 is **opt-in** and
    approximate: attention scores / softmax / context and the K/V arenas are
    computed and stored in single precision, so scores differ from the
    float64 reference by ~1e-5 relative (documented tolerance ``5e-4``
    absolute on logits; plans are identical at the default beam widths on
    the shipped corpora — see ``tests/core/test_inference_dtype.py``).
    """
    if value is None:
        value = os.environ.get(INFERENCE_DTYPE_ENV) or "float64"
    if isinstance(value, str):
        name = value.strip().lower()
        if name not in _DTYPE_NAMES:
            raise ConfigurationError(
                f"inference dtype must be one of {sorted(_DTYPE_NAMES)}, got {value!r}"
            )
        return np.dtype(_DTYPE_NAMES[name])
    dtype = np.dtype(value)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigurationError(
            f"inference dtype must be float32 or float64, got {dtype}"
        )
    return dtype


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """An n-dimensional array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a ``float64`` NumPy array.
    requires_grad:
        If ``True`` the tensor accumulates gradients in :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to 1.0 and must match this tensor's shape
        otherwise.  After the call every reachable tensor with
        ``requires_grad=True`` holds its gradient in ``.grad``.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order of the reachable graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __truediv__(self, other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data**2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data**2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside the range."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # In-place inference ops
    # ------------------------------------------------------------------ #
    def _require_inference_mode(self, op: str) -> None:
        if is_grad_enabled():
            raise ConfigurationError(
                f"Tensor.{op} mutates its buffer and cannot participate in the "
                f"autograd graph; wrap the call in no_grad()"
            )

    def add_(self, other) -> "Tensor":
        """In-place add (inference only: raises unless grad is disabled)."""
        self._require_inference_mode("add_")
        self.data += _as_array(other)
        return self

    def mul_(self, other) -> "Tensor":
        """In-place multiply (inference only: raises unless grad is disabled)."""
        self._require_inference_mode("mul_")
        self.data *= _as_array(other)
        return self

    def masked_fill_(self, mask: np.ndarray, value: float) -> "Tensor":
        """Set entries where ``mask`` is true to ``value``, in place
        (inference only: raises unless grad is disabled)."""
        self._require_inference_mode("masked_fill_")
        np.copyto(self.data, value, where=np.asarray(mask, dtype=bool))
        return self

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
                return
            if a.ndim == 1:
                a_2d = a[None, :]
                grad_2d = np.expand_dims(grad, -2)
                self._accumulate((grad_2d @ np.swapaxes(b, -1, -2)).reshape(a.shape))
                other_t._accumulate(_unbroadcast(np.swapaxes(a_2d, -1, -2) @ grad_2d, b.shape))
                return
            if b.ndim == 1:
                b_2d = b[:, None]
                grad_2d = np.expand_dims(grad, -1)
                self._accumulate(_unbroadcast(grad_2d @ np.swapaxes(b_2d, -1, -2), a.shape))
                other_t._accumulate((np.swapaxes(a, -1, -2) @ grad_2d).reshape(b.shape))
                return
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(grad_a, a.shape))
            other_t._accumulate(_unbroadcast(grad_b, b.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        *shape: int,
        rng: np.random.Generator | None = None,
        scale: float = 1.0,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


# ---------------------------------------------------------------------- #
# Free functions on tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (gradient splits back)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        offset = 0
        for tensor, size in zip(tensors, sizes):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offset, offset + size)
            tensor._accumulate(grad[tuple(index)])
            offset += size

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            tensor._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``condition ? a : b`` (condition is constant)."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        a_t._accumulate(grad * cond)
        b_t._accumulate(grad * (~cond))

    return Tensor._make(data, (a_t, b_t), backward)
