"""Multi-head scaled dot-product attention with additive masks.

The mask argument is an *additive* float array broadcastable to the attention
logits of shape ``(batch, heads, query_len, key_len)``.  Disallowed positions
use a large negative value; the Personalized Impressionability Mask of the
paper additionally adds finite positive weights for the objective-item column
(see :mod:`repro.core.pim`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng, spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.kv import LayerKVCache

__all__ = ["MultiHeadAttention", "scaled_dot_product_attention", "NEG_INF"]

#: Additive logit used to mask out a position entirely.  Large enough that the
#: masked probability underflows to ~0, small enough to avoid inf-inf NaNs.
NEG_INF = -1e9


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: "np.ndarray | Tensor | None" = None,
    fused: bool | None = None,
) -> tuple[Tensor, Tensor]:
    """Compute ``softmax(QK^T / sqrt(d_k) + mask) V``.

    ``query``/``key``/``value`` have shape ``(..., length, d_k)``; ``mask`` is
    an additive array broadcastable to ``(..., query_len, key_len)``.  When
    ``mask`` is a :class:`Tensor` (e.g. the Personalized Impressionability
    Mask, which depends on the learned impressionability factor), gradients
    flow through it.

    ``fused`` selects the implementation: ``True`` routes through the
    allocation-light :func:`repro.nn.functional.fused_attention` ndarray
    kernel (inference only — raises under grad), ``False`` forces the
    graph-building path, and ``None`` (default) fuses exactly when grad is
    disabled.  In float64 the two paths apply the same elementwise and BLAS
    operations in the same order, so they agree bit-for-bit.

    Returns ``(output, attention_weights)``.
    """
    if fused is None:
        fused = not is_grad_enabled()
    if fused:
        mask_arr = mask.data if isinstance(mask, Tensor) else mask
        context, weights = F.fused_attention(query.data, key.data, value.data, mask=mask_arr)
        return Tensor(context), Tensor(weights)
    d_k = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
    if mask is not None:
        if not isinstance(mask, Tensor):
            mask = Tensor(np.asarray(mask, dtype=np.float64))
        scores = scores + mask
    weights = F.softmax(scores, axis=-1)
    return weights.matmul(value), weights


class MultiHeadAttention(Module):
    """Multi-head self/cross attention (Eq. 4 of the paper).

    Parameters
    ----------
    d_model:
        Model (embedding) dimension.
    num_heads:
        Number of attention heads; must divide ``d_model``.
    dropout:
        Dropout probability applied to the attention output.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ConfigurationError(
                f"d_model ({d_model}) must be divisible by num_heads ({num_heads})"
            )
        rng = as_rng(rng)
        rngs = spawn_rng(rng, 5)
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.query_proj = Linear(d_model, d_model, rng=rngs[0])
        self.key_proj = Linear(d_model, d_model, rng=rngs[1])
        self.value_proj = Linear(d_model, d_model, rng=rngs[2])
        self.output_proj = Linear(d_model, d_model, rng=rngs[3])
        self.dropout = Dropout(dropout, rng=rngs[4])
        #: attention weights of the most recent forward pass (for analysis)
        self.last_attention: np.ndarray | None = None

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.d_model)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        mask: "np.ndarray | Tensor | None" = None,
        kv_cache: "LayerKVCache | None" = None,
        persist: int | None = None,
        fused: bool | None = None,
    ) -> Tensor:
        """Apply attention.  With only ``query`` given this is self-attention.

        ``mask`` is an additive array (or differentiable :class:`Tensor`)
        broadcastable to ``(batch, num_heads, query_len, key_len)``; pass
        e.g. a ``(batch, 1, m, m)`` PIM or a ``(m, m)`` causal mask.

        With ``kv_cache`` (incremental decoding, inference only) the inputs
        hold just the newly appended positions: their keys/values are
        appended to the cache (the first ``persist`` of them permanently,
        the remainder transiently — see
        :meth:`repro.cache.kv.LayerKVCache.extend`) and the queries attend
        over cached-prefix + new keys, so ``mask`` must then be
        broadcastable to ``(batch, heads, new_len, prefix_len + new_len)``.

        ``fused`` selects the attention implementation exactly as in
        :func:`scaled_dot_product_attention` (default: fuse when grad is
        disabled).
        """
        key = query if key is None else key
        value = key if value is None else value
        batch, q_len, _ = query.shape
        k_len = key.shape[1]
        if fused is None:
            fused = not is_grad_enabled()

        q = self._split_heads(self.query_proj(query), batch, q_len)
        k = self._split_heads(self.key_proj(key), batch, k_len)
        v = self._split_heads(self.value_proj(value), batch, k_len)

        k_arr, v_arr = k.data, v.data
        if kv_cache is not None:
            if is_grad_enabled():
                raise ConfigurationError(
                    "kv_cache attention is inference-only; wrap the call in no_grad()"
                )
            k_arr, v_arr = kv_cache.extend(k_arr, v_arr, persist=persist)
            if not fused:
                k = Tensor(k_arr)
                v = Tensor(v_arr)

        if mask is not None:
            if isinstance(mask, Tensor):
                if mask.ndim == 2:
                    mask = mask.reshape(1, 1, *mask.shape)
                elif mask.ndim == 3:
                    mask = mask.reshape(mask.shape[0], 1, mask.shape[1], mask.shape[2])
                elif mask.ndim != 4:
                    raise ConfigurationError(
                        f"attention mask must have 2-4 dimensions, got {mask.ndim}"
                    )
            else:
                mask = np.asarray(mask, dtype=np.float64)
                if mask.ndim == 2:
                    mask = mask[None, None, :, :]
                elif mask.ndim == 3:
                    mask = mask[:, None, :, :]
                elif mask.ndim != 4:
                    raise ConfigurationError(
                        f"attention mask must have 2-4 dimensions, got {mask.ndim}"
                    )

        if fused:
            # Inference fast path: the whole attention body runs on raw
            # ndarrays (cache views attend without materializing, the score
            # buffer is mutated in place) and only the merged context
            # re-enters the Tensor world for the output projection.
            mask_arr = mask.data if isinstance(mask, Tensor) else mask
            context, weights = F.fused_attention(q.data, k_arr, v_arr, mask=mask_arr)
            self.last_attention = weights
            merged = context.transpose(0, 2, 1, 3).reshape(batch, q_len, self.d_model)
            return self.dropout(self.output_proj(Tensor(merged)))

        context, weights = scaled_dot_product_attention(q, k, v, mask=mask, fused=False)
        self.last_attention = weights.data
        merged = self._merge_heads(context, batch, q_len)
        return self.dropout(self.output_proj(merged))
