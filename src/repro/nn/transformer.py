"""Transformer building blocks.

The paper's IRN is a stack of Transformer *decoder* layers operating on a
single sequence (self-attention only, causal + objective-aware masking), which
structurally is an encoder layer with a custom additive mask.  The same block
is reused by SASRec (causal mask) and BERT4Rec (no mask).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.nn.attention import NEG_INF, MultiHeadAttention
from repro.nn.layers import Dropout, LayerNorm, Linear, Module, ModuleList
from repro.nn.tensor import Tensor, is_grad_enabled
from repro.nn import functional as F
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_rng, spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.kv import DecodingState, LayerKVCache

__all__ = [
    "PositionwiseFeedForward",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "causal_mask",
    "sinusoidal_positional_encoding",
]


#: Read-only master copies of :func:`causal_mask` per length.  Decode loops
#: request the same few lengths thousands of times; memoizing skips the
#: triangular rebuild (and, with ``copy=False``, the allocation too).
_CAUSAL_MASK_CACHE: dict[int, np.ndarray] = {}


def causal_mask(length: int, copy: bool = True) -> np.ndarray:
    """Standard lower-triangular additive mask of shape ``(length, length)``.

    Position ``j`` may attend to positions ``k <= j``; future positions get
    :data:`~repro.nn.attention.NEG_INF`.  With ``copy=False`` the shared
    read-only master is returned (no allocation) — callers that add
    objective columns or otherwise edit the mask must keep the default.
    """
    master = _CAUSAL_MASK_CACHE.get(length)
    if master is None:
        master = np.zeros((length, length), dtype=np.float64)
        future = np.triu(np.ones((length, length), dtype=bool), k=1)
        master[future] = NEG_INF
        master.setflags(write=False)
        _CAUSAL_MASK_CACHE[length] = master
    return master.copy() if copy else master


def sinusoidal_positional_encoding(length: int, d_model: int) -> np.ndarray:
    """The fixed sin/cos positional encoding of Vaswani et al. (2017)."""
    positions = np.arange(length)[:, None].astype(np.float64)
    dims = np.arange(d_model)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / d_model)
    angles = positions * angle_rates
    encoding = np.zeros((length, d_model), dtype=np.float64)
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class PositionwiseFeedForward(Module):
    """Two-layer feed-forward network applied at every position."""

    def __init__(
        self,
        d_model: int,
        d_hidden: int,
        dropout: float = 0.0,
        activation: str = "gelu",
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        rngs = spawn_rng(rng, 3)
        self.fc1 = Linear(d_model, d_hidden, rng=rngs[0])
        self.fc2 = Linear(d_hidden, d_model, rng=rngs[1])
        self.dropout = Dropout(dropout, rng=rngs[2])
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.fc1(x)
        hidden = F.gelu(hidden) if self.activation == "gelu" else hidden.relu()
        return self.dropout(self.fc2(hidden))


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer block: self-attention + position-wise FFN.

    Pre-norm (LayerNorm before each sub-layer) trains stably without warmup,
    which matters for the small NumPy training budgets used here.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_hidden: int | None = None,
        dropout: float = 0.0,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        rngs = spawn_rng(rng, 3)
        d_hidden = d_hidden if d_hidden is not None else 4 * d_model
        self.attention = MultiHeadAttention(d_model, num_heads, dropout=dropout, rng=rngs[0])
        self.feed_forward = PositionwiseFeedForward(d_model, d_hidden, dropout=dropout, rng=rngs[1])
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.dropout = Dropout(dropout, rng=rngs[2])

    def forward(
        self,
        x: Tensor,
        mask: np.ndarray | None = None,
        kv_cache: "LayerKVCache | None" = None,
        persist: int | None = None,
    ) -> Tensor:
        attended = self.attention(self.norm1(x), mask=mask, kv_cache=kv_cache, persist=persist)
        if not is_grad_enabled():
            # Inference: fold the residuals into the freshly produced
            # sub-layer outputs (never into the caller's ``x``, whose buffer
            # may be shared) instead of allocating two sum tensors.
            x = self.dropout(attended).add_(x)
            return self.feed_forward(self.norm2(x)).add_(x)
        x = x + self.dropout(attended)
        x = x + self.feed_forward(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` with a final LayerNorm."""

    def __init__(
        self,
        num_layers: int,
        d_model: int,
        num_heads: int,
        d_hidden: int | None = None,
        dropout: float = 0.0,
        rng: "int | np.random.Generator | None" = None,
    ) -> None:
        super().__init__()
        rng = as_rng(rng)
        rngs = spawn_rng(rng, num_layers)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    d_model, num_heads, d_hidden=d_hidden, dropout=dropout, rng=rngs[i]
                )
                for i in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(d_model)

    def init_state(self, dtype: "np.dtype | str | None" = None) -> "DecodingState":
        """Fresh per-layer K/V caches for an incremental decoding run.

        ``dtype`` fixes the cache storage precision (default: the thread's
        :func:`~repro.nn.tensor.inference_dtype` at first extend).
        """
        from repro.cache.kv import DecodingState

        return DecodingState(len(self.layers), dtype=dtype)

    def forward(
        self,
        x: Tensor,
        mask: np.ndarray | None = None,
        state: "DecodingState | None" = None,
        persist: int | None = None,
    ) -> Tensor:
        """Encode ``x``; with ``state``, run one incremental decoding step.

        In incremental mode ``x`` holds only the newly appended positions;
        each layer attends them over its cached prefix K/V and appends the
        first ``persist`` new positions to the cache (see
        :mod:`repro.cache.kv` for the exactness contract the *caller* must
        uphold — this stack reuses whatever the caches contain).
        """
        if state is None:
            for layer in self.layers:
                x = layer(x, mask=mask)
            return self.final_norm(x)
        if len(state) != len(self.layers):
            raise ConfigurationError(
                f"decoding state has {len(state)} layer caches for {len(self.layers)} layers"
            )
        for layer, kv_cache in zip(self.layers, state):
            x = layer(x, mask=mask, kv_cache=kv_cache, persist=persist)
        return self.final_norm(x)
