"""The replica worker: one serving process behind the socket transport.

A :class:`ReplicaWorker` is the parent-side handle of one forked child
process.  The child (:func:`worker_main`) runs a complete single-replica
serving stack — the generation-pinned planner with its own GIL, plan-cache
shards and arena-backed K/V caches, a full
:class:`~repro.serve.loop.ServingLoop` (sharded queues, admission scope
``worker-<index>``, optional tracing) and a
:class:`~repro.replica.replica.Replica` for load accounting — and speaks
the :mod:`repro.distributed.wire` protocol over an ``AF_UNIX``
``socketpair`` created before the fork.

Thread layout inside the child:

* **reader** (the main thread) — decodes REQUEST_BATCH frames into
  envelopes and enqueues them; handles STATS / INSTALL_ARTIFACT /
  SHUTDOWN control frames.  Under the ``block`` admission policy a full
  queue stalls this thread — back-pressure propagates to the parent
  through the socket buffer, exactly like a blocked in-process producer.
* **writer** — drains an outbox of answered requests, packing every
  record available at wake-up into ONE RESPONSE_BATCH frame (the batched
  encode the codec bench measures).
* **heartbeat** — ships the replica's load signals (EWMA in-flight depth,
  recent p95, queue depth) every ``heartbeat_interval`` seconds; the
  parent's dispatcher scores workers from these instead of shared memory.

All latency math happens on the child's own ``perf_counter`` clock and
crosses the wire as *durations* (queue-wait, service) — never as raw
timestamps, which are not comparable between processes.

Fork discipline: the child installs a **fresh**
:class:`~repro.obs.registry.MetricsRegistry` before constructing anything
(an inherited registry lock could have been mid-acquisition at fork), and
closes every inherited parent-side socket fd so EOF detection stays crisp.
The child exits via ``os._exit`` — parent-inherited atexit handlers must
not run twice.
"""

from __future__ import annotations

import logging
import os
import queue
import socket
import threading
import time

from repro.distributed import wire
from repro.distributed.artifacts import (
    GENERATOR_STATE,
    MODEL_WEIGHTS,
    unpack_generator,
    unpack_state_dict,
)
from repro.distributed.wire import FrameType, ResponseRecord
from repro.obs.registry import MetricsRegistry, set_registry
from repro.replica.replica import Replica
from repro.serve.loop import ServingLoop
from repro.serve.request import ServeRequest
from repro.utils.exceptions import ServingError

__all__ = ["ReplicaWorker", "spawn_worker", "worker_main"]

logger = logging.getLogger(__name__)

#: Seconds the parent waits for a worker's HELLO (covers the child's
#: planner construction, which may train a model).
HELLO_TIMEOUT = 120.0


class ReplicaWorker:
    """Parent-side handle of one worker process: the socket + the process."""

    def __init__(self, process, sock: socket.socket, index: int, generation: int) -> None:
        self.process = process
        self.sock = sock
        self.index = index
        self.generation = generation
        self.send_lock = threading.Lock()
        self.hello: "dict | None" = None

    @property
    def pid(self) -> "int | None":
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def join(self, timeout: "float | None" = None) -> None:
        self.process.join(timeout)

    def kill(self) -> None:
        """SIGKILL the child (the chaos suite's worker-death injector)."""
        self.process.kill()


def spawn_worker(
    planner,
    index: int,
    generation: int,
    loop_kwargs: "dict | None" = None,
    heartbeat_interval: float = 0.05,
    inherited_fds: "list[int] | None" = None,
    mp_context=None,
    tenant_factory=None,
) -> ReplicaWorker:
    """Fork one worker process serving ``planner`` and return its handle.

    The socketpair is created *before* the fork so both ends exist in both
    processes; each side closes the end it does not own.  ``planner`` is a
    fitted planner object — the fork's copy-on-write page sharing is the
    "ship the model to the worker" mechanism for the initial deploy (a
    refit re-ships weights explicitly through the artifact registry).
    ``inherited_fds`` lists parent-side fds of *other* workers' sockets the
    child should close (a later fork inherits every earlier socket).
    ``tenant_factory`` (optional) is called *inside the child* AFTER its
    fresh metrics registry is installed, so a multi-tenant worker's
    :class:`~repro.tenant.registry.TenantRegistry` binds child-owned locks
    and counters — never objects forked mid-acquisition.
    """
    if mp_context is None:
        import multiprocessing

        mp_context = multiprocessing.get_context("fork")
    parent_sock, child_sock = socket.socketpair()
    process = mp_context.Process(
        target=worker_main,
        args=(
            child_sock,
            parent_sock,
            planner,
            index,
            generation,
            dict(loop_kwargs or {}),
            heartbeat_interval,
            list(inherited_fds or []),
            tenant_factory,
        ),
        name=f"repro-worker-{index}",
        daemon=True,
    )
    process.start()
    child_sock.close()
    return ReplicaWorker(process, parent_sock, index, generation)


# --------------------------------------------------------------------- #
# Child process
# --------------------------------------------------------------------- #
def worker_main(
    sock: socket.socket,
    parent_sock: socket.socket,
    planner,
    index: int,
    generation: int,
    loop_kwargs: dict,
    heartbeat_interval: float,
    inherited_fds: "list[int]",
    tenant_factory=None,
) -> None:
    """Entry point of the child process (runs until SHUTDOWN or EOF)."""
    try:
        _Worker(
            sock,
            parent_sock,
            planner,
            index,
            generation,
            loop_kwargs,
            heartbeat_interval,
            inherited_fds,
            tenant_factory,
        ).run()
    except BaseException:
        logger.exception("worker %d died", index)
        os._exit(1)
    os._exit(0)


class _Worker:
    """Child-process state: loop + replica + reader/writer/heartbeat threads."""

    def __init__(
        self,
        sock,
        parent_sock,
        planner,
        index,
        generation,
        loop_kwargs,
        heartbeat_interval,
        inherited_fds,
        tenant_factory=None,
    ) -> None:
        # Fresh registry FIRST: every MetricGroup built below must bind to a
        # lock this process created, not one forked mid-acquisition.
        set_registry(MetricsRegistry())
        parent_sock.close()
        for fd in inherited_fds:
            try:
                os.close(fd)
            except OSError:
                pass
        self.sock = sock
        self.index = index
        self.generation = generation
        self.heartbeat_interval = float(heartbeat_interval)
        pin = getattr(planner, "pin_generation", None)
        if pin is not None:
            pin(serving_generation=generation)
        else:
            planner.serving_generation = generation
        self.planner = planner
        # The tenant registry is built HERE, after the fresh metrics
        # registry: its bindings' admission controllers and latency groups
        # must be child-owned (the parent keeps its own registry instance).
        tenants = None if tenant_factory is None else tenant_factory()
        if tenants is not None:
            tenants.pin_generation(generation)
        self.loop = ServingLoop(
            planner, admission_scope=f"worker-{index}", tenants=tenants, **loop_kwargs
        )
        self.replica = Replica(index, planner, self.loop, generation)
        self.send_lock = threading.Lock()
        self.outbox: "queue.SimpleQueue" = queue.SimpleQueue()
        self._stop = threading.Event()
        self._heartbeat_seq = 0

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        self.loop.start()
        writer = threading.Thread(target=self._writer, name="repro-worker-writer", daemon=True)
        heartbeat = threading.Thread(
            target=self._heartbeat, name="repro-worker-heartbeat", daemon=True
        )
        writer.start()
        heartbeat.start()
        wire.send_frame(
            self.sock,
            FrameType.HELLO,
            wire.encode_json(
                {
                    "index": self.index,
                    "pid": os.getpid(),
                    "generation": self.generation,
                    "num_queues": self.loop.num_queues,
                    "max_length": int(getattr(self.planner, "max_length", 20)),
                    "num_workers": int(getattr(self.planner, "num_workers", 1) or 1),
                    "shard_backend": getattr(self.planner, "shard_backend", None),
                    "vocab_shards": getattr(self.planner, "vocab_shards", None),
                    "planner": getattr(self.planner, "name", type(self.planner).__name__),
                    "tenants": (
                        [] if self.loop.tenants is None else list(self.loop.tenants.names)
                    ),
                }
            ),
            lock=self.send_lock,
        )
        try:
            self._reader()
        finally:
            # Drain dry: close() resolves every accepted future, each
            # resolution lands a record in the outbox via _on_done.
            self._stop.set()
            self.loop.close()
            self.outbox.put(None)  # writer sentinel — flushes, then exits
            writer.join(timeout=10.0)
            heartbeat.join(timeout=2.0 * self.heartbeat_interval + 1.0)
            try:
                self.sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def _reader(self) -> None:
        while True:
            frame = wire.recv_frame(self.sock)
            if frame is None:
                logger.info("worker %d: parent closed the transport", self.index)
                return
            frame_type, payload = frame
            if frame_type == FrameType.REQUEST_BATCH:
                self._handle_requests(payload)
            elif frame_type == FrameType.STATS_REQUEST:
                wire.send_frame(
                    self.sock,
                    FrameType.STATS_RESPONSE,
                    wire.encode_json(self._stats()),
                    lock=self.send_lock,
                )
            elif frame_type == FrameType.INSTALL_ARTIFACT:
                self._handle_install(payload)
            elif frame_type == FrameType.SHUTDOWN:
                logger.info("worker %d: shutdown requested, draining", self.index)
                return
            else:
                raise ServingError(
                    f"worker {self.index}: unexpected frame type {frame_type}"
                )

    def _handle_requests(self, payload: bytes) -> None:
        for request_id, request in wire.decode_request_batch(payload):
            self.replica.on_dispatch()
            request.replica_index = self.index
            request.future.add_done_callback(
                lambda future, rid=request_id, req=request: self._on_done(rid, req)
            )
            try:
                # Enqueue stamps enqueued_at on THIS process's clock; the
                # block policy may stall here (back-pressure to the parent).
                self.loop.enqueue(request)
            except BaseException as exc:  # noqa: BLE001 - shipped as an error record
                if not request.future.done():
                    request.future.set_exception(exc)

    def _on_done(self, request_id: int, request: ServeRequest) -> None:
        self.replica.on_complete(request)
        exc = request.future.exception()
        if exc is not None:
            record = ResponseRecord(
                request_id,
                False,
                error_name=type(exc).__name__,
                error_message=str(exc),
            )
        else:
            answer = request.future.result()
            if answer is not None and not isinstance(answer, (list, tuple)):
                answer = int(answer)
            completed = request.completed_at or time.perf_counter()
            drain_started = request.drain_started_at or completed
            record = ResponseRecord(
                request_id,
                True,
                answer=answer,
                served_generation=request.served_generation,
                batch_tag=request.batch_tag,
                queue_wait_s=max(drain_started - request.enqueued_at, 0.0),
                service_s=max(completed - request.enqueued_at, 0.0),
            )
        self.outbox.put(record)

    # ------------------------------------------------------------------ #
    def _writer(self) -> None:
        while True:
            record = self.outbox.get()
            if record is None:
                return
            records = [record]
            # Batch every record already waiting into one frame: under load
            # a whole drained micro-batch ships as a single encode+sendall.
            while True:
                try:
                    extra = self.outbox.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._send_responses(records)
                    return
                records.append(extra)
            self._send_responses(records)

    def _send_responses(self, records) -> None:
        try:
            wire.send_frame(
                self.sock,
                FrameType.RESPONSE_BATCH,
                wire.encode_response_batch(records),
                lock=self.send_lock,
            )
        except OSError:
            logger.warning(
                "worker %d: parent gone, dropping %d response(s)",
                self.index,
                len(records),
            )

    def _heartbeat(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            stats = self.replica.stats()
            self._heartbeat_seq += 1
            try:
                wire.send_frame(
                    self.sock,
                    FrameType.HEARTBEAT,
                    wire.encode_heartbeat(
                        self.index,
                        self._heartbeat_seq,
                        self.generation,
                        stats["healthy"],
                        stats["inflight"],
                        stats["dispatched"],
                        stats["completed"],
                        stats["queued"],
                        stats["latency_samples"],
                        stats["ewma_depth"],
                        stats["recent_p95_ms"],
                    ),
                    lock=self.send_lock,
                )
            except OSError:
                return

    # ------------------------------------------------------------------ #
    def _stats(self) -> dict:
        return {
            "index": self.index,
            "generation": self.generation,
            "loop": self.loop.stats(),
            "replica": self.replica.stats(),
        }

    def _handle_install(self, payload: bytes) -> None:
        (meta_len,) = wire._COUNT.unpack_from(payload, 0)
        meta = wire.decode_json(payload[wire._COUNT.size : wire._COUNT.size + meta_len])
        blob = payload[wire._COUNT.size + meta_len :]
        outcome = {"name": meta["name"], "generation": meta["generation"], "ok": True}
        try:
            import hashlib

            digest = hashlib.sha256(blob).hexdigest()
            if digest != meta["sha256"]:
                raise ServingError(
                    f"artifact {meta['name']} checksum mismatch "
                    f"({digest[:12]} != {meta['sha256'][:12]})"
                )
            outcome["sha256"] = digest
            if meta["name"] == MODEL_WEIGHTS:
                module = getattr(getattr(self.planner, "backbone", None), "module", None)
                if module is None:
                    raise ServingError("planner backbone has no module to load weights into")
                # Loading through the Module (not warm_start) leaves the
                # backbone's fit_generation untouched — the pinned planner
                # must not observe a generation change — so the caches are
                # invalidated explicitly instead.
                module.load_state_dict(unpack_state_dict(blob))
            elif meta["name"] == GENERATOR_STATE:
                generator = unpack_generator(blob)
                if repr(generator.retrieval_key()) != meta["identity"]:
                    raise ServingError(
                        "generator artifact identity drifted in transit: "
                        f"{meta['identity']} != {generator.retrieval_key()!r}"
                    )
                self.planner.candidate_generator = generator
            else:
                raise ServingError(f"unknown artifact kind {meta['name']!r}")
            invalidate = getattr(self.planner, "invalidate_caches", None)
            if invalidate is not None:
                invalidate()
        except BaseException as exc:  # noqa: BLE001 - shipped in the ACK
            outcome["ok"] = False
            outcome["error"] = f"{type(exc).__name__}: {exc}"
        wire.send_frame(
            self.sock,
            FrameType.ARTIFACT_ACK,
            wire.encode_json(outcome),
            lock=self.send_lock,
        )
