"""Length-prefixed binary wire protocol for distributed serving.

Every message between a :class:`~repro.distributed.remote.RemoteReplicaSet`
and its :class:`~repro.distributed.worker.ReplicaWorker` processes is one
*frame*: a fixed :data:`FRAME_HEADER` (payload length + frame type) followed
by the payload.  The hot path — request batches, response batches and
heartbeats — is struct-packed with batched encode/decode so serialization
cost is a few hundred nanoseconds per request (measured in the
``distributed_serving`` bench section); control frames (hello, stats,
artifact installs) are JSON, where schema flexibility matters more than
nanoseconds.

The payloads deliberately carry **durations, never timestamps**:
``time.perf_counter()`` values are process-local (each process picks its
own epoch), so a worker-side ``enqueued_at`` compared against a
parent-side ``completed_at`` would produce garbage latencies — negative or
off by the processes' epoch skew.  A response record therefore ships the
worker-measured queue-wait and service *durations*; the parent stamps
arrival/completion on its own clock.

Framing is symmetric: both ends speak :func:`send_frame` /
:func:`recv_frame` over a ``SOCK_STREAM`` socket.  ``recv_frame`` returns
``None`` on a clean EOF (the peer closed), which the reader threads treat
as the connection-level death signal of the failure detector.
"""

from __future__ import annotations

import json
import struct
import threading

from repro.serve.request import ServeRequest
from repro.utils.exceptions import (
    ConfigurationError,
    QueueFullError,
    ServingError,
    StaleGenerationError,
)

__all__ = [
    "FrameType",
    "ResponseRecord",
    "HeartbeatRecord",
    "send_frame",
    "recv_frame",
    "encode_request_batch",
    "decode_request_batch",
    "encode_response_batch",
    "decode_response_batch",
    "encode_heartbeat",
    "decode_heartbeat",
    "encode_json",
    "decode_json",
    "exception_from_record",
]


class FrameType:
    """One byte on the wire naming what the payload is."""

    HELLO = 1  # worker -> parent: JSON identity/capabilities after startup
    REQUEST_BATCH = 2  # parent -> worker: struct-packed request envelopes
    RESPONSE_BATCH = 3  # worker -> parent: struct-packed answers/errors
    HEARTBEAT = 4  # worker -> parent: struct-packed load signals
    STATS_REQUEST = 5  # parent -> worker: empty payload
    STATS_RESPONSE = 6  # worker -> parent: JSON ServingLoop/replica stats
    INSTALL_ARTIFACT = 7  # parent -> worker: JSON meta + binary blob
    ARTIFACT_ACK = 8  # worker -> parent: JSON install outcome
    SHUTDOWN = 9  # parent -> worker: drain dry and exit

    NAMES = {
        1: "hello",
        2: "request_batch",
        3: "response_batch",
        4: "heartbeat",
        5: "stats_request",
        6: "stats_response",
        7: "install_artifact",
        8: "artifact_ack",
        9: "shutdown",
    }


#: ``!IB`` — payload byte length (u32) + frame type (u8), network order.
FRAME_HEADER = struct.Struct("!IB")

#: Upper bound on one frame's payload: catches a corrupted/desynced header
#: before it turns into a multi-gigabyte allocation.  Model-weight artifacts
#: are the largest legitimate frames and stay far under this.
MAX_PAYLOAD_BYTES = 1 << 30

# Request record: id(u64) kind(u8) objective(q) user(q, -1=None)
# max_length(i, -1=None) hist_len(I) path_len(I) tenant_len(H); items
# follow as i64, then the utf-8 tenant id (tenant_len 0 = untenanted —
# tenant names are validated non-empty at registration, so 0 is unambiguous).
_REQUEST_FIXED = struct.Struct("!QBqqiIIH")
#: Open enum of request kinds on the wire.  ``rank`` and ``kg_path`` reuse
#: the positional slots the way the typed API lowers them (k in the
#: objective slot / exclusions in the path slot; source as the history's
#: last item / target in the objective slot), so no new record shapes.
_KIND_CODES = {"next_step": 0, "plan_paths": 1, "rank": 2, "kg_path": 3}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}

# Response record (ok): id(u64) status(u8=0) answer_kind(u8)
# generation(q, -1=None) batch_tag(q, -1=None) queue_wait_s(d) service_s(d)
# item_count(I); answer items follow as i64.
_RESPONSE_OK = struct.Struct("!QBBqqddI")
# Response record (error): id(u64) status(u8=1) name_len(H) message_len(I);
# utf-8 exception name + message follow.
_RESPONSE_ERR = struct.Struct("!QBHI")
_ANSWER_NONE = 0
_ANSWER_INT = 1
_ANSWER_PATH = 2

# Heartbeat: index(i) seq(Q) generation(q) healthy(B) inflight(q)
# dispatched(q) completed(q) queued(q) latency_samples(I)
# ewma_depth(d) p95_ms(d)
_HEARTBEAT = struct.Struct("!iQqBqqqqIdd")

_COUNT = struct.Struct("!I")

#: Exception classes a worker's error response may legally reconstruct as.
#: Anything else (a planner bug's ValueError, say) maps to ServingError with
#: the original class name preserved in the message.
_WIRE_EXCEPTIONS = {
    cls.__name__: cls
    for cls in (ConfigurationError, QueueFullError, ServingError, StaleGenerationError)
}


class ResponseRecord:
    """One decoded response: an answer or a remote error, plus the
    worker-measured durations (worker-clock; see the module docstring)."""

    __slots__ = (
        "request_id",
        "ok",
        "answer",
        "served_generation",
        "batch_tag",
        "queue_wait_s",
        "service_s",
        "error_name",
        "error_message",
    )

    def __init__(
        self,
        request_id: int,
        ok: bool,
        answer=None,
        served_generation: "int | None" = None,
        batch_tag: "int | None" = None,
        queue_wait_s: float = 0.0,
        service_s: float = 0.0,
        error_name: "str | None" = None,
        error_message: "str | None" = None,
    ) -> None:
        self.request_id = request_id
        self.ok = ok
        self.answer = answer
        self.served_generation = served_generation
        self.batch_tag = batch_tag
        self.queue_wait_s = queue_wait_s
        self.service_s = service_s
        self.error_name = error_name
        self.error_message = error_message


class HeartbeatRecord:
    """One decoded worker heartbeat (the dispatcher's remote load signals)."""

    __slots__ = (
        "index",
        "seq",
        "generation",
        "healthy",
        "inflight",
        "dispatched",
        "completed",
        "queued",
        "latency_samples",
        "ewma_depth",
        "p95_ms",
    )

    def __init__(self, *values) -> None:
        for name, value in zip(self.__slots__, values):
            setattr(self, name, value)


# --------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------- #
def send_frame(sock, frame_type: int, payload: bytes = b"", lock: "threading.Lock | None" = None) -> int:
    """Write one frame; returns bytes written.  ``lock`` (when given)
    serialises concurrent senders so interleaved frames cannot tear."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ServingError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte wire bound"
        )
    frame = FRAME_HEADER.pack(len(payload), frame_type) + payload
    if lock is None:
        sock.sendall(frame)
    else:
        with lock:
            sock.sendall(frame)
    return len(frame)


def _recv_exact(sock, count: int) -> "bytes | None":
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary,
    ServingError on EOF mid-frame (a torn write — the peer died sending)."""
    chunks: "list[bytes]" = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ServingError(
                f"connection closed mid-frame ({count - remaining} of {count} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


def recv_frame(sock) -> "tuple[int, bytes] | None":
    """Read one frame; ``None`` on clean EOF (the peer closed)."""
    header = _recv_exact(sock, FRAME_HEADER.size)
    if header is None:
        return None
    length, frame_type = FRAME_HEADER.unpack(header)
    if length > MAX_PAYLOAD_BYTES:
        raise ServingError(
            f"frame header announces {length} bytes (> {MAX_PAYLOAD_BYTES}); "
            "the stream is desynchronized"
        )
    if length == 0:
        return frame_type, b""
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ServingError("connection closed between frame header and payload")
    return frame_type, payload


# --------------------------------------------------------------------- #
# Request batches (parent -> worker)
# --------------------------------------------------------------------- #
def encode_request_batch(entries: "list[tuple[int, ServeRequest]]") -> bytes:
    """Pack ``(request_id, envelope)`` pairs into one REQUEST_BATCH payload."""
    parts = [_COUNT.pack(len(entries))]
    for request_id, request in entries:
        history = request.history
        path = request.path_so_far
        tenant = b"" if request.tenant is None else request.tenant.encode("utf-8")
        parts.append(
            _REQUEST_FIXED.pack(
                request_id,
                _KIND_CODES[request.kind],
                request.objective,
                -1 if request.user_index is None else request.user_index,
                -1 if request.max_length is None else request.max_length,
                len(history),
                len(path),
                len(tenant),
            )
        )
        if history:
            parts.append(struct.pack(f"!{len(history)}q", *history))
        if path:
            parts.append(struct.pack(f"!{len(path)}q", *path))
        if tenant:
            parts.append(tenant)
    return b"".join(parts)


def decode_request_batch(payload: bytes) -> "list[tuple[int, ServeRequest]]":
    """Unpack a REQUEST_BATCH payload into fresh envelopes (each with its
    own worker-side :class:`~concurrent.futures.Future`)."""
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    entries: "list[tuple[int, ServeRequest]]" = []
    for _ in range(count):
        (
            request_id,
            kind_code,
            objective,
            user_index,
            max_length,
            hist_len,
            path_len,
            tenant_len,
        ) = _REQUEST_FIXED.unpack_from(payload, offset)
        offset += _REQUEST_FIXED.size
        history = struct.unpack_from(f"!{hist_len}q", payload, offset)
        offset += 8 * hist_len
        path = struct.unpack_from(f"!{path_len}q", payload, offset)
        offset += 8 * path_len
        tenant = payload[offset : offset + tenant_len].decode("utf-8") or None
        offset += tenant_len
        entries.append(
            (
                request_id,
                ServeRequest(
                    kind=_KIND_NAMES[kind_code],
                    history=history,
                    objective=objective,
                    path_so_far=path,
                    user_index=None if user_index < 0 else user_index,
                    max_length=None if max_length < 0 else max_length,
                    tenant=tenant,
                ),
            )
        )
    return entries


# --------------------------------------------------------------------- #
# Response batches (worker -> parent)
# --------------------------------------------------------------------- #
def encode_response_batch(records: "list[ResponseRecord]") -> bytes:
    """Pack answered/errored requests into one RESPONSE_BATCH payload."""
    parts = [_COUNT.pack(len(records))]
    for record in records:
        if record.ok:
            answer = record.answer
            if answer is None:
                answer_kind, items = _ANSWER_NONE, ()
            elif isinstance(answer, int):
                answer_kind, items = _ANSWER_INT, (answer,)
            else:
                answer_kind, items = _ANSWER_PATH, tuple(int(item) for item in answer)
            parts.append(
                _RESPONSE_OK.pack(
                    record.request_id,
                    0,
                    answer_kind,
                    -1 if record.served_generation is None else record.served_generation,
                    -1 if record.batch_tag is None else record.batch_tag,
                    record.queue_wait_s,
                    record.service_s,
                    len(items),
                )
            )
            if items:
                parts.append(struct.pack(f"!{len(items)}q", *items))
        else:
            name = (record.error_name or "ServingError").encode("utf-8")
            message = (record.error_message or "").encode("utf-8")
            parts.append(_RESPONSE_ERR.pack(record.request_id, 1, len(name), len(message)))
            parts.append(name)
            parts.append(message)
    return b"".join(parts)


def decode_response_batch(payload: bytes) -> "list[ResponseRecord]":
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    records: "list[ResponseRecord]" = []
    for _ in range(count):
        status = payload[offset + 8]
        if status == 0:
            (
                request_id,
                _,
                answer_kind,
                generation,
                batch_tag,
                queue_wait_s,
                service_s,
                item_count,
            ) = _RESPONSE_OK.unpack_from(payload, offset)
            offset += _RESPONSE_OK.size
            items = struct.unpack_from(f"!{item_count}q", payload, offset)
            offset += 8 * item_count
            if answer_kind == _ANSWER_NONE:
                answer = None
            elif answer_kind == _ANSWER_INT:
                answer = items[0]
            else:
                answer = list(items)
            records.append(
                ResponseRecord(
                    request_id,
                    True,
                    answer=answer,
                    served_generation=None if generation < 0 else generation,
                    batch_tag=None if batch_tag < 0 else batch_tag,
                    queue_wait_s=queue_wait_s,
                    service_s=service_s,
                )
            )
        else:
            request_id, _, name_len, message_len = _RESPONSE_ERR.unpack_from(
                payload, offset
            )
            offset += _RESPONSE_ERR.size
            name = payload[offset : offset + name_len].decode("utf-8")
            offset += name_len
            message = payload[offset : offset + message_len].decode("utf-8")
            offset += message_len
            records.append(
                ResponseRecord(
                    request_id, False, error_name=name, error_message=message
                )
            )
    return records


def exception_from_record(record: ResponseRecord) -> Exception:
    """Rebuild a caller-visible exception from an error response.

    Exceptions in the package hierarchy round-trip as themselves (the
    ``reject`` admission policy's :class:`QueueFullError` must stay
    catchable as QueueFullError through the transport); anything else
    becomes a :class:`ServingError` that names the original class.
    """
    cls = _WIRE_EXCEPTIONS.get(record.error_name or "")
    if cls is not None:
        return cls(record.error_message or "")
    return ServingError(
        f"remote worker error ({record.error_name}): {record.error_message}"
    )


# --------------------------------------------------------------------- #
# Heartbeats (worker -> parent)
# --------------------------------------------------------------------- #
def encode_heartbeat(
    index: int,
    seq: int,
    generation: int,
    healthy: bool,
    inflight: int,
    dispatched: int,
    completed: int,
    queued: int,
    latency_samples: int,
    ewma_depth: float,
    p95_ms: float,
) -> bytes:
    return _HEARTBEAT.pack(
        index,
        seq,
        generation,
        1 if healthy else 0,
        inflight,
        dispatched,
        completed,
        queued,
        latency_samples,
        ewma_depth,
        p95_ms,
    )


def decode_heartbeat(payload: bytes) -> HeartbeatRecord:
    values = list(_HEARTBEAT.unpack(payload))
    values[3] = bool(values[3])
    return HeartbeatRecord(*values)


# --------------------------------------------------------------------- #
# JSON control payloads
# --------------------------------------------------------------------- #
def encode_json(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    return json.loads(payload.decode("utf-8"))
