"""Configuration surface of the distributed (multi-process) serving layer.

Four knobs, resolved with the established precedence rule (explicit
argument > environment variable > built-in default):

* ``transport`` (``REPRO_TRANSPORT``) — ``inproc`` (the in-process
  :class:`~repro.replica.ReplicaSet`, the default) or ``process`` (a
  :class:`~repro.distributed.remote.RemoteReplicaSet` of forked
  :class:`~repro.distributed.worker.ReplicaWorker` processes behind the
  socket transport).
* ``heartbeat_interval`` (``REPRO_HEARTBEAT_INTERVAL``) — seconds between
  a worker's load-signal heartbeats.  The dispatcher's EWMA-depth/p95
  scores are only as fresh as this, and the failure detector's clock ticks
  in units of it.
* ``heartbeat_misses`` (``REPRO_HEARTBEAT_MISSES``) — consecutive missed
  heartbeat intervals before the failure detector marks a worker
  unhealthy and re-dispatches its pending work to the survivors.
* ``probation_beats`` (``REPRO_PROBATION_BEATS``) — consecutive heartbeats
  a suspected worker must deliver before it rejoins dispatch (the
  probation window: a worker that flaps in and out of responsiveness must
  not oscillate back into the healthy pool on its first sign of life).
"""

from __future__ import annotations

import os

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "VALID_TRANSPORTS",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_MISSES",
    "DEFAULT_PROBATION_BEATS",
    "resolve_transport",
    "resolve_heartbeat_interval",
    "resolve_heartbeat_misses",
    "resolve_probation_beats",
]

VALID_TRANSPORTS = ("inproc", "process")

_ENV_TRANSPORT = "REPRO_TRANSPORT"
_ENV_HEARTBEAT_INTERVAL = "REPRO_HEARTBEAT_INTERVAL"
_ENV_HEARTBEAT_MISSES = "REPRO_HEARTBEAT_MISSES"
_ENV_PROBATION_BEATS = "REPRO_PROBATION_BEATS"

DEFAULT_TRANSPORT = "inproc"
DEFAULT_HEARTBEAT_INTERVAL = 0.05
DEFAULT_HEARTBEAT_MISSES = 5
DEFAULT_PROBATION_BEATS = 3


def resolve_transport(value: "str | None" = None) -> str:
    """Serving transport: explicit > ``REPRO_TRANSPORT`` > ``inproc``."""
    source = "argument"
    if value is None:
        env = os.environ.get(_ENV_TRANSPORT)
        if env is None or env == "":
            return DEFAULT_TRANSPORT
        value, source = env, f"${_ENV_TRANSPORT}"
    transport = str(value).lower()
    if transport not in VALID_TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {', '.join(VALID_TRANSPORTS)}, "
            f"got {value!r} (from {source})"
        )
    return transport


def resolve_heartbeat_interval(value: "float | None" = None) -> float:
    """Heartbeat period: explicit > ``REPRO_HEARTBEAT_INTERVAL`` > 0.05 s."""
    source = "argument"
    if value is None:
        env = os.environ.get(_ENV_HEARTBEAT_INTERVAL)
        if env is None or env == "":
            return DEFAULT_HEARTBEAT_INTERVAL
        value, source = env, f"${_ENV_HEARTBEAT_INTERVAL}"
    try:
        parsed = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"heartbeat_interval must be a number of seconds, got {value!r} "
            f"(from {source})"
        ) from None
    if parsed != parsed or parsed in (float("inf"), float("-inf")) or parsed <= 0:
        raise ConfigurationError(
            f"heartbeat_interval must be positive finite seconds, got {parsed} "
            f"(from {source})"
        )
    return parsed


def _resolve_positive_int(value, env_name: str, default: int, knob: str) -> int:
    source = "argument"
    if value is None:
        env = os.environ.get(env_name)
        if env is None or env == "":
            return default
        value, source = env, f"${env_name}"
    try:
        parsed = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{knob} must be an integer, got {value!r} (from {source})"
        ) from None
    if parsed < 1:
        raise ConfigurationError(
            f"{knob} must be at least 1, got {parsed} (from {source})"
        )
    return parsed


def resolve_heartbeat_misses(value: "int | None" = None) -> int:
    """Missed-heartbeat budget: explicit > ``REPRO_HEARTBEAT_MISSES`` > 5."""
    return _resolve_positive_int(
        value, _ENV_HEARTBEAT_MISSES, DEFAULT_HEARTBEAT_MISSES, "heartbeat_misses"
    )


def resolve_probation_beats(value: "int | None" = None) -> int:
    """Probation window: explicit > ``REPRO_PROBATION_BEATS`` > 3 beats."""
    return _resolve_positive_int(
        value, _ENV_PROBATION_BEATS, DEFAULT_PROBATION_BEATS, "probation_beats"
    )
