"""Configuration surface of the distributed (multi-process) serving layer.

The four knobs (``transport`` / ``REPRO_TRANSPORT``, ``heartbeat_interval``
/ ``REPRO_HEARTBEAT_INTERVAL``, ``heartbeat_misses`` /
``REPRO_HEARTBEAT_MISSES``, ``probation_beats`` / ``REPRO_PROBATION_BEATS``)
are rows of the declarative resolver table in :mod:`repro.config`; this
module re-exports their resolvers for compatibility.
"""

from __future__ import annotations

from repro.config import (
    CONFIG_FIELDS,
    VALID_TRANSPORTS,
    resolve_heartbeat_interval,
    resolve_heartbeat_misses,
    resolve_probation_beats,
    resolve_transport,
)

__all__ = [
    "VALID_TRANSPORTS",
    "DEFAULT_TRANSPORT",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_MISSES",
    "DEFAULT_PROBATION_BEATS",
    "resolve_transport",
    "resolve_heartbeat_interval",
    "resolve_heartbeat_misses",
    "resolve_probation_beats",
]

DEFAULT_TRANSPORT = CONFIG_FIELDS["transport"].default
DEFAULT_HEARTBEAT_INTERVAL = CONFIG_FIELDS["heartbeat_interval"].default
DEFAULT_HEARTBEAT_MISSES = CONFIG_FIELDS["heartbeat_misses"].default
DEFAULT_PROBATION_BEATS = CONFIG_FIELDS["probation_beats"].default
