"""Multi-process replica serving behind the in-process ``ReplicaSet`` surface.

:class:`RemoteReplicaSet` keeps the exact submission surface of
:class:`~repro.replica.set.ReplicaSet` (``submit`` / ``submit_next_step`` /
``submit_plan_paths`` / ``enqueue`` / ``stats`` / ``refit`` / context
manager), so every traffic driver — ``replay_lockstep``,
``run_open_loop``, ``run_replicated_open_loop`` — runs against it
unchanged.  Behind the surface each replica is a forked
:class:`~repro.distributed.worker.ReplicaWorker` *process* (its own GIL,
plan-cache shards and K/V arenas) reached over an ``AF_UNIX`` socketpair
speaking the :mod:`repro.distributed.wire` protocol.

What replaces the shared-memory signals of the in-process set:

* **Heartbeat-fed dispatch** — the existing
  :class:`~repro.replica.dispatch.Dispatcher` is reused verbatim;
  :class:`RemoteReplica` duck-types the replica scoring surface
  (``healthy`` / ``cold()`` / ``score()``) from the latest HEARTBEAT
  frame's EWMA in-flight depth and recent p95 instead of locking shared
  counters.
* **A real failure detector** — ``healthy`` is now a verdict, not a flag:
  a worker that misses ``heartbeat_misses`` consecutive heartbeat
  intervals (hung, stopped, or livelocked) is *suspected* and leaves the
  dispatch pool; a worker whose socket hits EOF (killed, crashed) is
  *dead*.  Either way its registered in-flight requests re-dispatch to the
  survivors through the normal ``enqueue`` path — the same futures, never
  dropped — and duplicate late answers are discarded by the pending-table
  discipline.  A suspected worker that resumes heartbeating rejoins after
  ``probation_beats`` consecutive beats (dead workers never rejoin).
* **A versioned-artifact refit** — :class:`RemoteRefitCoordinator` trains
  the next generation off-path in the parent, publishes its model weights
  and retrieval-generator state to the :class:`ArtifactRegistry` keyed by
  ``(name, generation)``, forks standby workers, ships and verifies the
  artifacts over INSTALL_ARTIFACT frames (checksummed; the wire copy is
  authoritatively loaded into each standby's backbone), then performs the
  same atomic dispatcher flip and zero-drop drain-dry retirement as the
  in-process coordinator.

Clock discipline (the cross-process timestamp fix): the parent stamps
``enqueued_at`` at send time and ``completed_at`` at response receipt —
both on ITS ``perf_counter`` clock, so driver latencies are always
non-negative — while queue-wait/service durations are measured inside the
owning worker on the worker's clock and cross the wire as durations only.

Exactness contract: with every worker at one shared generation (the
deterministic factory + the artifact registry), responses are
bit-identical to the in-process ``ReplicaSet`` for the same request trace
at any worker count — the parity suite in ``tests/distributed`` mirrors
``tests/replica``'s, and the ``remote_parity`` gate bit enforces it in CI.
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence

from repro.distributed import wire
from repro.distributed.artifacts import ArtifactRegistry, artifacts_from_planner
from repro.distributed.config import (
    resolve_heartbeat_interval,
    resolve_heartbeat_misses,
    resolve_probation_beats,
)
from repro.distributed.wire import FrameType
from repro.distributed.worker import HELLO_TIMEOUT, ReplicaWorker, spawn_worker
from repro.obs.registry import MetricGroup, get_registry
from repro.obs.trace import NULL_TRACER
from repro.replica.config import resolve_num_replicas
from repro.replica.dispatch import Dispatcher
from repro.replica.replica import LATENCY_WEIGHT, MIN_WARM_SAMPLES
from repro.serve.admission import AdmissionController
from repro.serve.api import Response, TypedServingSurface, warn_positional_submit
from repro.serve.request import ServeRequest
from repro.shard.config import fork_available
from repro.utils.exceptions import ConfigurationError, ServingError

__all__ = ["RemoteReplica", "RemoteReplicaSet", "RemoteRefitCoordinator"]

logger = logging.getLogger(__name__)

#: Seconds to wait for a worker's loop/admission stats round-trip before
#: falling back to the last cached snapshot.
STATS_TIMEOUT = 5.0
#: Seconds to wait for an artifact-install ACK during a refit.
ARTIFACT_TIMEOUT = 60.0
#: Seconds a graceful retirement waits for a draining worker's pending
#: table to empty before re-dispatching the leftovers.
DRAIN_TIMEOUT = 30.0


class _PlannerProxy:
    """The few planner attributes traffic drivers read, served from HELLO."""

    def __init__(self, hello: "dict | None") -> None:
        hello = hello or {}
        self.max_length = int(hello.get("max_length", 20))
        self.num_workers = int(hello.get("num_workers", 1))
        self.shard_backend = hello.get("shard_backend") or "serial"
        self.vocab_shards = int(hello.get("vocab_shards") or 1)
        self.name = hello.get("planner", "remote")


class _RemoteAdmission:
    """Fleet admission view over the workers' controllers (duck-types
    ``describe``/``counters`` like the in-process ``_FleetAdmission``)."""

    def __init__(self, remote_set: "RemoteReplicaSet", template: AdmissionController) -> None:
        self._set = remote_set
        self._template = template

    def describe(self) -> dict:
        return self._template.describe()

    def counters(self) -> dict:
        return self._set._admission_counters()


class RemoteReplica:
    """Parent-side view of one worker: pending table + heartbeat signals.

    Duck-types the :class:`~repro.replica.replica.Replica` surface the
    :class:`~repro.replica.dispatch.Dispatcher` scores and routes by —
    fed by HEARTBEAT frames instead of shared-memory counters.
    """

    def __init__(self, worker: ReplicaWorker, slot: "int | None" = None) -> None:
        self.worker = worker
        self.index = worker.index
        self.generation = worker.generation
        #: Stable fleet slot (0..num_replicas-1), preserved across refits —
        #: tenant placement maps tenants to slots, not to worker indices
        #: (which grow monotonically as generations are spawned).
        self.slot = slot if slot is not None else worker.index
        self.spawned_at = time.perf_counter()
        self._lock = threading.Lock()
        self._pending: "dict[int, ServeRequest]" = {}
        self._dead = False
        self._suspected = False
        self._retiring = False
        self._probation = 0
        self._heartbeats = 0
        self._last_heartbeat_at: "float | None" = None
        self._hb: "wire.HeartbeatRecord | None" = None
        self._dispatched = 0
        self._completed = 0
        self.hello_event = threading.Event()
        self.hello: "dict | None" = None
        self._stats_serial = threading.Lock()
        self._stats_event = threading.Event()
        self._stats_cache: "dict | None" = None
        self.ack_queue: "queue.Queue[dict]" = queue.Queue()

    # ----------------------------- dispatcher surface ------------------ #
    @property
    def healthy(self) -> bool:
        with self._lock:
            return not (self._dead or self._suspected or self._retiring)

    def cold(self) -> bool:
        with self._lock:
            hb = self._hb
        return hb is None or hb.latency_samples < MIN_WARM_SAMPLES

    def score(self) -> float:
        with self._lock:
            hb = self._hb
        if hb is None:
            return 0.0
        return hb.ewma_depth + LATENCY_WEIGHT * (hb.p95_ms / 1000.0)

    def on_dispatch(self) -> None:
        with self._lock:
            self._dispatched += 1

    def on_dispatch_failed(self) -> None:
        with self._lock:
            self._dispatched -= 1

    def on_complete(self) -> None:
        with self._lock:
            self._completed += 1

    # ----------------------------- pending table ----------------------- #
    def register(self, request_id: int, request: ServeRequest) -> None:
        with self._lock:
            self._pending[request_id] = request

    def unregister(self, request_id: int) -> "ServeRequest | None":
        with self._lock:
            return self._pending.pop(request_id, None)

    def drain_pending(self) -> "list[ServeRequest]":
        """Remove and return every in-flight request (the re-dispatch set)."""
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        return pending

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # ----------------------------- health transitions ------------------ #
    def mark_dead(self) -> bool:
        """Transition to dead (terminal); True if this call transitioned."""
        with self._lock:
            if self._dead:
                return False
            self._dead = True
            self._suspected = False
            return True

    def mark_suspected(self) -> bool:
        with self._lock:
            if self._dead or self._suspected or self._retiring:
                return False
            self._suspected = True
            self._probation = 0
            return True

    def mark_retiring(self) -> None:
        with self._lock:
            self._retiring = True

    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead

    @property
    def suspected(self) -> bool:
        with self._lock:
            return self._suspected

    @property
    def retiring(self) -> bool:
        with self._lock:
            return self._retiring

    def record_heartbeat(self, hb: "wire.HeartbeatRecord", now: float, probation_beats: int) -> bool:
        """Fold one heartbeat in; True when a suspected worker just
        completed probation and rejoins dispatch."""
        with self._lock:
            self._hb = hb
            self._heartbeats += 1
            self._last_heartbeat_at = now
            if self._suspected and not self._dead:
                self._probation += 1
                if self._probation >= probation_beats:
                    self._suspected = False
                    self._probation = 0
                    return True
            return False

    def heartbeat_age(self, now: float) -> float:
        with self._lock:
            last = self._last_heartbeat_at
        return now - (last if last is not None else self.spawned_at)

    # ----------------------------- transport helpers ------------------- #
    def send_requests(self, entries: "list[tuple[int, ServeRequest]]") -> int:
        return wire.send_frame(
            self.worker.sock,
            FrameType.REQUEST_BATCH,
            wire.encode_request_batch(entries),
            lock=self.worker.send_lock,
        )

    def send_control(self, frame_type: int, payload: bytes = b"") -> None:
        wire.send_frame(
            self.worker.sock, frame_type, payload, lock=self.worker.send_lock
        )

    def fetch_stats(self, timeout: float = STATS_TIMEOUT) -> "dict | None":
        """One STATS round-trip; the cached snapshot when the worker is
        dead/unresponsive (retired workers keep their last numbers)."""
        if self.dead:
            return self._stats_cache
        with self._stats_serial:
            self._stats_event.clear()
            try:
                self.send_control(FrameType.STATS_REQUEST)
            except OSError:
                return self._stats_cache
            self._stats_event.wait(timeout)
            return self._stats_cache

    def _on_stats_response(self, payload: dict) -> None:
        self._stats_cache = payload
        self._stats_event.set()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        now = time.perf_counter()
        with self._lock:
            hb = self._hb
            snapshot = {
                "index": self.index,
                "generation": self.generation,
                "pid": self.worker.pid,
                "healthy": not (self._dead or self._suspected or self._retiring),
                "dead": self._dead,
                "suspected": self._suspected,
                "retiring": self._retiring,
                "dispatched": self._dispatched,
                "completed": self._completed,
                "pending": len(self._pending),
                "heartbeats": self._heartbeats,
                "last_heartbeat_age_ms": round(
                    1000.0
                    * (
                        now
                        - (
                            self._last_heartbeat_at
                            if self._last_heartbeat_at is not None
                            else self.spawned_at
                        )
                    ),
                    3,
                ),
            }
        snapshot["inflight"] = hb.inflight if hb else 0
        snapshot["ewma_depth"] = round(hb.ewma_depth, 3) if hb else 0.0
        snapshot["recent_p95_ms"] = round(hb.p95_ms, 3) if hb else 0.0
        snapshot["latency_samples"] = hb.latency_samples if hb else 0
        snapshot["queued"] = hb.queued if hb else 0
        return snapshot


class RemoteReplicaSet(TypedServingSurface):
    """N worker *processes* behind the ``ReplicaSet``/``Dispatcher`` surface.

    Parameters mirror :class:`~repro.replica.set.ReplicaSet` plus the
    transport knobs (``heartbeat_interval`` / ``heartbeat_misses`` /
    ``probation_beats``, each with a ``REPRO_*`` environment default).
    ``planner_factory`` is called ONCE per deployed generation — the fork's
    copy-on-write pages hand every worker its own copy, and a refit ships
    the next generation's fitted state through the artifact registry
    instead of retraining per worker (the distributed deployment model:
    one versioned artifact, N installs).

    Multi-tenant fleets add two knobs.  ``tenant_factory`` (zero-arg, runs
    *inside each forked child* after its fresh metrics registry) gives
    every worker its own :class:`~repro.tenant.registry.TenantRegistry`.
    ``tenant_placement`` maps tenant id -> fleet *slots* (0..N-1; slots
    survive refits, worker indices do not): a tenant's requests dispatch
    only to its slots' workers, and a tenant-scoped refit ships artifacts
    only to those workers — the process boundary becomes the tenant
    isolation boundary.  Unplaced tenants (and untenanted requests) use
    the whole fleet.
    """

    _MAX_DISPATCH_ATTEMPTS = 8

    def __init__(
        self,
        planner_factory: "Callable[[], object]",
        num_replicas: "int | None" = None,
        num_queues: "int | None" = None,
        max_queue_depth: "int | None" = None,
        admission_policy: "str | None" = None,
        drain_deadline: "float | None" = None,
        dispatch_policy: "str | None" = None,
        tracer: "object | None" = None,
        heartbeat_interval: "float | None" = None,
        heartbeat_misses: "int | None" = None,
        probation_beats: "int | None" = None,
        tenant_factory: "Callable[[], object] | None" = None,
        tenant_placement: "dict | None" = None,
    ) -> None:
        if not callable(planner_factory):
            raise ConfigurationError(
                "RemoteReplicaSet needs a zero-arg planner_factory returning a "
                "fitted planner (deployed to every worker via fork + artifacts)"
            )
        if not fork_available():
            raise ConfigurationError(
                "the process transport needs the 'fork' start method (fitted "
                "planners are shipped to workers by copy-on-write); use the "
                "in-process ReplicaSet on this platform"
            )
        self._factory = planner_factory
        self.num_replicas = resolve_num_replicas(num_replicas)
        if tenant_factory is not None and not callable(tenant_factory):
            raise ConfigurationError(
                "tenant_factory must be a zero-arg callable returning a "
                "TenantRegistry (it runs inside each forked worker)"
            )
        self._tenant_factory = tenant_factory
        self.tenant_placement = self._validate_placement(tenant_placement)
        #: Per-tenant dispatchers over the tenant's placed slots; rebuilt on
        #: every fleet change (spawn, flip).  Tenants without placement are
        #: absent and fall through to the fleet-wide dispatcher.
        self._tenant_dispatchers: "dict[str, Dispatcher]" = {}
        self._dispatch_policy = dispatch_policy
        self.heartbeat_interval = resolve_heartbeat_interval(heartbeat_interval)
        self.heartbeat_misses = resolve_heartbeat_misses(heartbeat_misses)
        self.probation_beats = resolve_probation_beats(probation_beats)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._loop_kwargs = dict(
            num_queues=num_queues,
            max_queue_depth=max_queue_depth,
            admission_policy=admission_policy,
            drain_deadline=drain_deadline,
        )
        self._admission_template = AdmissionController(
            max_queue_depth=max_queue_depth,
            policy=admission_policy,
            drain_deadline=drain_deadline,
        )
        self.admission = _RemoteAdmission(self, self._admission_template)
        self.registry = ArtifactRegistry()
        self._flip_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._started = False
        self._closed = False
        self._generation = 1
        self._next_worker_index = 0
        self._request_ids = itertools.count(1)
        self._reader_threads: "dict[int, threading.Thread]" = {}
        self._retired_snapshots: "list[dict]" = []
        registry = get_registry()
        self._metrics = MetricGroup(
            registry,
            registry.scope("distributed.transport"),
            counters=(
                "requests_sent",
                "responses",
                "duplicate_responses",
                "redispatched",
                "heartbeats",
                "marked_unhealthy",
                "rejoined",
                "send_errors",
                "bytes_sent",
            ),
        )
        # Lists and dispatcher must exist BEFORE the first fork: each
        # spawned worker's reader thread may touch them immediately (a
        # worker that dies at startup reaches _on_worker_eof right away).
        self._active: "list[RemoteReplica]" = []
        self._retiring: "list[RemoteReplica]" = []
        self.dispatcher = Dispatcher([], policy=dispatch_policy)
        self.refit_coordinator = RemoteRefitCoordinator(self)
        # Train the first generation once and deploy it to every worker by
        # fork; its artifacts are versioned from the start so the registry
        # answers "what does generation 1 serve?" from day one.
        planner = self._factory()
        if not hasattr(planner, "plan_for_requests"):
            raise ConfigurationError(
                "planner_factory must return a planner with plan_for_requests() "
                f"(got {type(planner).__name__})"
            )
        for artifact in artifacts_from_planner(planner, self._generation):
            self.registry.publish(artifact)
        for slot in range(self.num_replicas):
            replica = self._spawn_replica(planner, self._generation, slot=slot)
            with self._flip_lock:
                self._active.append(replica)
        self.dispatcher.reset(self._active)
        self._rebuild_tenant_dispatchers(self._active)
        self._await_hellos(self._active)
        self._detector_stop = threading.Event()
        self._detector = threading.Thread(
            target=self._failure_detector, name="repro-failure-detector", daemon=True
        )
        self._detector.start()

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _validate_placement(self, placement: "dict | None") -> "dict | None":
        if placement is None:
            return None
        validated: "dict[str, tuple[int, ...]]" = {}
        for tenant, slots in placement.items():
            if not isinstance(tenant, str) or not tenant:
                raise ConfigurationError(
                    f"tenant placement keys must be tenant ids, got {tenant!r}"
                )
            slot_tuple = tuple(int(slot) for slot in slots)
            if not slot_tuple:
                raise ConfigurationError(
                    f"tenant {tenant!r} placement must name at least one fleet slot"
                )
            for slot in slot_tuple:
                if not 0 <= slot < self.num_replicas:
                    raise ConfigurationError(
                        f"tenant {tenant!r} placement slot {slot} is outside the "
                        f"fleet (0..{self.num_replicas - 1})"
                    )
            validated[tenant] = slot_tuple
        return validated

    def _rebuild_tenant_dispatchers(self, active: "list[RemoteReplica]") -> None:
        """One dispatcher per placed tenant, over its slots' live workers."""
        if not self.tenant_placement:
            return
        by_slot = {replica.slot: replica for replica in active}
        dispatchers: "dict[str, Dispatcher]" = {}
        for tenant, slots in self.tenant_placement.items():
            members = [by_slot[slot] for slot in slots if slot in by_slot]
            dispatchers[tenant] = Dispatcher(members, policy=self._dispatch_policy)
        self._tenant_dispatchers = dispatchers

    def _forget_everywhere(self, replica: RemoteReplica) -> None:
        """Drop a failed worker from the fleet dispatcher AND every tenant
        dispatcher it was placed in."""
        self.dispatcher.forget(replica)
        for dispatcher in self._tenant_dispatchers.values():
            dispatcher.forget(replica)

    def _replicas_for_tenants(
        self, replicas: "list[RemoteReplica]", tenants: "Sequence[str] | None"
    ) -> "list[RemoteReplica]":
        """The subset of ``replicas`` serving any of ``tenants`` under the
        placement map (everything, when unscoped or no placement applies)."""
        if tenants is None or not self.tenant_placement:
            return list(replicas)
        slots: "set[int]" = set()
        for tenant in tenants:
            slots.update(self.tenant_placement.get(tenant, ()))
        return [replica for replica in replicas if replica.slot in slots]

    def _spawn_replica(
        self, planner, generation: int, slot: "int | None" = None
    ) -> RemoteReplica:
        with self._state_lock:
            index = self._next_worker_index
            self._next_worker_index += 1
        inherited = [
            replica.worker.sock.fileno()
            for replica in self._known_replicas()
            if not replica.dead
        ]
        worker = spawn_worker(
            planner,
            index,
            generation,
            loop_kwargs=self._loop_kwargs,
            heartbeat_interval=self.heartbeat_interval,
            inherited_fds=inherited,
            tenant_factory=self._tenant_factory,
        )
        replica = RemoteReplica(worker, slot=slot)
        thread = threading.Thread(
            target=self._reader_loop,
            args=(replica,),
            name=f"repro-remote-reader-{index}",
            daemon=True,
        )
        self._reader_threads[index] = thread
        thread.start()
        return replica

    def _known_replicas(self) -> "list[RemoteReplica]":
        with self._flip_lock:
            return list(self._active) + list(self._retiring)

    def _await_hellos(self, replicas: "list[RemoteReplica]") -> None:
        for replica in replicas:
            if not replica.hello_event.wait(HELLO_TIMEOUT):
                raise ServingError(
                    f"worker {replica.index} sent no HELLO within "
                    f"{HELLO_TIMEOUT:.0f}s (startup failed?)"
                )

    # ------------------------------------------------------------------ #
    # Reader: everything a worker says arrives here
    # ------------------------------------------------------------------ #
    def _reader_loop(self, replica: RemoteReplica) -> None:
        sock = replica.worker.sock
        while True:
            try:
                frame = wire.recv_frame(sock)
            except (ServingError, OSError):
                frame = None
            if frame is None:
                self._on_worker_eof(replica)
                return
            frame_type, payload = frame
            if frame_type == FrameType.RESPONSE_BATCH:
                for record in wire.decode_response_batch(payload):
                    self._complete(replica, record)
            elif frame_type == FrameType.HEARTBEAT:
                self._on_heartbeat(replica, wire.decode_heartbeat(payload))
            elif frame_type == FrameType.HELLO:
                replica.hello = wire.decode_json(payload)
                replica.worker.hello = replica.hello
                replica.hello_event.set()
            elif frame_type == FrameType.STATS_RESPONSE:
                replica._on_stats_response(wire.decode_json(payload))
            elif frame_type == FrameType.ARTIFACT_ACK:
                replica.ack_queue.put(wire.decode_json(payload))
            else:
                logger.warning(
                    "unexpected frame type %s from worker %d",
                    FrameType.NAMES.get(frame_type, frame_type),
                    replica.index,
                )

    def _complete(self, replica: RemoteReplica, record: "wire.ResponseRecord") -> None:
        request = replica.unregister(record.request_id)
        if request is None or request.future.done():
            # A request this parent re-dispatched after suspecting the
            # worker: the survivor's answer won (or will win) — this late
            # copy is discarded, which is what makes re-dispatch safe.
            self._metrics.record(add={"duplicate_responses": 1})
            return
        replica.on_complete()
        self._metrics.record(add={"responses": 1})
        # Parent-clock completion stamp: driver latencies subtract two
        # parent-clock instants and can never go negative, however far the
        # worker's perf_counter epoch sits from ours (the satellite-1 fix).
        done = time.perf_counter()
        if record.ok:
            drain_start = Response.stamp(
                request,
                completed_at=done,
                served_generation=record.served_generation,
                batch_tag=record.batch_tag,
                replica_index=replica.index,
                remote_queue_wait_s=record.queue_wait_s,
                remote_service_s=record.service_s,
            )
            trace = request.trace
            if trace is not None:
                # The worker-measured durations are re-based onto the parent
                # clock by ``Response.stamp`` (anchored at response receipt):
                # spans cross the wire as duration fields, never timestamps.
                trace.span(
                    "remote.queue.wait",
                    drain_start - record.queue_wait_s,
                    drain_start,
                    replica=replica.index,
                )
                trace.span(
                    "remote.serve.drain",
                    drain_start,
                    done,
                    replica=replica.index,
                    batch_tag=record.batch_tag,
                    served_generation=record.served_generation,
                )
                self.tracer.finish(trace)
            request.future.set_result(record.answer)
        else:
            request.completed_at = done
            request.replica_index = replica.index
            if request.trace is not None:
                self.tracer.finish(request.trace)
            request.future.set_exception(wire.exception_from_record(record))

    def _on_heartbeat(self, replica: RemoteReplica, hb: "wire.HeartbeatRecord") -> None:
        rejoined = replica.record_heartbeat(
            hb, time.perf_counter(), self.probation_beats
        )
        self._metrics.record(
            add={"heartbeats": 1, "rejoined": 1} if rejoined else {"heartbeats": 1}
        )
        if rejoined:
            logger.info(
                "worker %d completed probation (%d beats) and rejoined dispatch",
                replica.index,
                self.probation_beats,
            )

    def _on_worker_eof(self, replica: RemoteReplica) -> None:
        transitioned = replica.mark_dead()
        graceful = replica.retiring or self.closed
        if transitioned and not graceful:
            self._metrics.record(add={"marked_unhealthy": 1})
            logger.warning(
                "worker %d (pid %s) connection lost; re-dispatching its pending work",
                replica.index,
                replica.worker.pid,
            )
        self._forget_everywhere(replica)
        pending = replica.drain_pending()
        replica.worker.close()
        if pending:
            self._redispatch(pending, reason="eof")

    # ------------------------------------------------------------------ #
    # Failure detector (heartbeat timeouts; EOF is handled by the readers)
    # ------------------------------------------------------------------ #
    def _failure_detector(self) -> None:
        budget = self.heartbeat_misses * self.heartbeat_interval
        while not self._detector_stop.wait(self.heartbeat_interval):
            now = time.perf_counter()
            for replica in self.active_replicas():
                if replica.dead or replica.retiring or replica.suspected:
                    continue
                # Workers get one HELLO-to-first-beat grace interval on top
                # of the budget (the first beat lands one interval in).
                if replica.heartbeat_age(now) <= budget + self.heartbeat_interval:
                    continue
                if replica.mark_suspected():
                    self._metrics.record(add={"marked_unhealthy": 1})
                    logger.warning(
                        "worker %d missed %d heartbeat(s) (> %.0f ms): suspected; "
                        "re-dispatching its pending work",
                        replica.index,
                        self.heartbeat_misses,
                        1000.0 * budget,
                    )
                    self._forget_everywhere(replica)
                    self._redispatch(replica.drain_pending(), reason="heartbeat")

    def _redispatch(self, requests: "list[ServeRequest]", reason: str) -> None:
        """Re-enqueue a failed worker's in-flight requests (same futures)."""
        for request in requests:
            if request.future.done():
                continue
            self._metrics.record(add={"redispatched": 1})
            try:
                self.enqueue(request)
            except BaseException as exc:  # noqa: BLE001 - delivered via the future
                if not request.future.done():
                    request.future.set_exception(exc)
        if requests:
            logger.info("re-dispatched %d request(s) after %s", len(requests), reason)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RemoteReplicaSet":
        """Idempotent; the workers' drain threads are live from the fork,
        so start only arms the surface flag (parity with ReplicaSet)."""
        with self._state_lock:
            if self._closed:
                raise ServingError("cannot restart a closed remote replica set")
            self._started = True
        return self

    def close(self) -> None:
        """Graceful fleet shutdown: drain every worker dry, join processes.

        Idempotent; accepted futures always resolve — a worker that dies
        mid-drain has its leftovers failed with ``ServingError`` (there is
        no survivor pool to re-dispatch to during close)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._detector_stop.set()
        self._detector.join(timeout=5.0)
        replicas = self._known_replicas()
        for replica in replicas:
            replica.mark_retiring()
            if replica.dead:
                continue
            try:
                replica.send_control(FrameType.SHUTDOWN)
            except OSError:
                pass
        deadline = time.perf_counter() + DRAIN_TIMEOUT
        for replica in replicas:
            while (
                replica.pending_count()
                and not replica.dead
                and time.perf_counter() < deadline
            ):
                time.sleep(0.005)
            replica.worker.join(timeout=max(deadline - time.perf_counter(), 0.1))
            for request in replica.drain_pending():
                if not request.future.done():
                    request.future.set_exception(
                        ServingError(
                            f"worker {replica.index} failed to drain this request "
                            "before the replica set closed"
                        )
                    )
            replica.worker.close()
        for thread in self._reader_threads.values():
            thread.join(timeout=5.0)

    def __enter__(self) -> "RemoteReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def started(self) -> bool:
        with self._state_lock:
            return self._started

    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._closed

    # ------------------------------------------------------------------ #
    # Generation bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def fit_generation(self) -> int:
        with self._flip_lock:
            return self._generation

    def active_replicas(self) -> "list[RemoteReplica]":
        with self._flip_lock:
            return list(self._active)

    def all_replicas(self) -> "list[RemoteReplica]":
        return self._known_replicas()

    def _flip_to(
        self, standby: "list[RemoteReplica]", generation: int
    ) -> "list[RemoteReplica]":
        """Atomically make ``standby`` the serving fleet (pointer swaps
        only — the flip window stays microseconds)."""
        with self._flip_lock:
            with self._state_lock:
                if self._closed:
                    raise ServingError(
                        "remote replica set closed while the standby generation "
                        "was training; the flip is abandoned"
                    )
            previous = self._active
            self._active = list(standby)
            self._generation = generation
            self._retiring.extend(previous)
            self.dispatcher.reset(self._active)
            self._rebuild_tenant_dispatchers(self._active)
        logger.info(
            "remote refit flip: generation %d active on %d worker(s); "
            "%d worker(s) retiring",
            generation,
            len(standby),
            len(previous),
        )
        return previous

    def _archive_retired(self, replicas: "list[RemoteReplica]") -> None:
        snapshots = [
            {"replica": replica.stats(), "worker": replica.fetch_stats(timeout=0.0)}
            for replica in replicas
        ]
        with self._flip_lock:
            self._retiring = [
                replica for replica in self._retiring if replica not in replicas
            ]
            self._retired_snapshots.extend(snapshots)

    def refit(self, tenants: "Sequence[str] | None" = None) -> dict:
        return self.refit_coordinator.refit(tenants=tenants)

    # ------------------------------------------------------------------ #
    # Submission (the ServingLoop-compatible surface)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        kind: str,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        """Deprecated positional submission; use :meth:`serve` instead."""
        warn_positional_submit()
        return self.enqueue(
            ServeRequest.create(
                kind,
                history,
                objective,
                path_so_far=path_so_far,
                user_index=user_index,
                max_length=max_length,
            )
        )

    def submit_next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int] = (),
        user_index: "int | None" = None,
    ) -> Future:
        return self.submit(
            "next_step", history, objective, path_so_far=path_so_far, user_index=user_index
        )

    def submit_plan_paths(
        self,
        history: Sequence[int],
        objective: int,
        user_index: "int | None" = None,
        max_length: "int | None" = None,
    ) -> Future:
        return self.submit(
            "plan_paths", history, objective, user_index=user_index, max_length=max_length
        )

    def enqueue(self, request: ServeRequest) -> Future:
        """Dispatch one request to a healthy worker over the wire.

        The pending-table registration happens BEFORE the send so a fast
        response can never race its own bookkeeping; a send failure
        unregisters, marks the worker dead and re-picks — the request was
        never accepted anywhere, so no duplicate can exist.
        """
        if self.closed:
            raise ServingError("remote replica set is closed; no new requests accepted")
        if request.deadline is not None:
            now = time.perf_counter()
            if now >= request.deadline:
                self._admission_template.on_expired(now - request.deadline)
        if self.tracer.enabled and request.trace is None:
            attrs = {"kind": request.kind}
            if request.tenant is not None:
                attrs["tenant"] = request.tenant
            request.trace = self.tracer.begin(request.routing_key(), **attrs)
        # Tenant placement makes this set the isolation boundary: a placed
        # tenant's requests only ever reach its own slots' workers.
        dispatcher = self.dispatcher
        if request.tenant is not None:
            dispatcher = self._tenant_dispatchers.get(request.tenant, self.dispatcher)
        for _ in range(self._MAX_DISPATCH_ATTEMPTS):
            replica = dispatcher.pick(request)
            replica.on_dispatch()
            request_id = next(self._request_ids)
            replica.register(request_id, request)
            # Parent-clock admission stamp (the satellite-1 fix): paired
            # with the parent-clock completed_at the reader writes.
            request.enqueued_at = time.perf_counter()
            try:
                sent = replica.send_requests([(request_id, request)])
            except (OSError, ServingError):
                replica.unregister(request_id)
                replica.on_dispatch_failed()
                self._metrics.record(add={"send_errors": 1})
                if replica.mark_dead():
                    self._metrics.record(add={"marked_unhealthy": 1})
                self._forget_everywhere(replica)
                self._redispatch(replica.drain_pending(), reason="send failure")
                continue
            self._metrics.record(add={"requests_sent": 1, "bytes_sent": sent})
            if request.trace is not None:
                request.trace.span(
                    "admission",
                    request.enqueued_at,
                    time.perf_counter(),
                    replica=replica.index,
                )
            return request.future
        raise ServingError(
            f"could not place request after {self._MAX_DISPATCH_ATTEMPTS} dispatch "
            "attempts (workers kept failing under the dispatcher)"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def planner(self):
        """Driver-facing planner attributes, served from the workers' HELLO
        (the planner object itself lives in the worker processes)."""
        actives = self.active_replicas()
        return _PlannerProxy(actives[0].hello if actives else None)

    def _worker_loop_stats(self) -> "list[dict]":
        reports = []
        for replica in self._known_replicas():
            stats = replica.fetch_stats()
            if stats is not None:
                reports.append(stats)
        for snapshot in self._retired_snapshots:
            if snapshot.get("worker") is not None:
                reports.append(snapshot["worker"])
        return reports

    def _admission_counters(self) -> dict:
        totals = {"admitted": 0, "rejected": 0, "blocked": 0}
        per_replica = []
        for report in self._worker_loop_stats():
            counters = report.get("loop", {}).get("admission", {})
            for key in totals:
                totals[key] += counters.get(key, 0)
            per_replica.append(counters)
        totals["per_replica"] = per_replica
        return totals

    def _tenant_stats(self, loop_stats: "list[dict]") -> dict:
        """Fleet tenant view: workers' per-tenant counters summed by tenant
        id, plus the placement map and per-tenant dispatcher health."""
        tenants: "dict[str, dict]" = {}
        for stats in loop_stats:
            for name, tenant_stats in stats.get("tenants", {}).items():
                merged = tenants.setdefault(
                    name, {"tenant": name, "served": 0, "failed": 0}
                )
                merged["served"] += tenant_stats["served"]
                merged["failed"] += tenant_stats["failed"]
                merged["kinds"] = tenant_stats["kinds"]
        if self.tenant_placement:
            for name, slots in self.tenant_placement.items():
                entry = tenants.setdefault(
                    name, {"tenant": name, "served": 0, "failed": 0}
                )
                entry["placement"] = list(slots)
                dispatcher = self._tenant_dispatchers.get(name)
                if dispatcher is not None:
                    entry["dispatch"] = dispatcher.stats()
        return {"tenants": tenants} if tenants else {}

    def stats(self) -> dict:
        """Fleet stats shaped like ``ReplicaSet.stats()`` plus a
        ``transport`` section (wire counters, failure-detector verdicts,
        artifact registry history)."""
        worker_reports = self._worker_loop_stats()
        loop_stats = [report["loop"] for report in worker_reports if "loop" in report]
        per_queue = [queue for stats in loop_stats for queue in stats["per_queue"]]
        depth_samples = sum(q["depth_samples"] for q in per_queue)
        batches = sum(q["micro_batches"] for q in per_queue)
        batch_requests = sum(q["micro_batch_requests"] for q in per_queue)
        admission = self._admission_counters()
        transport = self._metrics.values()
        replicas = self._known_replicas()
        active = self.active_replicas()
        return {
            "num_replicas": self.num_replicas,
            "transport_kind": "process",
            "generation": self.fit_generation,
            "served": sum(stats["served"] for stats in loop_stats),
            **self.admission.describe(),
            "admission": admission,
            "queue_depth": {
                "max": max((q["depth_max"] for q in per_queue), default=0),
                "mean": (
                    round(sum(q["depth_sum"] for q in per_queue) / depth_samples, 3)
                    if depth_samples
                    else 0.0
                ),
            },
            "micro_batches": {
                "count": batches,
                "mean_size": round(batch_requests / batches, 3) if batches else 0.0,
                "max_size": max((q["micro_batch_max"] for q in per_queue), default=0),
            },
            "dispatch": self.dispatcher.stats(),
            **self._tenant_stats(loop_stats),
            "replicas": [replica.stats() for replica in replicas],
            "retired_replicas": len(replicas) - len(active) + len(self._retired_snapshots),
            "refits": self.refit_coordinator.history(),
            "transport": {
                "heartbeat_interval": self.heartbeat_interval,
                "heartbeat_misses": self.heartbeat_misses,
                "probation_beats": self.probation_beats,
                **{key: int(value) for key, value in transport.items()},
                "artifacts": self.registry.history(),
            },
        }


class RemoteRefitCoordinator:
    """The hot-refit protocol across the transport (train -> version ->
    ship -> verify -> flip -> drain), serialised like the in-process one."""

    def __init__(self, remote_set: RemoteReplicaSet) -> None:
        self._set = remote_set
        self._refit_lock = threading.Lock()
        self._history_lock = threading.Lock()
        self._history: "list[dict]" = []

    @property
    def refitting(self) -> bool:
        locked = self._refit_lock.acquire(blocking=False)
        if locked:
            self._refit_lock.release()
        return not locked

    def history(self) -> "list[dict]":
        with self._history_lock:
            return [dict(report) for report in self._history]

    # ------------------------------------------------------------------ #
    def refit(self, tenants: "Sequence[str] | None" = None) -> dict:
        """Train the next generation, ship artifacts, flip, retire.

        With ``tenants`` given (and a tenant placement configured on the
        set), the artifact installs are *scoped*: only the standby workers
        on those tenants' placed slots receive INSTALL frames — a tenant's
        refit never ships bytes to its neighbours' workers.  Every slot
        still forks a standby (the fleet flips as one), so unscoped slots
        simply come up from the factory planner without a wire install.
        """
        if not self._refit_lock.acquire(blocking=False):
            raise ServingError("a refit is already in progress on this replica set")
        try:
            remote_set = self._set
            if remote_set.closed:
                raise ServingError("cannot refit a closed remote replica set")
            if tenants is not None:
                placement = remote_set.tenant_placement or {}
                unknown = [name for name in tenants if name not in placement]
                if unknown:
                    raise ServingError(
                        f"cannot scope refit to unplaced tenant(s) {unknown}; "
                        f"placed tenants: {sorted(placement)}"
                    )
            generation_from = remote_set.fit_generation
            generation_to = generation_from + 1
            logger.info(
                "remote refit: training generation %d off-path", generation_to
            )
            # 1. Train off-path in the parent (the active workers keep
            # serving in their own processes, untouched).
            train_started = time.perf_counter()
            standby_planner = remote_set._factory()
            artifacts = artifacts_from_planner(standby_planner, generation_to)
            for artifact in artifacts:
                remote_set.registry.publish(artifact)
            train_seconds = time.perf_counter() - train_started

            # 2. Fork standby workers and ship the versioned artifacts.
            # The wire copy is authoritative: each standby loads the
            # checksummed weights/generator state from the INSTALL frame
            # into its own backbone before taking any traffic.
            standby = [
                remote_set._spawn_replica(standby_planner, generation_to, slot=slot)
                for slot in range(remote_set.num_replicas)
            ]
            install_targets = remote_set._replicas_for_tenants(standby, tenants)
            try:
                remote_set._await_hellos(standby)
                for replica in install_targets:
                    for artifact in artifacts:
                        self._install(replica, artifact)
            except BaseException:
                for replica in standby:
                    replica.mark_retiring()
                    try:
                        replica.send_control(FrameType.SHUTDOWN)
                    except OSError:
                        pass
                raise

            # 3. Atomic flip: one pointer swap, affinity clears, every
            # arrival after it lands on the new generation.
            flip_started = time.perf_counter()
            previous = remote_set._flip_to(standby, generation_to)
            flip_seconds = time.perf_counter() - flip_started

            # 4. Drain-dry retirement: in-flight requests finish on the
            # generation that admitted them; anything a dying worker fails
            # to answer re-dispatches (zero admitted requests dropped).
            inflight_at_flip = sum(replica.pending_count() for replica in previous)
            retire_started = time.perf_counter()
            for replica in previous:
                replica.mark_retiring()
                try:
                    replica.send_control(FrameType.SHUTDOWN)
                except OSError:
                    pass
            deadline = time.perf_counter() + DRAIN_TIMEOUT
            for replica in previous:
                while (
                    replica.pending_count()
                    and not replica.dead
                    and time.perf_counter() < deadline
                ):
                    time.sleep(0.002)
                leftovers = replica.drain_pending()
                if leftovers:
                    remote_set._redispatch(leftovers, reason="retirement")
                replica.worker.join(timeout=max(deadline - time.perf_counter(), 0.1))
            retire_seconds = time.perf_counter() - retire_started
            retired_served = sum(replica.stats()["completed"] for replica in previous)
            remote_set._archive_retired(previous)

            report = {
                "generation_from": generation_from,
                "generation_to": generation_to,
                "num_replicas": len(standby),
                "train_seconds": round(train_seconds, 4),
                "flip_seconds": round(flip_seconds, 6),
                "retire_seconds": round(retire_seconds, 4),
                "inflight_at_flip": inflight_at_flip,
                "retired_served": retired_served,
                "artifacts": [artifact.meta() for artifact in artifacts],
                "installed_slots": sorted(r.slot for r in install_targets),
                **({"tenants": sorted(tenants)} if tenants is not None else {}),
            }
            with self._history_lock:
                self._history.append(report)
            logger.info(
                "remote refit: generation %d -> %d flipped in %.1f us "
                "(%d request(s) in flight finished on the old generation)",
                generation_from,
                generation_to,
                1e6 * flip_seconds,
                inflight_at_flip,
            )
            return dict(report)
        finally:
            self._refit_lock.release()

    def _install(self, replica: RemoteReplica, artifact) -> None:
        meta = wire.encode_json(artifact.meta())
        payload = wire._COUNT.pack(len(meta)) + meta + artifact.payload
        replica.send_control(FrameType.INSTALL_ARTIFACT, payload)
        try:
            ack = replica.ack_queue.get(timeout=ARTIFACT_TIMEOUT)
        except queue.Empty:
            raise ServingError(
                f"worker {replica.index} did not acknowledge artifact "
                f"{artifact.name!r} within {ARTIFACT_TIMEOUT:.0f}s"
            ) from None
        if not ack.get("ok"):
            raise ServingError(
                f"worker {replica.index} rejected artifact {artifact.name!r}: "
                f"{ack.get('error')}"
            )
        if ack.get("sha256") != artifact.sha256:
            raise ServingError(
                f"worker {replica.index} installed artifact {artifact.name!r} "
                "with a mismatched checksum"
            )
