"""Multi-process serving: forked replica workers behind a binary wire protocol.

The package splits the in-process :class:`~repro.replica.set.ReplicaSet`
across OS processes while keeping its exact surface:

* :mod:`repro.distributed.wire` — length-prefixed binary codec for request/
  response/heartbeat frames (struct-packed hot path, JSON control plane).
* :mod:`repro.distributed.worker` — the forked worker process: a full
  :class:`~repro.serve.loop.ServingLoop` behind an ``AF_UNIX`` socketpair.
* :mod:`repro.distributed.remote` — the parent front-end
  (:class:`RemoteReplicaSet`), heartbeat-fed dispatch, the failure
  detector and the artifact-shipping refit coordinator.
* :mod:`repro.distributed.artifacts` — the ``(name, generation)``-versioned
  artifact registry refits publish to and workers install from.
* :mod:`repro.distributed.config` — transport knobs
  (``REPRO_TRANSPORT`` / ``REPRO_HEARTBEAT_INTERVAL`` /
  ``REPRO_HEARTBEAT_MISSES`` / ``REPRO_PROBATION_BEATS``).
"""

from repro.distributed.artifacts import (
    Artifact,
    ArtifactRegistry,
    artifacts_from_planner,
)
from repro.distributed.config import (
    VALID_TRANSPORTS,
    resolve_heartbeat_interval,
    resolve_heartbeat_misses,
    resolve_probation_beats,
    resolve_transport,
)
from repro.distributed.remote import (
    RemoteRefitCoordinator,
    RemoteReplica,
    RemoteReplicaSet,
)
from repro.distributed.worker import ReplicaWorker, spawn_worker

__all__ = [
    "Artifact",
    "ArtifactRegistry",
    "RemoteRefitCoordinator",
    "RemoteReplica",
    "RemoteReplicaSet",
    "ReplicaWorker",
    "VALID_TRANSPORTS",
    "artifacts_from_planner",
    "resolve_heartbeat_interval",
    "resolve_heartbeat_misses",
    "resolve_probation_beats",
    "resolve_transport",
    "spawn_worker",
]
