"""Versioned serving artifacts: what a refit ships across the transport.

A remote refit must make every standby worker serve the *new* generation's
fitted state.  Two kinds of state exist (the PR 8 seam: both carry a
``(config_key, fit_generation)``-style identity, so both version the same
way):

* **model weights** — the planner backbone's flat
  :meth:`~repro.nn.layers.Module.state_dict`, packed as an ``.npz``
  archive in memory;
* **retrieval-generator state** — the fitted
  :class:`~repro.retrieval.base.CandidateGenerator` (its index arrays and
  configuration), packed with :mod:`pickle` and identified by its
  ``retrieval_key()``.

The :class:`ArtifactRegistry` keys artifacts by ``(name, generation)``
where ``generation`` is the replica set's monotonic serving generation —
the same counter the dispatcher flip bumps — so a rolling deploy can ask
"what exactly does generation N serve?" and get byte-addressed,
checksummed answers.  Workers verify the sha256 before installing and echo
it in the ACK, making a corrupt or torn transfer loud instead of silently
serving the wrong weights.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import threading

import numpy as np

from repro.utils.exceptions import ConfigurationError

__all__ = [
    "Artifact",
    "ArtifactRegistry",
    "pack_state_dict",
    "unpack_state_dict",
    "pack_generator",
    "unpack_generator",
    "artifacts_from_planner",
]

MODEL_WEIGHTS = "model_weights"
GENERATOR_STATE = "generator_state"


class Artifact:
    """One versioned blob: name + generation + identity + checksummed bytes."""

    __slots__ = ("name", "generation", "identity", "payload", "sha256", "nbytes")

    def __init__(self, name: str, generation: int, identity: str, payload: bytes) -> None:
        self.name = name
        self.generation = int(generation)
        self.identity = identity
        self.payload = payload
        self.sha256 = hashlib.sha256(payload).hexdigest()
        self.nbytes = len(payload)

    def meta(self) -> dict:
        """The JSON-safe header shipped ahead of the blob (and kept by the
        registry's history)."""
        return {
            "name": self.name,
            "generation": self.generation,
            "identity": self.identity,
            "sha256": self.sha256,
            "nbytes": self.nbytes,
        }


class ArtifactRegistry:
    """Thread-safe ``(name, generation) -> Artifact`` store.

    Keeps every published version (the blobs of tiny test models are
    cheap; a production registry would spill to disk) so a canary or a
    rollback can re-ship any generation that ever served.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._artifacts: "dict[tuple[str, int], Artifact]" = {}
        self._order: "list[tuple[str, int]]" = []

    def publish(self, artifact: Artifact) -> Artifact:
        key = (artifact.name, artifact.generation)
        with self._lock:
            if key in self._artifacts:
                raise ConfigurationError(
                    f"artifact {artifact.name!r} generation {artifact.generation} "
                    "is already published (artifacts are immutable once versioned)"
                )
            self._artifacts[key] = artifact
            self._order.append(key)
        return artifact

    def get(self, name: str, generation: int) -> Artifact:
        with self._lock:
            artifact = self._artifacts.get((name, int(generation)))
        if artifact is None:
            raise ConfigurationError(
                f"no artifact {name!r} published at generation {generation}"
            )
        return artifact

    def for_generation(self, generation: int) -> "list[Artifact]":
        """Every artifact published at ``generation``, in publish order."""
        with self._lock:
            return [
                self._artifacts[key]
                for key in self._order
                if key[1] == int(generation)
            ]

    def history(self) -> "list[dict]":
        """Publish-ordered metadata of everything ever versioned."""
        with self._lock:
            return [self._artifacts[key].meta() for key in self._order]

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts)


# --------------------------------------------------------------------- #
# Packing
# --------------------------------------------------------------------- #
def pack_state_dict(state: "dict[str, np.ndarray]") -> bytes:
    """Pack a flat name -> array mapping as in-memory ``.npz`` bytes."""
    buffer = io.BytesIO()
    np.savez(buffer, **state)
    return buffer.getvalue()


def unpack_state_dict(payload: bytes) -> "dict[str, np.ndarray]":
    with np.load(io.BytesIO(payload)) as archive:
        return {name: archive[name] for name in archive.files}


def pack_generator(generator) -> bytes:
    """Pack a fitted candidate generator (index arrays + configuration)."""
    return pickle.dumps(generator, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_generator(payload: bytes):
    return pickle.loads(payload)


def artifacts_from_planner(planner, generation: int) -> "list[Artifact]":
    """Extract the shippable artifacts of one fitted planner.

    Always the backbone weights; additionally the fitted candidate
    generator when the planner runs two-stage retrieval.  Planners whose
    backbone exposes no ``module`` (non-neural test stubs) ship nothing —
    the remote refit then relies on the deterministic factory alone.
    """
    artifacts: "list[Artifact]" = []
    module = getattr(getattr(planner, "backbone", None), "module", None)
    if module is not None:
        fit_generation = getattr(planner.backbone, "fit_generation", 0)
        artifacts.append(
            Artifact(
                MODEL_WEIGHTS,
                generation,
                identity=repr((getattr(planner, "name", "planner"), fit_generation)),
                payload=pack_state_dict(module.state_dict()),
            )
        )
    generator = getattr(planner, "candidate_generator", None)
    if generator is not None:
        artifacts.append(
            Artifact(
                GENERATOR_STATE,
                generation,
                identity=repr(generator.retrieval_key()),
                payload=pack_generator(generator),
            )
        )
    return artifacts
