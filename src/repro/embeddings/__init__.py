"""Item embedding learners.

The paper uses item2vec (Barkan & Koenigstein, 2016) both to initialise IRN's
token embeddings (§III-D1) and to compute item distances for the Rec2Inf
framework on Lastfm (§IV-C).  :class:`~repro.embeddings.item2vec.Item2Vec`
implements skip-gram with negative sampling directly in NumPy;
:class:`~repro.embeddings.cooccurrence.CooccurrenceEmbedding` provides a
deterministic PPMI + truncated-SVD alternative used in tests and as a cheap
fallback.
"""

from repro.embeddings.cooccurrence import CooccurrenceEmbedding
from repro.embeddings.item2vec import Item2Vec

__all__ = ["CooccurrenceEmbedding", "Item2Vec"]
