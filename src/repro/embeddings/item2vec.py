"""item2vec: skip-gram with negative sampling over item sequences.

Treats every user sequence as a "sentence" and learns an embedding per item
such that items co-occurring within a window get similar vectors.  Gradients
are computed analytically (the SGNS loss has a two-line gradient), which is
much faster than running the autograd engine for this model.
"""

from __future__ import annotations

import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError, NotFittedError
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

__all__ = ["Item2Vec"]

_LOGGER = get_logger("embeddings.item2vec")


class Item2Vec:
    """Skip-gram-with-negative-sampling item embeddings.

    Parameters
    ----------
    embedding_dim:
        Dimension of the learned vectors.
    window:
        Context window radius (items within ``window`` positions are positives).
    negatives:
        Number of negative samples per positive pair.
    epochs, learning_rate:
        Plain SGD training schedule.
    subsample_popular:
        Exponent for the unigram**x negative-sampling distribution (0.75 as in
        word2vec).
    """

    def __init__(
        self,
        embedding_dim: int = 32,
        window: int = 3,
        negatives: int = 5,
        epochs: int = 3,
        learning_rate: float = 0.05,
        subsample_popular: float = 0.75,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        if embedding_dim <= 0 or window <= 0 or negatives <= 0 or epochs <= 0:
            raise ConfigurationError("item2vec hyperparameters must be positive")
        self.embedding_dim = embedding_dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.subsample_popular = subsample_popular
        self._rng = as_rng(seed)
        self._input_vectors: np.ndarray | None = None
        self._output_vectors: np.ndarray | None = None
        self._vocab_size: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, corpus: SequenceCorpus) -> "Item2Vec":
        """Train on every user sequence of ``corpus``."""
        vocab_size = corpus.vocab.size
        self._vocab_size = vocab_size
        rng = self._rng
        scale = 0.5 / self.embedding_dim
        self._input_vectors = rng.uniform(-scale, scale, size=(vocab_size, self.embedding_dim))
        self._output_vectors = np.zeros((vocab_size, self.embedding_dim))

        counts = corpus.item_popularity().astype(np.float64)
        counts[0] = 0.0
        noise = counts**self.subsample_popular
        if noise.sum() <= 0:
            raise ConfigurationError("corpus has no items to train item2vec on")
        noise = noise / noise.sum()

        pairs = self._build_pairs(corpus)
        for epoch in range(self.epochs):
            rng.shuffle(pairs)
            loss = self._run_epoch(pairs, noise, rng)
            _LOGGER.debug("item2vec epoch %d/%d loss %.4f", epoch + 1, self.epochs, loss)
        return self

    def _build_pairs(self, corpus: SequenceCorpus) -> np.ndarray:
        pairs: list[tuple[int, int]] = []
        for sequence in corpus.user_sequences:
            length = len(sequence)
            for center_pos, center in enumerate(sequence):
                lo = max(0, center_pos - self.window)
                hi = min(length, center_pos + self.window + 1)
                for context_pos in range(lo, hi):
                    if context_pos != center_pos:
                        pairs.append((center, sequence[context_pos]))
        if not pairs:
            raise ConfigurationError("no training pairs; sequences too short for the window")
        return np.asarray(pairs, dtype=np.int64)

    def _run_epoch(
        self, pairs: np.ndarray, noise: np.ndarray, rng: np.random.Generator
    ) -> float:
        assert self._input_vectors is not None and self._output_vectors is not None
        total_loss = 0.0
        lr = self.learning_rate
        negatives = rng.choice(len(noise), size=(len(pairs), self.negatives), p=noise)
        for index, (center, context) in enumerate(pairs):
            center_vec = self._input_vectors[center]
            # Positive pair.
            out_vec = self._output_vectors[context]
            score = 1.0 / (1.0 + np.exp(-np.dot(center_vec, out_vec)))
            gradient = score - 1.0
            total_loss -= np.log(max(score, 1e-12))
            grad_center = gradient * out_vec
            self._output_vectors[context] -= lr * gradient * center_vec
            # Negative pairs.
            for negative in negatives[index]:
                if negative == context or negative == 0:
                    continue
                out_vec = self._output_vectors[negative]
                score = 1.0 / (1.0 + np.exp(-np.dot(center_vec, out_vec)))
                total_loss -= np.log(max(1.0 - score, 1e-12))
                grad_center += score * out_vec
                self._output_vectors[negative] -= lr * score * center_vec
            self._input_vectors[center] -= lr * grad_center
        return total_loss / len(pairs)

    # ------------------------------------------------------------------ #
    @property
    def vectors(self) -> np.ndarray:
        """The learned input-embedding matrix of shape ``(vocab_size, dim)``."""
        if self._input_vectors is None:
            raise NotFittedError("Item2Vec must be fitted before accessing vectors")
        return self._input_vectors

    def vector(self, item_index: int) -> np.ndarray:
        """Embedding of a single item index."""
        return self.vectors[item_index]

    def similarity(self, first: int, second: int) -> float:
        """Cosine similarity between two item indices."""
        a, b = self.vector(first), self.vector(second)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)

    def most_similar(self, item_index: int, top_k: int = 10) -> list[tuple[int, float]]:
        """Return the ``top_k`` most similar item indices (excluding padding and self)."""
        vectors = self.vectors
        norms = np.linalg.norm(vectors, axis=1)
        norms[norms == 0] = 1e-12
        query = vectors[item_index] / norms[item_index]
        scores = vectors @ query / norms
        scores[item_index] = -np.inf
        scores[0] = -np.inf
        best = np.argsort(-scores)[:top_k]
        return [(int(i), float(scores[i])) for i in best]
