"""PPMI + truncated-SVD item embeddings.

A deterministic, closed-form alternative to item2vec (Levy & Goldberg showed
SGNS implicitly factorises a shifted PMI matrix).  Used as a fast fallback
for item distances, in tests where determinism matters, and as the vector
source for the embedding-ANN candidate generator in
:mod:`repro.retrieval.ann`.

Two solvers share one counting front-end:

* ``dense`` — materialises the ``(V, V)`` co-occurrence matrix and runs an
  exact full SVD.  Counting is vectorised with ``np.add.at`` over window
  offsets and produces counts bit-identical to the reference per-pair loop.
* ``sparse`` — never allocates a dense ``(V, V)`` intermediate: pairs are
  aggregated into a scipy-free CSR triple (``indptr``/``indices``/``data``),
  PPMI is computed on the nonzeros only, and the factorisation is a seeded
  randomized truncated SVD whose matrix products stream over the CSR
  nonzeros in bounded chunks.  At ``V = 10**6`` the dense matrix would be
  8 TB; the sparse path is bounded by the number of *distinct* co-occurring
  pairs.

``solver="auto"`` (the default) picks ``sparse`` above
``sparse_threshold`` vocabulary entries and ``dense`` below it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError, NotFittedError

__all__ = ["CooccurrenceEmbedding"]

_SOLVERS = ("auto", "dense", "sparse")

# Pair-array chunking keeps transient buffers bounded regardless of corpus
# size; ~2**21 events per chunk is a few tens of MB of int64 scratch.
_CHUNK_EVENTS = 1 << 21

# Row-chunk budget for the streaming CSR @ dense product (entries of the
# (nnz_chunk, k) contribution buffer).
_MATMUL_CHUNK_ENTRIES = 1 << 22


def _iter_offset_pairs(
    corpus: SequenceCorpus, window: int
) -> "Iterator[tuple[np.ndarray, np.ndarray]]":
    """Yield ``(center, other)`` index arrays for every within-window pair.

    Sequences are flattened in chunks; for each window offset ``d`` the
    pairs are ``(flat[i], flat[i + d])`` restricted to positions where both
    ends fall inside the same sequence.  Each yielded pair is directed
    left-to-right; callers symmetrise.
    """
    buffer: "list[np.ndarray]" = []
    buffered = 0
    for sequence in corpus.user_sequences:
        array = np.asarray(sequence, dtype=np.int64)
        if array.size:
            buffer.append(array)
            buffered += array.size
        if buffered >= _CHUNK_EVENTS:
            yield from _chunk_offset_pairs(buffer, window)
            buffer, buffered = [], 0
    if buffer:
        yield from _chunk_offset_pairs(buffer, window)


def _chunk_offset_pairs(
    sequences: "list[np.ndarray]", window: int
) -> "Iterator[tuple[np.ndarray, np.ndarray]]":
    flat = np.concatenate(sequences)
    lengths = np.fromiter((s.size for s in sequences), dtype=np.int64)
    owner = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    for offset in range(1, window + 1):
        if offset >= flat.size:
            break
        valid = owner[:-offset] == owner[offset:]
        if not valid.any():
            continue
        yield flat[:-offset][valid], flat[offset:][valid]


def _accumulate_pair_codes(
    corpus: SequenceCorpus, window: int, size: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Aggregate symmetric pair counts as ``row * size + col`` codes.

    Returns sorted unique codes with their float64 counts — the COO form of
    the symmetric co-occurrence matrix, without ever densifying it.
    """
    code_chunks: "list[np.ndarray]" = []
    count_chunks: "list[np.ndarray]" = []
    for left, right in _iter_offset_pairs(corpus, window):
        codes = np.concatenate([left * size + right, right * size + left])
        unique, counts = np.unique(codes, return_counts=True)
        code_chunks.append(unique)
        count_chunks.append(counts.astype(np.float64))
    if not code_chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    codes = np.concatenate(code_chunks)
    counts = np.concatenate(count_chunks)
    order = np.argsort(codes, kind="stable")
    codes, counts = codes[order], counts[order]
    boundaries = np.flatnonzero(np.diff(codes)) + 1
    starts = np.concatenate([[0], boundaries])
    return codes[starts], np.add.reduceat(counts, starts)


def _csr_matmul(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense: np.ndarray,
) -> np.ndarray:
    """``A @ dense`` for a CSR matrix ``A``, streaming over nonzero chunks."""
    num_rows = indptr.size - 1
    k = dense.shape[1]
    out = np.zeros((num_rows, k), dtype=np.float64)
    counts = np.diff(indptr)
    nonempty = np.flatnonzero(counts)
    if nonempty.size == 0:
        return out
    rows_per_chunk = max(1, _MATMUL_CHUNK_ENTRIES // max(1, int(counts.max()) * k))
    for start in range(0, nonempty.size, rows_per_chunk):
        rows = nonempty[start : start + rows_per_chunk]
        lo, hi = indptr[rows[0]], indptr[rows[-1] + 1]
        contrib = data[lo:hi, None] * dense[indices[lo:hi]]
        out[rows] = np.add.reduceat(contrib, indptr[rows] - lo, axis=0)
    return out


class CooccurrenceEmbedding:
    """Embeddings from the positive pointwise mutual information matrix."""

    def __init__(
        self,
        embedding_dim: int = 32,
        window: int = 3,
        shift: float = 1.0,
        solver: str = "auto",
        sparse_threshold: int = 4096,
        seed: int = 0,
        oversample: int = 10,
        power_iterations: int = 2,
    ) -> None:
        if embedding_dim <= 0 or window <= 0:
            raise ConfigurationError("embedding_dim and window must be positive")
        if shift <= 0:
            raise ConfigurationError(
                f"shift must be positive (PPMI subtracts log(shift)); got {shift}"
            )
        if solver not in _SOLVERS:
            raise ConfigurationError(
                f"unknown solver '{solver}'; expected one of {', '.join(_SOLVERS)}"
            )
        if oversample < 0 or power_iterations < 0:
            raise ConfigurationError("oversample and power_iterations must be >= 0")
        self.embedding_dim = embedding_dim
        self.window = window
        self.shift = shift
        self.solver = solver
        self.sparse_threshold = sparse_threshold
        self.seed = seed
        self.oversample = oversample
        self.power_iterations = power_iterations
        self.solver_used: str | None = None
        self._vectors: np.ndarray | None = None

    def _resolve_solver(self, size: int) -> str:
        if self.solver == "auto":
            return "sparse" if size > self.sparse_threshold else "dense"
        return self.solver

    def fit(self, corpus: SequenceCorpus) -> "CooccurrenceEmbedding":
        """Build the PPMI matrix from co-occurrence counts and factorise it.

        ``corpus`` may be any corpus-like object exposing ``vocab.size`` and
        an iterable ``user_sequences`` (including the memory-mapped
        :class:`repro.data.store.InteractionStore` corpus facade).
        """
        size = corpus.vocab.size
        solver = self._resolve_solver(size)
        if solver == "dense":
            vectors = self._fit_dense(corpus, size)
        else:
            vectors = self._fit_sparse(corpus, size)
        vectors[0] = 0.0  # padding row
        self.solver_used = solver
        self._vectors = vectors
        return self

    # -- dense solver ------------------------------------------------------

    def _fit_dense(self, corpus: SequenceCorpus, size: int) -> np.ndarray:
        cooccurrence = np.zeros((size, size), dtype=np.float64)
        for left, right in _iter_offset_pairs(corpus, self.window):
            np.add.at(cooccurrence, (left, right), 1.0)
            np.add.at(cooccurrence, (right, left), 1.0)

        total = cooccurrence.sum()
        if total <= 0:
            raise ConfigurationError("corpus has no co-occurrences")
        row = cooccurrence.sum(axis=1, keepdims=True)
        col = cooccurrence.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log(cooccurrence * total / (row @ col))
        pmi[~np.isfinite(pmi)] = 0.0
        ppmi = np.maximum(pmi - np.log(self.shift), 0.0)

        rank = min(self.embedding_dim, size - 1)
        u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
        vectors = u[:, :rank] * np.sqrt(s[:rank])[None, :]
        if rank < self.embedding_dim:
            vectors = np.pad(vectors, ((0, 0), (0, self.embedding_dim - rank)))
        return vectors

    # -- sparse solver -----------------------------------------------------

    def _fit_sparse(self, corpus: SequenceCorpus, size: int) -> np.ndarray:
        codes, counts = _accumulate_pair_codes(corpus, self.window, size)
        total = float(counts.sum())
        if total <= 0:
            raise ConfigurationError("corpus has no co-occurrences")
        rows = codes // size
        cols = codes % size
        # Marginals over the symmetric count matrix (row sums == col sums).
        marginals = np.bincount(rows, weights=counts, minlength=size)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log(counts * total / (marginals[rows] * marginals[cols]))
        pmi[~np.isfinite(pmi)] = 0.0
        ppmi = pmi - np.log(self.shift)
        keep = ppmi > 0
        rows, cols, ppmi = rows[keep], cols[keep], ppmi[keep]

        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=size), out=indptr[1:])
        # ``codes`` were sorted, so (rows, cols) are already in CSR order.
        indices = cols

        rank = min(self.embedding_dim, size - 1)
        vectors = self._randomized_svd(indptr, indices, ppmi, size, rank)
        if rank < self.embedding_dim:
            vectors = np.pad(vectors, ((0, 0), (0, self.embedding_dim - rank)))
        return vectors

    def _randomized_svd(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        size: int,
        rank: int,
    ) -> np.ndarray:
        """Seeded Halko-style truncated SVD of the symmetric PPMI CSR matrix."""
        k = min(size, rank + self.oversample)
        rng = np.random.default_rng(self.seed)
        basis = _csr_matmul(indptr, indices, data, rng.standard_normal((size, k)))
        basis, _ = np.linalg.qr(basis)
        for _ in range(self.power_iterations):
            # PPMI is symmetric, so A.T @ (A @ Q) collapses to two identical
            # streamed products with a QR re-orthonormalisation between them.
            basis = _csr_matmul(indptr, indices, data, basis)
            basis, _ = np.linalg.qr(basis)
        projected = _csr_matmul(indptr, indices, data, basis).T  # = Q.T @ A
        u_small, s, _ = np.linalg.svd(projected, full_matrices=False)
        u = basis @ u_small
        return u[:, :rank] * np.sqrt(s[:rank])[None, :]

    @property
    def vectors(self) -> np.ndarray:
        """Learned embedding matrix of shape ``(vocab_size, embedding_dim)``."""
        if self._vectors is None:
            raise NotFittedError("CooccurrenceEmbedding must be fitted first")
        return self._vectors

    def vector(self, item_index: int) -> np.ndarray:
        """Embedding of a single item index."""
        return self.vectors[item_index]

    def similarity(self, first: int, second: int) -> float:
        """Cosine similarity between two item indices."""
        a, b = self.vector(first), self.vector(second)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)
