"""PPMI + truncated-SVD item embeddings.

A deterministic, closed-form alternative to item2vec (Levy & Goldberg showed
SGNS implicitly factorises a shifted PMI matrix).  Used as a fast fallback
for item distances and in tests where determinism matters.
"""

from __future__ import annotations

import numpy as np

from repro.data.interactions import SequenceCorpus
from repro.utils.exceptions import ConfigurationError, NotFittedError

__all__ = ["CooccurrenceEmbedding"]


class CooccurrenceEmbedding:
    """Embeddings from the positive pointwise mutual information matrix."""

    def __init__(self, embedding_dim: int = 32, window: int = 3, shift: float = 1.0) -> None:
        if embedding_dim <= 0 or window <= 0:
            raise ConfigurationError("embedding_dim and window must be positive")
        self.embedding_dim = embedding_dim
        self.window = window
        self.shift = shift
        self._vectors: np.ndarray | None = None

    def fit(self, corpus: SequenceCorpus) -> "CooccurrenceEmbedding":
        """Build the PPMI matrix from co-occurrence counts and factorise it."""
        size = corpus.vocab.size
        cooccurrence = np.zeros((size, size), dtype=np.float64)
        for sequence in corpus.user_sequences:
            length = len(sequence)
            for pos, center in enumerate(sequence):
                hi = min(length, pos + self.window + 1)
                for other_pos in range(pos + 1, hi):
                    other = sequence[other_pos]
                    cooccurrence[center, other] += 1.0
                    cooccurrence[other, center] += 1.0

        total = cooccurrence.sum()
        if total <= 0:
            raise ConfigurationError("corpus has no co-occurrences")
        row = cooccurrence.sum(axis=1, keepdims=True)
        col = cooccurrence.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log(cooccurrence * total / (row @ col))
        pmi[~np.isfinite(pmi)] = 0.0
        ppmi = np.maximum(pmi - np.log(self.shift) if self.shift > 1 else pmi, 0.0)

        rank = min(self.embedding_dim, size - 1)
        u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
        vectors = u[:, :rank] * np.sqrt(s[:rank])[None, :]
        if rank < self.embedding_dim:
            vectors = np.pad(vectors, ((0, 0), (0, self.embedding_dim - rank)))
        vectors[0] = 0.0  # padding row
        self._vectors = vectors
        return self

    @property
    def vectors(self) -> np.ndarray:
        """Learned embedding matrix of shape ``(vocab_size, embedding_dim)``."""
        if self._vectors is None:
            raise NotFittedError("CooccurrenceEmbedding must be fitted first")
        return self._vectors

    def vector(self, item_index: int) -> np.ndarray:
        """Embedding of a single item index."""
        return self.vectors[item_index]

    def similarity(self, first: int, second: int) -> float:
        """Cosine similarity between two item indices."""
        a, b = self.vector(first), self.vector(second)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)
