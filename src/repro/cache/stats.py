"""Decode-work accounting for the cache subsystem.

The batched inference engine of PR 1 counted *module forwards*; with
incremental decoding a "forward" can encode anywhere from two tokens (one
appended path item plus the re-projected objective) to a full right-aligned
window, so the perf harness needs a finer unit.  :class:`DecodeStats` counts
**token-work**: the number of ``(row, column)`` positions each transformer
call actually encodes.  Full windows contribute ``batch * width``;
incremental steps contribute ``batch * new_tokens``.

One instance lives on every :class:`~repro.core.irn.IRN`
(``irn.decode_stats``) and is reset by ``fit``; the benchmark snapshots it
around each measured workload.

The counters live in the process-wide metrics registry
(:mod:`repro.obs.registry`) under a per-instance ``cache.decode.<n>``
scope: the sharded execution subsystem scores independent instance
partitions on worker threads against ONE shared backbone, and each
``record_*`` call applies both of its field increments in a single
registry-lock acquisition, so concurrent updates never tear and
``snapshot`` (one locked group read) always sees a consistent view.  The
same counters surface verbatim in ``repro-irs metrics`` exports.  Field
reads (``stats.full_forwards``) keep working via ``__getattr__`` so no
caller changes.
"""

from __future__ import annotations

from repro.obs.registry import MetricGroup, get_registry

__all__ = ["DecodeStats"]


class DecodeStats:
    """Counters of transformer decode work, by kind of forward pass."""

    _FIELDS = (
        "full_forwards",
        "incremental_forwards",
        "fallback_forwards",
        "tokens_full",
        "tokens_incremental",
        "tokens_fallback",
    )

    def __init__(self) -> None:
        registry = get_registry()
        self._group = MetricGroup(
            registry, registry.scope("cache.decode"), counters=self._FIELDS
        )

    def __getattr__(self, name: str):
        # Counter fields read straight from the registry; everything else is
        # a genuine miss.  (Only reached when normal lookup fails, so the
        # ``_group`` access below cannot recurse.)
        if name in DecodeStats._FIELDS:
            return self.__dict__["_group"].value(name)
        raise AttributeError(name)

    def reset(self) -> None:
        self._group.reset()

    # ------------------------------------------------------------------ #
    def record_full(self, tokens: int) -> None:
        """A full-window forward (no cache involved)."""
        self._group.record(add={"full_forwards": 1, "tokens_full": int(tokens)})

    def record_incremental(self, tokens: int) -> None:
        """An incremental step attending over cached prefix K/V."""
        self._group.record(
            add={"incremental_forwards": 1, "tokens_incremental": int(tokens)}
        )

    def record_fallback(self, tokens: int) -> None:
        """A full re-encode forced by the exactness contract (see cache.kv)."""
        self._group.record(add={"fallback_forwards": 1, "tokens_fallback": int(tokens)})

    # ------------------------------------------------------------------ #
    @property
    def forwards(self) -> int:
        """Total transformer calls of any kind (one locked read)."""
        values = self._group.values()
        return (
            values["full_forwards"]
            + values["incremental_forwards"]
            + values["fallback_forwards"]
        )

    @property
    def tokens_encoded(self) -> int:
        """Total token-work across all forward kinds (one locked read)."""
        values = self._group.values()
        return (
            values["tokens_full"] + values["tokens_incremental"] + values["tokens_fallback"]
        )

    def snapshot(self) -> dict:
        """A plain-dict copy (for before/after deltas in the benchmark).

        All fields are read under one registry-lock acquisition, so the
        derived totals are always internally consistent — a snapshot taken
        while another thread is mid-``record_*`` sees either none or all of
        that call's increments.
        """
        report = self._group.values()
        report["forwards"] = (
            report["full_forwards"]
            + report["incremental_forwards"]
            + report["fallback_forwards"]
        )
        report["tokens_encoded"] = (
            report["tokens_full"] + report["tokens_incremental"] + report["tokens_fallback"]
        )
        return report

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Field-wise ``after - before`` of two :meth:`snapshot` dicts."""
        return {key: after[key] - before[key] for key in after}
