"""Decode-work accounting for the cache subsystem.

The batched inference engine of PR 1 counted *module forwards*; with
incremental decoding a "forward" can encode anywhere from two tokens (one
appended path item plus the re-projected objective) to a full right-aligned
window, so the perf harness needs a finer unit.  :class:`DecodeStats` counts
**token-work**: the number of ``(row, column)`` positions each transformer
call actually encodes.  Full windows contribute ``batch * width``;
incremental steps contribute ``batch * new_tokens``.

One instance lives on every :class:`~repro.core.irn.IRN`
(``irn.decode_stats``) and is reset by ``fit``; the benchmark snapshots it
around each measured workload.

The counters are lock-guarded: the sharded execution subsystem scores
independent instance partitions on worker threads against ONE shared
backbone, so concurrent ``record_*`` calls must not lose increments (a bare
``+=`` is not atomic across bytecode boundaries).  ``snapshot`` takes the
same lock, so before/after deltas see a consistent view — and the derived
``forwards`` / ``tokens_encoded`` totals take it too: they sum several
fields, and reading them one by one while a serving-loop drain thread is
mid-``record_*`` could observe a torn total (one field incremented, its
sibling not yet).  Every read path is a single locked snapshot.
"""

from __future__ import annotations

import threading

__all__ = ["DecodeStats"]


class DecodeStats:
    """Counters of transformer decode work, by kind of forward pass."""

    _FIELDS = (
        "full_forwards",
        "incremental_forwards",
        "fallback_forwards",
        "tokens_full",
        "tokens_incremental",
        "tokens_fallback",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            for field in self._FIELDS:
                setattr(self, field, 0)

    # ------------------------------------------------------------------ #
    def record_full(self, tokens: int) -> None:
        """A full-window forward (no cache involved)."""
        with self._lock:
            self.full_forwards += 1
            self.tokens_full += int(tokens)

    def record_incremental(self, tokens: int) -> None:
        """An incremental step attending over cached prefix K/V."""
        with self._lock:
            self.incremental_forwards += 1
            self.tokens_incremental += int(tokens)

    def record_fallback(self, tokens: int) -> None:
        """A full re-encode forced by the exactness contract (see cache.kv)."""
        with self._lock:
            self.fallback_forwards += 1
            self.tokens_fallback += int(tokens)

    # ------------------------------------------------------------------ #
    @property
    def forwards(self) -> int:
        """Total transformer calls of any kind (one locked read)."""
        with self._lock:
            return self.full_forwards + self.incremental_forwards + self.fallback_forwards

    @property
    def tokens_encoded(self) -> int:
        """Total token-work across all forward kinds (one locked read)."""
        with self._lock:
            return self.tokens_full + self.tokens_incremental + self.tokens_fallback

    def snapshot(self) -> dict:
        """A plain-dict copy (for before/after deltas in the benchmark).

        All fields are read under one lock acquisition, so the derived
        totals are always internally consistent — a snapshot taken while
        another thread is mid-``record_*`` sees either none or all of that
        call's increments.
        """
        with self._lock:
            report = {field: getattr(self, field) for field in self._FIELDS}
        report["forwards"] = (
            report["full_forwards"]
            + report["incremental_forwards"]
            + report["fallback_forwards"]
        )
        report["tokens_encoded"] = (
            report["tokens_full"] + report["tokens_incremental"] + report["tokens_fallback"]
        )
        return report

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """Field-wise ``after - before`` of two :meth:`snapshot` dicts."""
        return {key: after[key] - before[key] for key in after}
