"""Per-layer key/value state for incremental transformer decoding.

A :class:`LayerKVCache` stores the attention keys/values a
:class:`~repro.nn.attention.MultiHeadAttention` layer has already projected
for a batch of growing sequences, so a later forward pass only has to project
the newly appended token(s) and attend over the cached prefix.  A
:class:`DecodingState` stacks one cache per encoder layer and keeps the
per-row bookkeeping aligned when beam search prunes, reorders or duplicates
hypotheses.

Storage model
-------------
Keys/values live in preallocated **arenas** of shape
``(batch, heads, capacity, d_head)``.  :meth:`LayerKVCache.extend` writes the
newly projected columns into the arena in place and returns *views* of the
used prefix, so a decode step copies only the appended slice — never the
prefix.  When the arena fills, capacity grows geometrically (doubling), so
total copying over a T-token decode is O(T) instead of the O(T²) a
per-token ``np.concatenate`` pays.  ``growth="exact"`` keeps the legacy
exact-size behaviour (reallocate to the needed width every extend) as the
fallback path; even there the old concatenate temporaries are gone — the
prefix is copied at most once per extend, directly into the new buffer.
Transient columns (``persist`` < new) occupy arena slots past the persisted
length and are simply overwritten by the next extend; they are never
retained or re-copied.  Row gathers (:meth:`LayerKVCache.reorder`) move the
used region into a spare arena with :func:`np.take` and swap buffers — no
per-call temporaries once the spare exists.

Module-level allocation counters (:func:`allocation_stats`) track arena
allocations, bytes actually copied, and the bytes an equivalent
concatenate-per-extend implementation would have copied; the ``tensor_ops``
bench section and :mod:`repro.perf.gate` use them to prove decode steps no
longer copy the full prefix.

Exactness contract
------------------
Cached prefix keys/values are *projections of that layer's past inputs*.
Reusing them is exact only while those inputs cannot change when the
sequence grows:

* **Causal masks, any depth** — position ``j`` never attends to positions
  ``> j``, so appending a token leaves every prefix hidden state (and hence
  every layer's prefix K/V) untouched.
* **Single-layer stacks, any additive mask** — layer 1's K/V are projections
  of the raw input embeddings, which are fixed per position regardless of
  what the mask reveals.

The paper's PIM breaks the first condition for deeper stacks: every prefix
position attends to the objective item, and the objective's *position
embedding moves* every time the path grows, so prefix hidden states at
layers ``>= 2`` change at every decoding step.  Callers (see
:meth:`repro.core.irn.IRN.begin_decoding_session`) must therefore gate
incremental decoding on this contract and fall back to full re-encoding
otherwise; the cache itself is policy-free.

Caches are inference-only: they hold raw ``numpy`` arrays detached from the
autograd graph.  Storage precision defaults to the thread's
:func:`~repro.nn.tensor.inference_dtype` at first extend (float64 unless the
opt-in float32 mode is active).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import inference_dtype
from repro.obs.registry import MetricGroup, get_registry
from repro.utils.exceptions import ConfigurationError

__all__ = [
    "LayerKVCache",
    "DecodingState",
    "GROWTH_MODES",
    "allocation_stats",
    "reset_allocation_stats",
]

#: Arena growth policies: ``geometric`` doubles capacity when full (amortized
#: O(T) copying); ``exact`` reallocates to exactly the needed width every
#: extend (the legacy fallback — still concatenate-free, copies capped to
#: prefix + appended slice with no temporaries or transient-column retention).
GROWTH_MODES = ("geometric", "exact")

#: Smallest arena capacity (columns) allocated under geometric growth.
MIN_CAPACITY = 8

# ---------------------------------------------------------------------- #
# Allocation accounting (evidence for the tensor_ops bench / perf gate)
# ---------------------------------------------------------------------- #

# The counters live in the process-wide metrics registry at the fixed scope
# ``cache.kv`` (allocation is a module-wide property, not per-cache), so a
# snapshot is one registry-lock read and the same counters surface in
# ``repro-irs metrics`` exports.
_STATS = MetricGroup(
    get_registry(),
    "cache.kv",
    counters=(
        "extend_calls",
        "arena_allocated_bytes",  # bytes of fresh arena (and spare) buffers
        "copied_bytes",  # bytes actually moved (appended slices + growth copies)
        "concat_equivalent_bytes",  # bytes a concatenate-per-extend would move
    ),
)


def reset_allocation_stats() -> None:
    """Zero the module-wide K/V allocation counters."""
    _STATS.reset()


def allocation_stats() -> dict:
    """Snapshot of the module-wide K/V allocation counters.

    ``copied_bytes`` counts bytes physically copied by all caches since the
    last reset (appended K/V slices, plus prefix moves on arena growth);
    ``concat_equivalent_bytes`` counts what the pre-arena implementation —
    ``np.concatenate([prefix, new])`` per extend — would have copied for the
    same call sequence.  Their ratio is the decode-step allocation win and
    backs the ``no_prefix_copy`` contract bit.  The snapshot is a single
    atomic registry read — all four counters come from one lock acquisition.
    """
    return _STATS.values()


def _record(extend_calls: int = 0, arena: int = 0, copied: int = 0, concat: int = 0) -> None:
    _STATS.record(
        add={
            "extend_calls": extend_calls,
            "arena_allocated_bytes": arena,
            "copied_bytes": copied,
            "concat_equivalent_bytes": concat,
        }
    )


class LayerKVCache:
    """Cached attention keys/values of one layer, shape ``(batch, heads, len, d_head)``.

    ``dtype`` fixes the storage precision (default: the thread's
    :func:`~repro.nn.tensor.inference_dtype` when the first extend arrives).
    ``growth`` picks the arena policy (see :data:`GROWTH_MODES`).
    """

    def __init__(
        self,
        dtype: "np.dtype | str | None" = None,
        growth: str = "geometric",
    ) -> None:
        if growth not in GROWTH_MODES:
            raise ConfigurationError(
                f"growth must be one of {GROWTH_MODES}, got {growth!r}"
            )
        self._requested_dtype = None if dtype is None else np.dtype(dtype)
        self._growth = growth
        self._key_buf: np.ndarray | None = None
        self._value_buf: np.ndarray | None = None
        self._key_spare: np.ndarray | None = None
        self._value_spare: np.ndarray | None = None
        self._length = 0

    # ------------------------------------------------------------------ #
    @property
    def keys(self) -> np.ndarray | None:
        """View of the cached key columns (``None`` when empty)."""
        if self._key_buf is None:
            return None
        return self._key_buf[:, :, : self._length]

    @property
    def values(self) -> np.ndarray | None:
        """View of the cached value columns (``None`` when empty)."""
        if self._value_buf is None:
            return None
        return self._value_buf[:, :, : self._length]

    @property
    def length(self) -> int:
        """Number of cached key/value positions (0 when empty)."""
        return self._length

    @property
    def batch_size(self) -> int | None:
        """Number of cached rows, or ``None`` when the cache is empty."""
        return None if self._key_buf is None else int(self._key_buf.shape[0])

    @property
    def dtype(self) -> np.dtype | None:
        """Storage dtype, or ``None`` before the first extend resolves it."""
        if self._key_buf is not None:
            return self._key_buf.dtype
        return self._requested_dtype

    @property
    def capacity(self) -> int:
        """Allocated arena columns (>= :attr:`length`)."""
        return 0 if self._key_buf is None else int(self._key_buf.shape[2])

    # ------------------------------------------------------------------ #
    def _target_capacity(self, needed: int) -> int:
        if self._growth == "exact":
            return needed
        capacity = max(MIN_CAPACITY, self.capacity)
        while capacity < needed:
            capacity *= 2
        return capacity

    def _ensure_capacity(self, batch: int, heads: int, d_head: int, needed: int) -> None:
        """Grow (or allocate) the arenas so ``needed`` columns fit."""
        if self._key_buf is not None and self.capacity >= needed:
            return
        dtype = self.dtype if self.dtype is not None else inference_dtype()
        capacity = self._target_capacity(needed)
        shape = (batch, heads, capacity, d_head)
        key_buf = np.empty(shape, dtype=dtype)
        value_buf = np.empty(shape, dtype=dtype)
        copied = 0
        if self._length:
            key_buf[:, :, : self._length] = self._key_buf[:, :, : self._length]
            value_buf[:, :, : self._length] = self._value_buf[:, :, : self._length]
            copied = 2 * self._length * batch * heads * d_head * dtype.itemsize
        self._key_buf, self._value_buf = key_buf, value_buf
        # Spares are tied to the old capacity; drop them and re-allocate lazily.
        self._key_spare = self._value_spare = None
        _record(arena=key_buf.nbytes + value_buf.nbytes, copied=copied)

    def extend(
        self, keys: np.ndarray, values: np.ndarray, persist: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append newly projected K/V and return the full arrays to attend over.

        ``keys``/``values`` are ``(batch, heads, new, d_head)`` arrays for the
        newly processed positions.  Only the first ``persist`` new positions
        are retained in the cache (default: all of them); the rest are
        *transient* — they participate in this forward pass (e.g. the
        objective item, whose position embedding changes every step and must
        be re-projected each call) but are not part of the growing prefix:
        their arena slots are overwritten by the next extend.

        The returned arrays are **views into the arena**, valid until the
        next ``extend``/``reorder`` on this cache.
        """
        if keys.shape != values.shape:
            raise ConfigurationError(
                f"key/value shapes disagree: {keys.shape} vs {values.shape}"
            )
        batch, heads, new, d_head = keys.shape
        persist = new if persist is None else int(persist)
        if not 0 <= persist <= new:
            raise ConfigurationError(
                f"persist must be in [0, {new}], got {persist}"
            )
        if self._key_buf is not None and self._key_buf.shape[0] != batch:
            raise ConfigurationError(
                f"cache holds {self._key_buf.shape[0]} rows but got {batch}; "
                "reorder() the cache before extending with a different batch"
            )
        self._ensure_capacity(batch, heads, d_head, self._length + new)
        start, stop = self._length, self._length + new
        self._key_buf[:, :, start:stop] = keys
        self._value_buf[:, :, start:stop] = values
        full_keys = self._key_buf[:, :, :stop]
        full_values = self._value_buf[:, :, :stop]
        itemsize = self._key_buf.dtype.itemsize
        row = batch * heads * d_head * itemsize
        _record(
            extend_calls=1,
            copied=2 * new * row,
            concat=2 * stop * row,
        )
        self._length += persist
        return full_keys, full_values

    def reorder(self, rows: np.ndarray) -> None:
        """Re-index the batch dimension (prune / duplicate / permute rows).

        Gathers the used arena region into a spare arena with
        :func:`np.take` and swaps buffers — after warm-up (steady batch
        size) no allocation happens at all.
        """
        if self._key_buf is None:
            return
        rows = np.asarray(rows, dtype=np.int64)
        _, heads, capacity, d_head = self._key_buf.shape
        shape = (int(rows.shape[0]), heads, capacity, d_head)
        if self._key_spare is None or self._key_spare.shape != shape:
            self._key_spare = np.empty(shape, dtype=self._key_buf.dtype)
            self._value_spare = np.empty(shape, dtype=self._value_buf.dtype)
            _record(arena=self._key_spare.nbytes + self._value_spare.nbytes)
        used = slice(None), slice(None), slice(0, self._length)
        np.take(self._key_buf[used], rows, axis=0, out=self._key_spare[used])
        np.take(self._value_buf[used], rows, axis=0, out=self._value_spare[used])
        self._key_buf, self._key_spare = self._key_spare, self._key_buf
        self._value_buf, self._value_spare = self._value_spare, self._value_buf
        if self._key_spare.shape != self._key_buf.shape:
            # Batch size changed: the old buffers can't serve as spares.
            self._key_spare = self._value_spare = None


class DecodingState:
    """A stack of per-layer :class:`LayerKVCache`, one per encoder layer.

    ``dtype``/``growth`` are forwarded to every layer cache.
    """

    def __init__(
        self,
        num_layers: int,
        dtype: "np.dtype | str | None" = None,
        growth: str = "geometric",
    ) -> None:
        if num_layers <= 0:
            raise ConfigurationError(f"num_layers must be positive, got {num_layers}")
        self.layers = [LayerKVCache(dtype=dtype, growth=growth) for _ in range(num_layers)]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    @property
    def length(self) -> int:
        """Cached prefix length (all layers stay in lockstep)."""
        return self.layers[0].length

    @property
    def batch_size(self) -> int | None:
        return self.layers[0].batch_size

    def reorder(self, rows: np.ndarray) -> None:
        """Re-index every layer's cache rows (beam pruning / re-ranking)."""
        for layer in self.layers:
            layer.reorder(rows)
