"""Per-layer key/value state for incremental transformer decoding.

A :class:`LayerKVCache` stores the attention keys/values a
:class:`~repro.nn.attention.MultiHeadAttention` layer has already projected
for a batch of growing sequences, so a later forward pass only has to project
the newly appended token(s) and attend over the cached prefix.  A
:class:`DecodingState` stacks one cache per encoder layer and keeps the
per-row bookkeeping aligned when beam search prunes, reorders or duplicates
hypotheses.

Exactness contract
------------------
Cached prefix keys/values are *projections of that layer's past inputs*.
Reusing them is exact only while those inputs cannot change when the
sequence grows:

* **Causal masks, any depth** — position ``j`` never attends to positions
  ``> j``, so appending a token leaves every prefix hidden state (and hence
  every layer's prefix K/V) untouched.
* **Single-layer stacks, any additive mask** — layer 1's K/V are projections
  of the raw input embeddings, which are fixed per position regardless of
  what the mask reveals.

The paper's PIM breaks the first condition for deeper stacks: every prefix
position attends to the objective item, and the objective's *position
embedding moves* every time the path grows, so prefix hidden states at
layers ``>= 2`` change at every decoding step.  Callers (see
:meth:`repro.core.irn.IRN.begin_decoding_session`) must therefore gate
incremental decoding on this contract and fall back to full re-encoding
otherwise; the cache itself is policy-free.

Caches are inference-only: they hold raw ``numpy`` arrays detached from the
autograd graph.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import ConfigurationError

__all__ = ["LayerKVCache", "DecodingState"]


class LayerKVCache:
    """Cached attention keys/values of one layer, shape ``(batch, heads, len, d_head)``."""

    def __init__(self) -> None:
        self.keys: np.ndarray | None = None
        self.values: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Number of cached key/value positions (0 when empty)."""
        return 0 if self.keys is None else int(self.keys.shape[2])

    @property
    def batch_size(self) -> int | None:
        """Number of cached rows, or ``None`` when the cache is empty."""
        return None if self.keys is None else int(self.keys.shape[0])

    # ------------------------------------------------------------------ #
    def extend(
        self, keys: np.ndarray, values: np.ndarray, persist: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Append newly projected K/V and return the full arrays to attend over.

        ``keys``/``values`` are ``(batch, heads, new, d_head)`` arrays for the
        newly processed positions.  Only the first ``persist`` new positions
        are retained in the cache (default: all of them); the rest are
        *transient* — they participate in this forward pass (e.g. the
        objective item, whose position embedding changes every step and must
        be re-projected each call) but are not part of the growing prefix.
        """
        if keys.shape != values.shape:
            raise ConfigurationError(
                f"key/value shapes disagree: {keys.shape} vs {values.shape}"
            )
        new = int(keys.shape[2])
        persist = new if persist is None else int(persist)
        if not 0 <= persist <= new:
            raise ConfigurationError(
                f"persist must be in [0, {new}], got {persist}"
            )
        if self.keys is None:
            full_keys, full_values = keys, values
        else:
            if self.keys.shape[0] != keys.shape[0]:
                raise ConfigurationError(
                    f"cache holds {self.keys.shape[0]} rows but got {keys.shape[0]}; "
                    "reorder() the cache before extending with a different batch"
                )
            full_keys = np.concatenate([self.keys, keys], axis=2)
            full_values = np.concatenate([self.values, values], axis=2)
        width = self.length + persist
        self.keys = full_keys[:, :, :width]
        self.values = full_values[:, :, :width]
        return full_keys, full_values

    def reorder(self, rows: np.ndarray) -> None:
        """Re-index the batch dimension (prune / duplicate / permute rows)."""
        if self.keys is None:
            return
        rows = np.asarray(rows, dtype=np.int64)
        self.keys = self.keys[rows]
        self.values = self.values[rows]


class DecodingState:
    """A stack of per-layer :class:`LayerKVCache`, one per encoder layer."""

    def __init__(self, num_layers: int) -> None:
        if num_layers <= 0:
            raise ConfigurationError(f"num_layers must be positive, got {num_layers}")
        self.layers = [LayerKVCache() for _ in range(num_layers)]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    @property
    def length(self) -> int:
        """Cached prefix length (all layers stay in lockstep)."""
        return self.layers[0].length

    @property
    def batch_size(self) -> int | None:
        return self.layers[0].batch_size

    def reorder(self, rows: np.ndarray) -> None:
        """Re-index every layer's cache rows (beam pruning / re-ranking)."""
        for layer in self.layers:
            layer.reorder(rows)
