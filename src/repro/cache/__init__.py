"""Inference caching: incremental decoding state + cross-call plan memoisation.

Two layers, measured together by :mod:`repro.perf.bench`:

* :mod:`repro.cache.kv` — per-layer key/value caches
  (:class:`LayerKVCache`, :class:`DecodingState`) so a transformer forward
  can encode only newly appended tokens while attending over the cached
  prefix, plus the exactness contract that gates when this is bit-compatible
  with full re-encoding.
* :mod:`repro.cache.memo` — a bounded LRU (:class:`PlanCache`) memoising
  planned influence paths across ``next_step`` replanning calls.

:mod:`repro.cache.session` carries the batch bookkeeping between the two
(:class:`DecodingSession`), and :mod:`repro.cache.stats` counts token-work
(:class:`DecodeStats`).
"""

from repro.cache.kv import DecodingState, LayerKVCache
from repro.cache.memo import PlanCache
from repro.cache.session import DecodingSession
from repro.cache.stats import DecodeStats

__all__ = [
    "LayerKVCache",
    "DecodingState",
    "PlanCache",
    "DecodingSession",
    "DecodeStats",
]
