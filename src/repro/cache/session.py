"""Batch-level bookkeeping for an incremental decoding run.

A :class:`DecodingSession` ties a :class:`~repro.cache.kv.DecodingState`
(per-layer K/V caches) to the per-row context it was built from: the real
prefix tokens of every row, the user indices, the optional objectives and
the pre-computed impressionability factors.  The beam-search planner drives
it through :meth:`~repro.core.irn.IRN.begin_decoding_session` /
:meth:`~repro.core.irn.IRN.advance_decoding_session`; between depths it
calls :meth:`select` to gather the cache rows of the surviving hypotheses
(pruning, duplication and re-ranking are all just row gathers) and
:meth:`append` to record each row's newly appended token.

``incremental`` reflects the exactness contract documented in
:mod:`repro.cache.kv`: when it is ``False`` (multi-layer stack under an
objective-revealing PIM, or a context that outgrew the model's position
table) the session still tracks rows/users/objectives so scoring can fall
back to exact full re-encoding, but the K/V state is dropped.
"""

from __future__ import annotations

import numpy as np

from repro.cache.kv import DecodingState
from repro.utils.exceptions import ConfigurationError

__all__ = ["DecodingSession"]


class DecodingSession:
    """State of one incremental decoding run over a batch of growing rows."""

    def __init__(
        self,
        rows: list[list[int]],
        users: np.ndarray,
        objectives: list[int] | None,
        state: DecodingState | None,
        incremental: bool,
        width: int,
        impressionability: np.ndarray | None = None,
    ) -> None:
        self.rows = [list(row) for row in rows]
        self.users = np.asarray(users, dtype=np.int64)
        self.objectives = None if objectives is None else [int(o) for o in objectives]
        self.state = state
        self.incremental = bool(incremental)
        #: number of (possibly left-padded) prefix columns currently cached
        self.width = int(width)
        #: per-row ``r_u`` (personalized masks only), gathered alongside the rows
        self.impressionability = impressionability

    # ------------------------------------------------------------------ #
    @property
    def batch_size(self) -> int:
        return len(self.rows)

    @property
    def lengths(self) -> np.ndarray:
        """Real (non-padding) token count of every row."""
        return np.asarray([len(row) for row in self.rows], dtype=np.int64)

    # ------------------------------------------------------------------ #
    def select(self, parent_rows: "list[int] | np.ndarray") -> None:
        """Gather the session down to ``parent_rows`` (repeats allowed)."""
        parent_rows = np.asarray(parent_rows, dtype=np.int64)
        if parent_rows.size and (
            parent_rows.min() < 0 or parent_rows.max() >= self.batch_size
        ):
            raise ConfigurationError(
                f"parent rows out of range for a batch of {self.batch_size}"
            )
        self.rows = [list(self.rows[int(row)]) for row in parent_rows]
        self.users = self.users[parent_rows]
        if self.objectives is not None:
            self.objectives = [self.objectives[int(row)] for row in parent_rows]
        if self.impressionability is not None:
            self.impressionability = self.impressionability[parent_rows]
        if self.state is not None:
            self.state.reorder(parent_rows)

    def append(self, new_items: "list[int] | np.ndarray") -> None:
        """Record one newly appended token per row (uniform growth)."""
        new_items = np.asarray(new_items, dtype=np.int64)
        if new_items.shape != (self.batch_size,):
            raise ConfigurationError(
                f"expected {self.batch_size} new items, got shape {new_items.shape}"
            )
        for row, item in zip(self.rows, new_items):
            row.append(int(item))
        self.width += 1

    def degrade(self) -> None:
        """Permanently drop the K/V state and fall back to full re-encoding."""
        self.incremental = False
        self.state = None
