"""Bounded LRU memoisation of planned influence paths.

:class:`PlanCache` maps a planning context key — the issue's
``(tuple(history), objective, user_index, max_length)`` — to an immutable
planned path, with hit/miss/eviction counters for the perf harness.  A
``maxsize`` of 0 disables the cache entirely (every ``get`` misses, ``put``
is a no-op), which is how the benchmark reproduces the pre-cache baseline.

The cache is deliberately value-agnostic: :class:`~repro.core.beam.
BeamSearchPlanner` uses one instance for finished plans and a second one for
the evolving per-context serving plans behind ``next_step`` (the
generalisation of its old single replan slot), so the two families of
entries can never shadow each other.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.utils.exceptions import ConfigurationError

__all__ = ["PlanCache"]


class PlanCache:
    """A bounded LRU mapping hashable planning keys to memoised values."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ConfigurationError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable):
        """Return the cached value (refreshing its recency) or ``None``."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh an entry, evicting the least recently used beyond ``maxsize``."""
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (model retrain invalidation); counters are kept."""
        if self._data:
            self.invalidations += 1
        self._data.clear()

    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict:
        """Counters for the perf harness / ``BENCH_path_planning.json``."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
        }
