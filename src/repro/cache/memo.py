"""Bounded LRU memoisation of planned influence paths.

:class:`PlanCache` maps a planning context key — the issue's
``(tuple(history), objective, user_index, max_length)`` — to an immutable
planned path, with hit/miss/eviction counters for the perf harness.  A
``maxsize`` of 0 disables the cache entirely (every ``get`` misses, ``put``
is a no-op), which is how the benchmark reproduces the pre-cache baseline.

The cache is deliberately value-agnostic: :class:`~repro.core.beam.
BeamSearchPlanner` uses one instance for finished plans and a second one for
the evolving per-context serving plans behind ``next_step`` (the
generalisation of its old single replan slot), so the two families of
entries can never shadow each other.

Thread safety
-------------
Every mutation of the LRU map is guarded by one reentrant lock, so a
:class:`PlanCache` (or one shard of a
:class:`~repro.shard.plancache.ShardedPlanCache`) can be consulted
concurrently by the sharded execution subsystem's worker threads without
corrupting the ``OrderedDict``.  The hit/miss/eviction counters live in the
process-wide metrics registry (:mod:`repro.obs.registry`) under a
per-instance ``cache.plan.<n>`` scope — each lookup applies its counter
update in one registry-lock acquisition, :meth:`counters` is one locked
group read, and the same counters surface in ``repro-irs metrics`` exports.
Per-shard counter snapshots merge into one report via
:func:`merge_cache_infos`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable

from repro.obs.registry import MetricGroup, get_registry
from repro.utils.exceptions import ConfigurationError

__all__ = ["PlanCache", "merge_cache_infos"]

_COUNTER_FIELDS = ("hits", "misses", "evictions", "invalidations")


def merge_cache_infos(infos: "Iterable[dict]") -> dict:
    """Merge per-shard :meth:`PlanCache.cache_info` dicts into one report.

    Sizes and counters sum across shards; the hit rate is recomputed from
    the merged totals (NOT averaged, so empty shards don't dilute it).
    """
    merged = {
        "size": 0,
        "maxsize": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "invalidations": 0,
    }
    for info in infos:
        for key in merged:
            merged[key] += info[key]
    lookups = merged["hits"] + merged["misses"]
    merged["hit_rate"] = round(merged["hits"] / lookups, 4) if lookups else 0.0
    return merged


class PlanCache:
    """A bounded LRU mapping hashable planning keys to memoised values."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ConfigurationError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        registry = get_registry()
        self._counters = MetricGroup(
            registry, registry.scope("cache.plan"), counters=_COUNTER_FIELDS
        )

    # ------------------------------------------------------------------ #
    # Counter reads keep their historical attribute spelling
    # (``cache.hits`` etc.) as registry-backed properties.
    # ------------------------------------------------------------------ #
    @property
    def hits(self) -> int:
        return self._counters.value("hits")

    @property
    def misses(self) -> int:
        return self._counters.value("misses")

    @property
    def evictions(self) -> int:
        return self._counters.value("evictions")

    @property
    def invalidations(self) -> int:
        return self._counters.value("invalidations")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable):
        """Return the cached value (refreshing its recency) or ``None``."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._counters.record(add={"hits": 1})
                return self._data[key]
            self._counters.record(add={"misses": 1})
            return None

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh an entry, evicting the least recently used beyond ``maxsize``."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            evicted = 0
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                evicted += 1
            if evicted:
                self._counters.record(add={"evictions": evicted})

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry (model retrain invalidation).

        Counters are kept by default — an invalidation is part of the cache's
        lifetime story, and the bench reads the totals afterwards.  With
        ``reset_stats=True`` the hit/miss/eviction/invalidation counters are
        also zeroed, which is how per-shard caches are recycled between
        measured workloads so their stats merge cleanly into one report.
        """
        with self._lock:
            if self._data:
                self._counters.record(add={"invalidations": 1})
            self._data.clear()
            if reset_stats:
                self._counters.reset()

    # ------------------------------------------------------------------ #
    def counters(self) -> dict:
        """One locked snapshot of the size and hit/miss/eviction counters.

        Callers aggregating counters across caches (the sharded façade, the
        serving loop's stats endpoint) must use this instead of reading the
        ``hits`` / ``misses`` / ... attributes one by one: a drain thread
        recording a lookup between two attribute reads would make the
        combination torn (e.g. a hit counted but not yet visible next to the
        miss total it belongs with).
        """
        with self._lock:
            counts = self._counters.values()
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": counts["hits"],
                "misses": counts["misses"],
                "evictions": counts["evictions"],
                "invalidations": counts["invalidations"],
            }

    def cache_info(self) -> dict:
        """Counters for the perf harness / ``BENCH_path_planning.json``."""
        info = self.counters()
        lookups = info["hits"] + info["misses"]
        info["hit_rate"] = round(info["hits"] / lookups, 4) if lookups else 0.0
        return info
