"""Rec2Inf: adapting an existing recommender with greedy search (§III-C).

At each step the backbone recommender produces its top-``k`` candidates for
the current sequence (history ⊕ path so far); the candidate closest to the
objective item (by genre or embedding distance) is greedily appended to the
influence path.  With ``k=1`` this degenerates to the vanilla backbone; with
``k = |I|`` it can jump straight to the objective.  ``k`` therefore controls
the aggressiveness degree studied in Figure 7.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import InfluentialRecommender, influential_registry
from repro.core.distance import ItemDistance
from repro.data.splitting import DatasetSplit
from repro.models.base import SequentialRecommender
from repro.utils.exceptions import ConfigurationError

__all__ = ["Rec2Inf"]


@influential_registry.register("rec2inf")
class Rec2Inf(InfluentialRecommender):
    """Greedy objective-aware re-ranking on top of any sequential recommender.

    Parameters
    ----------
    backbone:
        Any :class:`~repro.models.base.SequentialRecommender`; it is fitted
        inside :meth:`fit` unless ``fit_backbone=False``.
    distance:
        An :class:`~repro.core.distance.ItemDistance`; if ``None``,
        :meth:`fit` builds one from the corpus genre matrix (when available)
        or from co-occurrence embeddings.
    candidate_k:
        Size of the backbone's candidate set (``k = 50`` in the paper).
    allow_repeats:
        If False (default) items already in the history or path are excluded
        from the candidate set, preventing degenerate loops.
    """

    def __init__(
        self,
        backbone: SequentialRecommender,
        distance: ItemDistance | None = None,
        candidate_k: int = 50,
        allow_repeats: bool = False,
        fit_backbone: bool = True,
    ) -> None:
        super().__init__()
        if candidate_k <= 0:
            raise ConfigurationError(f"candidate_k must be positive, got {candidate_k}")
        self.backbone = backbone
        self.distance = distance
        self.candidate_k = candidate_k
        self.allow_repeats = allow_repeats
        self.fit_backbone = fit_backbone
        self.name = f"Rec2Inf-{backbone.name}"

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "Rec2Inf":
        self.corpus = split.corpus
        if self.fit_backbone:
            self.backbone.fit(split)
        elif self.backbone.corpus is None:
            raise ConfigurationError("backbone is not fitted and fit_backbone=False")
        if self.distance is None:
            self.distance = self._default_distance(split)
        return self

    def _default_distance(self, split: DatasetSplit) -> ItemDistance:
        corpus = split.corpus
        if corpus.item_genre_matrix is not None:
            return ItemDistance.from_genres(corpus)
        from repro.embeddings.cooccurrence import CooccurrenceEmbedding

        embedding = CooccurrenceEmbedding(embedding_dim=32).fit(corpus)
        return ItemDistance.from_embeddings(embedding.vectors)

    # ------------------------------------------------------------------ #
    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        self._require_fitted()
        assert self.distance is not None
        sequence = list(history) + list(path_so_far)
        exclude: list[int] = [] if self.allow_repeats else sequence
        candidates = self.backbone.top_k(
            sequence, self.candidate_k, user_index=user_index, exclude=exclude
        )
        if not candidates:
            return None
        if objective in candidates:
            # Zero distance to itself: with a large enough candidate set the
            # greedy re-ranking recommends the objective directly (§IV-D3).
            return int(objective)
        return self.distance.closest_to(objective, candidates)
