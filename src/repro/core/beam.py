"""Beam-search influence-path planning.

Algorithm 1 of the paper generates the influence path greedily: at each step
the single highest-probability item (given the objective through the PIM) is
appended.  Greedy decoding can paint the path into a corner — exactly the
limitation the paper attributes to Rec2Inf ("the local optimal selections may
not ultimately reach the global optimal influence path", §III-C).

:class:`BeamSearchPlanner` wraps any recommender that exposes
``score_with_objective(sequence, objective, user_index)`` (IRN does) and
plans the whole path with beam search instead.  Hypotheses are scored by
their average per-step log-probability plus a terminal bonus for reaching the
objective; the best complete hypothesis (or the best partial one, if none is
complete) becomes the influence path.

The planner also implements the standard
:class:`~repro.core.base.InfluentialRecommender` interface, so it drops into
every evaluation protocol: ``next_step`` simply serves the next item of the
currently planned path and replans when the context changes.

Batched expansion
-----------------
Search is organised so that every transformer forward is as wide as
possible: at each depth, ALL live hypotheses — across the whole beam and,
via :meth:`BeamSearchPlanner.plan_paths_batch`, across every evaluation
instance being rolled out in lockstep — are scored with one call to the
backbone's ``score_with_objective_batch`` (falling back to per-sequence
scalar calls when the backbone only implements ``score_with_objective``).
Seen-item masking is a single fancy indexed assignment and per-hypothesis
top-``k`` selection uses ``np.argpartition`` over the vocabulary instead of
a full sort; candidate ordering and tie-breaking exactly reproduce the
pre-batching stable ``argsort`` implementation, so plans are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.base import InfluentialRecommender, influential_registry
from repro.core.influence_path import mask_session_items
from repro.data.splitting import DatasetSplit
from repro.utils.batch import broadcast_user_indices, check_batch_lengths
from repro.utils.exceptions import ConfigurationError

__all__ = ["BeamSearchPlanner"]


@runtime_checkable
class _ObjectiveScorer(Protocol):
    """Anything that can score the next item conditioned on an objective."""

    def score_with_objective(
        self, sequence: Sequence[int], objective: int, user_index: int | None = None
    ) -> np.ndarray:  # pragma: no cover - protocol signature only
        ...


@dataclass(frozen=True)
class _Hypothesis:
    """One partial path inside the beam."""

    items: tuple[int, ...]
    log_probability: float
    reached: bool

    def score(self, objective_bonus: float) -> float:
        """Length-normalised log-probability plus the completion bonus."""
        length = max(len(self.items), 1)
        return self.log_probability / length + (objective_bonus if self.reached else 0.0)


@influential_registry.register("beam")
class BeamSearchPlanner(InfluentialRecommender):
    """Plan influence paths with beam search over an objective-aware scorer.

    Parameters
    ----------
    backbone:
        A fitted (or fit-able) recommender exposing ``score_with_objective``
        — in practice an :class:`~repro.core.irn.IRN`.
    beam_width:
        Number of hypotheses kept per step.
    branch_factor:
        Number of next-item candidates expanded from each hypothesis.
    objective_bonus:
        Additive bonus (in average-log-prob units) for hypotheses that reach
        the objective; larger values prefer *reaching* over smoothness.
    fit_backbone:
        Whether :meth:`fit` should also fit the backbone.
    """

    name = "IRN-beam"

    def __init__(
        self,
        backbone: _ObjectiveScorer,
        beam_width: int = 4,
        branch_factor: int = 4,
        objective_bonus: float = 1.0,
        fit_backbone: bool = False,
    ) -> None:
        super().__init__()
        if not hasattr(backbone, "score_with_objective"):
            raise ConfigurationError(
                "BeamSearchPlanner needs a backbone with score_with_objective()"
            )
        if beam_width <= 0 or branch_factor <= 0:
            raise ConfigurationError("beam_width and branch_factor must be positive")
        if objective_bonus < 0:
            raise ConfigurationError("objective_bonus must be non-negative")
        self.backbone = backbone
        self.beam_width = beam_width
        self.branch_factor = branch_factor
        self.objective_bonus = objective_bonus
        self.fit_backbone = fit_backbone
        backbone_name = getattr(backbone, "name", type(backbone).__name__)
        self.name = f"{backbone_name}-beam"
        self._plan_key: tuple | None = None
        self._plan: list[int] = []

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "BeamSearchPlanner":
        self.corpus = split.corpus
        if self.fit_backbone:
            self.backbone.fit(split)  # type: ignore[attr-defined]
        backbone_corpus = getattr(self.backbone, "corpus", None)
        if backbone_corpus is None:
            raise ConfigurationError("the beam-search backbone must be fitted")
        return self

    # ------------------------------------------------------------------ #
    def _log_softmax_rows(self, scores: np.ndarray) -> np.ndarray:
        """Row-wise log-softmax over ``(batch, vocab)`` with ``-inf`` masking.

        Rows without a single finite entry (every candidate masked out) yield
        an all ``-inf`` row instead of crashing on an empty ``np.max``.
        """
        finite = np.isfinite(scores)
        any_finite = finite.any(axis=1)
        row_max = np.max(np.where(finite, scores, -np.inf), axis=1, initial=-np.inf)
        with np.errstate(divide="ignore", invalid="ignore"):
            shifted = scores - np.where(any_finite, row_max, 0.0)[:, None]
            exp = np.where(finite, np.exp(shifted), 0.0)
            log_norm = np.log(exp.sum(axis=1))
            return np.where(finite, shifted - log_norm[:, None], -np.inf)

    def _log_softmax(self, scores: np.ndarray) -> np.ndarray:
        return self._log_softmax_rows(np.asarray(scores, dtype=np.float64)[None, :])[0]

    def _batched_scores(
        self,
        sequences: list[list[int]],
        objectives: list[int],
        user_indices: "list[int | None]",
    ) -> np.ndarray:
        """Score every sequence against its objective, fused when possible."""
        scorer = getattr(self.backbone, "score_with_objective_batch", None)
        if scorer is not None:
            return np.asarray(
                scorer(sequences, objectives, user_indices), dtype=np.float64
            ).copy()
        return np.stack(
            [
                np.asarray(
                    self.backbone.score_with_objective(sequence, objective, user_index=user),
                    dtype=np.float64,
                )
                for sequence, objective, user in zip(sequences, objectives, user_indices)
            ]
        )

    def _expand_all(
        self,
        parents: list[_Hypothesis],
        sequences: list[list[int]],
        objectives: list[int],
        user_indices: "list[int | None]",
    ) -> list[list[_Hypothesis]]:
        """Expand many hypotheses with ONE batched scoring call.

        Returns the children of each parent in the same order the scalar
        implementation produced them: descending log-probability with ties
        broken by item index (the stable-``argsort`` order), non-finite
        candidates dropped.
        """
        scores = self._batched_scores(sequences, objectives, user_indices)
        mask_session_items(scores, sequences, objectives)
        log_probs = self._log_softmax_rows(scores)
        count, vocab = log_probs.shape
        k = min(self.branch_factor, vocab)
        top = np.argpartition(-log_probs, k - 1, axis=1)[:, :k]
        top_values = np.take_along_axis(log_probs, top, axis=1)
        # Stable-argsort order among the k winners: value desc, index asc.
        order = np.lexsort((top, -top_values), axis=1)
        top = np.take_along_axis(top, order, axis=1)
        top_values = np.take_along_axis(top_values, order, axis=1)
        # argpartition gives no guarantee about WHICH index wins a tie at the
        # k-th boundary; the scalar stable argsort kept the lowest index.  A
        # finite boundary value that also occurs outside the selection marks
        # such a tie — repair those (rare) rows with an exact stable sort.
        boundary = top_values[:, -1]
        finite_boundary = np.isfinite(boundary)
        if finite_boundary.any():
            selected_ties = (top_values == boundary[:, None]).sum(axis=1)
            total_ties = (log_probs == boundary[:, None]).sum(axis=1)
            for row in np.flatnonzero(finite_boundary & (total_ties > selected_ties)):
                exact = np.argsort(-log_probs[row], kind="stable")[:k]
                top[row] = exact
                top_values[row] = log_probs[row][exact]
        expansions: list[list[_Hypothesis]] = []
        for row, parent in enumerate(parents):
            objective = objectives[row]
            children = [
                _Hypothesis(
                    items=parent.items + (int(item),),
                    log_probability=parent.log_probability + float(value),
                    reached=int(item) == objective,
                )
                for item, value in zip(top[row], top_values[row])
                if np.isfinite(value)
            ]
            expansions.append(children)
        return expansions

    def plan_paths_batch(
        self,
        histories: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        max_length: int = 20,
    ) -> list[list[int]]:
        """Plan influence paths for many instances with lockstep beam search.

        Each instance runs the exact same beam algorithm as before, but every
        depth issues a single fused scoring call covering all live hypotheses
        of ALL still-running instances, so one transformer forward replaces
        up to ``beam_width * num_instances`` scalar forwards.
        """
        if max_length <= 0:
            raise ConfigurationError(f"max_length must be positive, got {max_length}")
        self._require_fitted()
        count = len(histories)
        histories = [list(history) for history in histories]
        objectives = [int(objective) for objective in objectives]
        check_batch_lengths(count, objectives=objectives)
        users = broadcast_user_indices(count, user_indices)
        beams: list[list[_Hypothesis]] = [
            [_Hypothesis(items=(), log_probability=0.0, reached=False)] for _ in range(count)
        ]
        completes: list[list[_Hypothesis]] = [[] for _ in range(count)]
        running = list(range(count))

        for _ in range(max_length):
            if not running:
                break
            # Collect the live hypotheses of every running instance (beam
            # order preserved); reached hypotheses retire to the complete set.
            parents: list[_Hypothesis] = []
            owners: list[int] = []
            sequences: list[list[int]] = []
            for i in running:
                for hypothesis in beams[i]:
                    if hypothesis.reached:
                        completes[i].append(hypothesis)
                        continue
                    parents.append(hypothesis)
                    owners.append(i)
                    sequences.append(histories[i] + list(hypothesis.items))
            if not parents:
                running = []
                break
            expansions = self._expand_all(
                parents,
                sequences,
                [objectives[i] for i in owners],
                [users[i] for i in owners],
            )
            candidates: dict[int, list[_Hypothesis]] = {i: [] for i in running}
            for owner, children in zip(owners, expansions):
                candidates[owner].extend(children)
            still_running: list[int] = []
            for i in running:
                if not candidates[i]:
                    continue  # this instance's beam is frozen (scalar `break`)
                candidates[i].sort(key=lambda h: h.score(self.objective_bonus), reverse=True)
                beams[i] = candidates[i][: self.beam_width]
                still_running.append(i)
            running = still_running

        paths: list[list[int]] = []
        for i in range(count):
            completes[i].extend(h for h in beams[i] if h.reached)
            pool = completes[i] if completes[i] else beams[i]
            if not pool:
                paths.append([])
                continue
            best = max(pool, key=lambda h: h.score(self.objective_bonus))
            paths.append(list(best.items))
        return paths

    def plan_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int = 20,
    ) -> list[int]:
        """Plan a full influence path with beam search (batch-of-one)."""
        return self.plan_paths_batch(
            [history], [objective], [user_index], max_length=max_length
        )[0]

    # ------------------------------------------------------------------ #
    # InfluentialRecommender interface
    # ------------------------------------------------------------------ #
    def generate_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int = 20,
    ) -> list[int]:
        return self.plan_path(history, objective, user_index=user_index, max_length=max_length)

    def generate_paths_batch(
        self,
        histories: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        max_length: int = 20,
    ) -> list[list[int]]:
        return self.plan_paths_batch(
            histories, objectives, user_indices=user_indices, max_length=max_length
        )

    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        key = (tuple(history), int(objective), user_index)
        path_so_far = list(path_so_far)
        if self._plan_key != key or self._plan[: len(path_so_far)] != path_so_far:
            remaining = max(20 - len(path_so_far), 1)
            replanned = self.plan_path(
                list(history) + path_so_far, objective, user_index=user_index, max_length=remaining
            )
            self._plan_key = key
            self._plan = path_so_far + replanned
        if len(self._plan) > len(path_so_far):
            return int(self._plan[len(path_so_far)])
        return None
