"""Beam-search influence-path planning.

Algorithm 1 of the paper generates the influence path greedily: at each step
the single highest-probability item (given the objective through the PIM) is
appended.  Greedy decoding can paint the path into a corner — exactly the
limitation the paper attributes to Rec2Inf ("the local optimal selections may
not ultimately reach the global optimal influence path", §III-C).

:class:`BeamSearchPlanner` wraps any recommender that exposes
``score_with_objective(sequence, objective, user_index)`` (IRN does) and
plans the whole path with beam search instead.  Hypotheses are scored by
their average per-step log-probability plus a terminal bonus for reaching the
objective; the best complete hypothesis (or the best partial one, if none is
complete) becomes the influence path.

The planner also implements the standard
:class:`~repro.core.base.InfluentialRecommender` interface, so it drops into
every evaluation protocol: ``next_step`` simply serves the next item of the
currently planned path and replans when the context changes.

Batched expansion
-----------------
Search is organised so that every transformer forward is as wide as
possible: at each depth, ALL live hypotheses — across the whole beam and,
via :meth:`BeamSearchPlanner.plan_paths_batch`, across every evaluation
instance being rolled out in lockstep — are scored with one call to the
backbone's ``score_with_objective_batch`` (falling back to per-sequence
scalar calls when the backbone only implements ``score_with_objective``).
Seen-item masking is a single fancy indexed assignment and per-hypothesis
top-``k`` selection uses ``np.argpartition`` over the vocabulary instead of
a full sort; candidate ordering and tie-breaking exactly reproduce the
pre-batching stable ``argsort`` implementation, so plans are unchanged.

Caching
-------
Two layers from :mod:`repro.cache` sit on top of the batched expansion:

* **Incremental decoding** — when the backbone exposes decoding sessions
  (:meth:`~repro.core.irn.IRN.begin_decoding_session`), each depth gathers
  the K/V cache rows of the surviving hypotheses and encodes only the one
  newly appended token per hypothesis instead of the full right-aligned
  window.  Plans are identical; the per-depth token-work collapses whenever
  the backbone's exactness contract holds (see :mod:`repro.cache.kv`).
* **Plan memoisation** — a bounded LRU :class:`~repro.cache.memo.PlanCache`
  keyed by ``(tuple(history), objective, user_index, max_length)`` short-
  circuits :meth:`plan_paths_batch` for contexts planned before, and a
  second LRU generalises the old single ``next_step`` replan slot so many
  interleaved serving contexts (e.g. the lockstep stepwise IRS evaluation)
  no longer thrash each other into constant replanning.  Both caches are
  invalidated by :meth:`fit` and whenever the backbone's ``fit_generation``
  changes (model retrain).

Sharding
--------
With ``num_workers > 1`` the planner becomes a sharded executor client
(:mod:`repro.shard`): pending instances of :meth:`plan_paths_batch`
partition across workers by the stable hash of their plan-cache key, each
worker runs the lockstep beam over its own partition with its own decoding
sessions, and both plan caches become hash-partitioned shard sets aligned
with the work partition.  ``vocab_shards > 1`` additionally splits the item
axis of the fused logits for top-k candidate selection
(:func:`~repro.shard.topk.sharded_topk`), whose merge is exact.  Every
combination of worker count, backend and vocabulary shards produces plans
bit-identical to the serial planner.

Serving
-------
:meth:`BeamSearchPlanner.plan_for_requests` multiplexes heterogeneous
serving micro-batches — ``next_step`` and ``plan_paths`` requests mixed —
into fused planning calls; it is the drain target of the asynchronous
serving loop (:mod:`repro.serve`) and the routing layer both
:meth:`next_step` and :meth:`plan_path` now go through as batches of one.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.base import InfluentialRecommender, influential_registry
from repro.core.influence_path import mask_session_items
from repro.data.splitting import DatasetSplit
from repro.obs.registry import MetricGroup, get_registry
from repro.obs.trace import current_sink, use_sink
from repro.shard.config import resolve_vocab_shards
from repro.shard.executor import ShardedExecutor
from repro.shard.plancache import make_plan_cache
from repro.shard.topk import sharded_topk
from repro.utils.batch import broadcast_user_indices, check_batch_lengths
from repro.utils.exceptions import ConfigurationError, StaleGenerationError

__all__ = ["BeamSearchPlanner"]

logger = logging.getLogger(__name__)


@runtime_checkable
class _ObjectiveScorer(Protocol):
    """Anything that can score the next item conditioned on an objective."""

    def score_with_objective(
        self, sequence: Sequence[int], objective: int, user_index: int | None = None
    ) -> np.ndarray:  # pragma: no cover - protocol signature only
        ...


@dataclass(frozen=True)
class _Hypothesis:
    """One partial path inside the beam."""

    items: tuple[int, ...]
    log_probability: float
    reached: bool
    #: row index of the parent in the previous depth's scoring batch — the
    #: decoding-session cache row this hypothesis extends (compare=False so
    #: hypothesis identity stays purely semantic).
    parent_row: int = field(default=-1, compare=False)

    def score(self, objective_bonus: float) -> float:
        """Length-normalised log-probability plus the completion bonus."""
        length = max(len(self.items), 1)
        return self.log_probability / length + (objective_bonus if self.reached else 0.0)


@influential_registry.register("beam")
class BeamSearchPlanner(InfluentialRecommender):
    """Plan influence paths with beam search over an objective-aware scorer.

    Parameters
    ----------
    backbone:
        A fitted (or fit-able) recommender exposing ``score_with_objective``
        — in practice an :class:`~repro.core.irn.IRN`.
    beam_width:
        Number of hypotheses kept per step.
    branch_factor:
        Number of next-item candidates expanded from each hypothesis.
    objective_bonus:
        Additive bonus (in average-log-prob units) for hypotheses that reach
        the objective; larger values prefer *reaching* over smoothness.
    fit_backbone:
        Whether :meth:`fit` should also fit the backbone.
    max_length:
        Default path-length budget shared by :meth:`plan_path`,
        :meth:`plan_paths_batch` and (as the replanning horizon)
        :meth:`next_step` — previously a hardcoded ``20`` inside
        ``next_step``.
    plan_cache_size:
        Bound of the finished-plan LRU consulted by :meth:`plan_paths_batch`
        before replanning (0 disables memoisation).
    step_cache_size:
        Bound of the per-context serving-plan LRU behind :meth:`next_step`.
        Size 1 reproduces the pre-cache behaviour (a single replan slot that
        interleaved contexts thrash); must be at least 1.
    use_decoding_sessions:
        Thread incremental decoding sessions through depth expansion when the
        backbone supports them (plans are identical either way).
    num_workers:
        Worker shards that :meth:`plan_paths_batch` partitions pending
        instances across by the stable hash of their planning context; each
        shard owns an independent plan-cache partition and its own decoding
        sessions.  ``None`` (the default) reads ``REPRO_NUM_WORKERS`` and
        falls back to 1 (no sharding); sharded plans are bit-identical to
        serial ones.
    shard_backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see
        :class:`~repro.shard.executor.ShardedExecutor`); ``None`` reads
        ``REPRO_SHARD_BACKEND`` and defaults to ``"thread"`` when
        ``num_workers > 1``.
    vocab_shards:
        Column shards the fused logits tensor is split into for top-k
        candidate selection (:func:`~repro.shard.topk.sharded_topk`);
        ``None`` reads ``REPRO_VOCAB_SHARDS`` and falls back to 1.  Any
        value produces identical candidates.
    candidate_generator:
        Optional fitted (or fit-able) two-stage-retrieval generator
        (:class:`~repro.retrieval.base.CandidateGenerator`).  When set,
        each planned instance scores only over its per-context candidate
        shortlist: the fused scoring call covers the union of the shard's
        candidate sets (gathered output-projection rows when the backbone
        advertises ``supports_candidate_scoring``), per-row masking then
        restricts every hypothesis to its own instance's set, and plan /
        step cache keys gain the generator's ``retrieval_key()`` so pruned
        and exact plans can never alias.  ``None`` contexts (generator
        fallback) score the full vocabulary and are counted in the
        ``core.retrieval`` metric scope.  Decoding sessions are disabled
        under pruning — the session path projects the full vocabulary,
        which is exactly the cost pruning removes.  A full-coverage
        generator (:class:`~repro.retrieval.base.FullVocabGenerator`)
        produces plans bit-identical to exact planning.
    """

    name = "IRN-beam"

    def __init__(
        self,
        backbone: _ObjectiveScorer,
        beam_width: int = 4,
        branch_factor: int = 4,
        objective_bonus: float = 1.0,
        fit_backbone: bool = False,
        max_length: int = 20,
        plan_cache_size: int = 256,
        step_cache_size: int = 64,
        use_decoding_sessions: bool = True,
        num_workers: "int | None" = None,
        shard_backend: "str | None" = None,
        vocab_shards: "int | None" = None,
        candidate_generator=None,
    ) -> None:
        super().__init__()
        if not hasattr(backbone, "score_with_objective"):
            raise ConfigurationError(
                "BeamSearchPlanner needs a backbone with score_with_objective()"
            )
        if beam_width <= 0 or branch_factor <= 0:
            raise ConfigurationError("beam_width and branch_factor must be positive")
        if objective_bonus < 0:
            raise ConfigurationError("objective_bonus must be non-negative")
        if max_length <= 0:
            raise ConfigurationError(f"max_length must be positive, got {max_length}")
        if step_cache_size < 1:
            raise ConfigurationError("step_cache_size must be at least 1")
        if candidate_generator is not None and not hasattr(
            candidate_generator, "candidates"
        ):
            raise ConfigurationError(
                "candidate_generator must expose candidates(history, objective, "
                "user_index) — see repro.retrieval.base.CandidateGenerator"
            )
        self.backbone = backbone
        self.beam_width = beam_width
        self.branch_factor = branch_factor
        self.objective_bonus = objective_bonus
        self.fit_backbone = fit_backbone
        self.max_length = max_length
        self.candidate_generator = candidate_generator
        self.use_decoding_sessions = use_decoding_sessions
        self._executor = ShardedExecutor(num_workers, shard_backend)
        self.num_workers = self._executor.num_workers
        self.shard_backend = self._executor.backend
        self.vocab_shards = resolve_vocab_shards(vocab_shards)
        self.plan_cache = make_plan_cache(plan_cache_size, self.num_workers)
        # The serving cache's serial contract is "at least one slot" (the
        # generalised replan slot); under sharding every shard keeps that
        # floor so no slice of the context space degrades to replanning
        # every next_step call.
        self._step_cache = make_plan_cache(
            step_cache_size, self.num_workers, min_shard_capacity=1
        )
        # Serving-cache outcome counters: registry-backed, so a serving hit
        # and its sibling replan can never be observed torn, and the counts
        # surface in ``repro-irs metrics`` next to the plan-cache counters.
        registry = get_registry()
        self._serving_metrics = MetricGroup(
            registry, registry.scope("core.serving"), counters=("hits", "replans")
        )
        # Retrieval counters (requests / full-vocab fallbacks / total
        # candidate items) surface in ``repro-irs metrics`` and the bench.
        self._retrieval_metrics = (
            MetricGroup(
                registry,
                registry.scope("core.retrieval"),
                counters=("requests", "fallbacks", "candidate_items"),
            )
            if candidate_generator is not None
            else None
        )
        self._backbone_generation = getattr(backbone, "fit_generation", None)
        # Replicated-serving state: a pinned planner must never observe its
        # backbone retrained in place (the refit protocol swaps whole
        # replicas), and serving_generation is the externally visible tag the
        # serving loop stamps on every answered micro-batch.
        self._pinned_generation: "int | None" = None
        self.serving_generation: "int | None" = None
        backbone_name = getattr(backbone, "name", type(backbone).__name__)
        self.name = f"{backbone_name}-beam"

    # ------------------------------------------------------------------ #
    def fit(self, split: DatasetSplit) -> "BeamSearchPlanner":
        self.corpus = split.corpus
        if self.fit_backbone:
            self.backbone.fit(split)  # type: ignore[attr-defined]
        backbone_corpus = getattr(self.backbone, "corpus", None)
        if backbone_corpus is None:
            raise ConfigurationError("the beam-search backbone must be fitted")
        generator = self.candidate_generator
        if generator is not None and not getattr(generator, "is_fitted", True):
            generator.fit(split.corpus)
        # (Re)fitting invalidates every memoised plan unconditionally.
        self.invalidate_caches()
        return self

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    def invalidate_caches(self) -> None:
        """Drop all memoised plans (called on fit and on backbone retrain)."""
        self.plan_cache.clear()
        self._step_cache.clear()
        self._backbone_generation = getattr(self.backbone, "fit_generation", None)

    def pin_generation(self, serving_generation: "int | None" = None) -> "int | None":
        """Freeze this planner to the backbone's current ``fit_generation``.

        The replicated-serving contract (:mod:`repro.replica`): a replica's
        backbone is immutable — a refit trains a *fresh* replica off-path and
        flips queues to it, it never retrains a serving backbone in place.
        After pinning, any observed ``fit_generation`` change raises
        :class:`~repro.utils.exceptions.StaleGenerationError` instead of
        silently invalidating caches, so a protocol violation surfaces at the
        first request rather than as mixed-generation answers.

        ``serving_generation`` is the externally visible generation tag
        (the replica set's monotonic generation — backbone ``fit_generation``
        counters restart at 1 for every freshly trained replica, so they
        cannot distinguish generations across replicas); it defaults to the
        pinned backbone generation.  Returns the pinned backbone generation
        (``None`` when the backbone exposes no ``fit_generation``, in which
        case only the tag is set and no enforcement happens).
        """
        generation = getattr(self.backbone, "fit_generation", None)
        self._pinned_generation = generation
        if serving_generation is None:
            self.serving_generation = generation
        else:
            self.serving_generation = int(serving_generation)
        return generation

    def _sync_backbone_generation(self) -> None:
        """Invalidate memoised plans if the backbone was retrained under us.

        A generation-pinned planner (see :meth:`pin_generation`) raises
        instead: its backbone must never change while the planner serves.
        """
        generation = getattr(self.backbone, "fit_generation", None)
        if self._pinned_generation is not None and generation != self._pinned_generation:
            logger.warning(
                "generation guard tripped: planner pinned to backbone "
                "fit_generation %s observed %s",
                self._pinned_generation,
                generation,
            )
            raise StaleGenerationError(
                f"planner is pinned to backbone fit_generation "
                f"{self._pinned_generation} but observed {generation}; replicated "
                f"serving swaps whole replicas on refit instead of retraining a "
                f"serving backbone in place"
            )
        if generation != self._backbone_generation:
            self.invalidate_caches()

    def _generation_guard(self) -> "int | None":
        """Executor guard: the backbone generation a fused dispatch must keep."""
        return getattr(self.backbone, "fit_generation", None)

    def cache_info(self) -> dict:
        """Hit/miss/eviction counters of both plan caches (for the bench).

        With ``num_workers > 1`` the two caches are hash-partitioned; their
        entries report merged totals (plus a per-shard breakdown), so the
        sharded planner's stats read exactly like the serial one's.
        """
        counts = self._serving_metrics.values()
        serving = {
            "served_from_plan": counts["hits"],
            "replans": counts["replans"],
        }
        info = {
            "plan_cache": self.plan_cache.cache_info(),
            "step_cache": self._step_cache.cache_info(),
            "serving": serving,
            "sharding": {
                "num_workers": self.num_workers,
                "backend": self.shard_backend,
                "vocab_shards": self.vocab_shards,
            },
        }
        if self._retrieval_metrics is not None:
            retrieval = self._retrieval_metrics.values()
            info["retrieval"] = {
                "generator": getattr(
                    self.candidate_generator, "name", type(self.candidate_generator).__name__
                ),
                "requests": retrieval["requests"],
                "fallbacks": retrieval["fallbacks"],
                "candidate_items": retrieval["candidate_items"],
            }
        return info

    def _retrieval_key(self) -> "tuple | None":
        """Cache-key component isolating pruned plans from exact ones.

        ``None`` for exact planning; otherwise the generator's config +
        fit-generation tuple, so plans pruned under a refitted (or
        differently configured) generator never alias either.
        """
        generator = self.candidate_generator
        if generator is None:
            return None
        key = getattr(generator, "retrieval_key", None)
        if key is not None:
            return key()
        return (type(generator).__name__,)

    # ------------------------------------------------------------------ #
    def _log_softmax_rows(self, scores: np.ndarray) -> np.ndarray:
        """Row-wise log-softmax over ``(batch, vocab)`` with ``-inf`` masking.

        Rows without a single finite entry (every candidate masked out) yield
        an all ``-inf`` row instead of crashing on an empty ``np.max``.
        """
        finite = np.isfinite(scores)
        any_finite = finite.any(axis=1)
        row_max = np.max(np.where(finite, scores, -np.inf), axis=1, initial=-np.inf)
        with np.errstate(divide="ignore", invalid="ignore"):
            shifted = scores - np.where(any_finite, row_max, 0.0)[:, None]
            exp = np.where(finite, np.exp(shifted), 0.0)
            log_norm = np.log(exp.sum(axis=1))
            return np.where(finite, shifted - log_norm[:, None], -np.inf)

    def _log_softmax(self, scores: np.ndarray) -> np.ndarray:
        return self._log_softmax_rows(np.asarray(scores, dtype=np.float64)[None, :])[0]

    def _batched_scores(
        self,
        sequences: list[list[int]],
        objectives: list[int],
        user_indices: "list[int | None]",
        candidate_items: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Score every sequence against its objective, fused when possible.

        ``candidate_items`` restricts scoring to a shortlist: backbones
        advertising ``supports_candidate_scoring`` gather only those output
        rows (the two-stage-retrieval fast path); any other backbone is
        scored in full and masked to ``-inf`` outside the shortlist, which
        is exact but gains no speed.
        """
        scorer = getattr(self.backbone, "score_with_objective_batch", None)
        if scorer is not None:
            if candidate_items is not None and getattr(
                self.backbone, "supports_candidate_scoring", False
            ):
                return np.asarray(
                    scorer(
                        sequences,
                        objectives,
                        user_indices,
                        candidate_items=candidate_items,
                    ),
                    dtype=np.float64,
                ).copy()
            scores = np.asarray(
                scorer(sequences, objectives, user_indices), dtype=np.float64
            ).copy()
        else:
            scores = np.stack(
                [
                    np.asarray(
                        self.backbone.score_with_objective(
                            sequence, objective, user_index=user
                        ),
                        dtype=np.float64,
                    )
                    for sequence, objective, user in zip(
                        sequences, objectives, user_indices
                    )
                ]
            )
        if candidate_items is not None:
            keep = np.zeros(scores.shape[1], dtype=bool)
            keep[candidate_items] = True
            scores[:, ~keep] = -np.inf
        return scores

    @staticmethod
    def _restrict_rows_to_candidates(
        scores: np.ndarray,
        row_candidates: "list[np.ndarray | None]",
        union: "np.ndarray | None",
    ) -> None:
        """Mask each row to its own instance's candidate set, in place.

        ``scores`` was computed over ``union`` (or the full vocabulary when
        ``union`` is ``None`` because some instance fell back); a row's
        mask-out set is therefore ``union - own`` — usually tiny — or the
        complement of its own set under a full-vocabulary fallback.  Rows
        whose instance fell back (``None`` candidates) keep every column.
        """
        groups: "dict[int, list[int]]" = {}
        arrays: "dict[int, np.ndarray]" = {}
        for row, candidates in enumerate(row_candidates):
            if candidates is None:
                continue
            key = id(candidates)
            groups.setdefault(key, []).append(row)
            arrays[key] = candidates
        vocab = scores.shape[1]
        for key, rows in groups.items():
            candidates = arrays[key]
            if union is None:
                keep = np.zeros(vocab, dtype=bool)
                keep[candidates] = True
                masked_columns = np.flatnonzero(~keep)
            else:
                masked_columns = np.setdiff1d(union, candidates, assume_unique=True)
            if masked_columns.size:
                scores[np.ix_(rows, masked_columns)] = -np.inf

    def _expand_all(
        self,
        parents: list[_Hypothesis],
        sequences: list[list[int]],
        objectives: list[int],
        user_indices: "list[int | None]",
        scores: np.ndarray | None = None,
        row_candidates: "list[np.ndarray | None] | None" = None,
        union_candidates: "np.ndarray | None" = None,
    ) -> list[list[_Hypothesis]]:
        """Expand many hypotheses with ONE batched scoring call.

        Returns the children of each parent in the same order the scalar
        implementation produced them: descending log-probability with ties
        broken by item index (the stable-``argsort`` order), non-finite
        candidates dropped.  ``scores`` may carry pre-computed backbone
        scores for the rows (the decoding-session path); otherwise one
        batched scoring call is issued here.  Under candidate pruning,
        ``union_candidates`` is the fused scoring shortlist and
        ``row_candidates`` restricts each row to its own instance's set
        before the log-softmax (probabilities renormalise over the
        shortlist — the documented approximation).
        """
        if scores is None:
            scores = self._batched_scores(
                sequences, objectives, user_indices, candidate_items=union_candidates
            )
        if row_candidates is not None:
            self._restrict_rows_to_candidates(scores, row_candidates, union_candidates)
        mask_session_items(scores, sequences, objectives)
        log_probs = self._log_softmax_rows(scores)
        _, vocab = log_probs.shape
        k = min(self.branch_factor, vocab)
        # Per-hypothesis top-k in stable-argsort order (value desc, index
        # asc), optionally computed over column shards of the item axis —
        # the merge is exact, so any vocab_shards yields the same winners.
        top, top_values = sharded_topk(log_probs, k, min(self.vocab_shards, vocab))
        expansions: list[list[_Hypothesis]] = []
        for row, parent in enumerate(parents):
            objective = objectives[row]
            children = [
                _Hypothesis(
                    items=parent.items + (int(item),),
                    log_probability=parent.log_probability + float(value),
                    reached=int(item) == objective,
                    parent_row=row,
                )
                for item, value in zip(top[row], top_values[row])
                if np.isfinite(value)
            ]
            expansions.append(children)
        return expansions

    def plan_paths_batch(
        self,
        histories: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        max_length: int | None = None,
    ) -> list[list[int]]:
        """Plan influence paths for many instances with lockstep beam search.

        Each instance runs the exact same beam algorithm as before, but every
        depth issues a single fused scoring call covering all live hypotheses
        of ALL still-running instances, so one transformer forward replaces
        up to ``beam_width * num_instances`` scalar forwards.

        Instances whose ``(tuple(history), objective, user_index,
        max_length)`` key is memoised in :attr:`plan_cache` are served
        without any planning; the rest partition across the executor's
        worker shards by the stable hash of that same key (worker and
        plan-cache shard always coincide) and are planned concurrently,
        each shard running its own lockstep beam with its own decoding
        sessions.  Plans are bit-identical for any worker count and any
        backend.  ``max_length`` defaults to the constructor-level
        :attr:`max_length`.
        """
        max_length = self.max_length if max_length is None else max_length
        if max_length <= 0:
            raise ConfigurationError(f"max_length must be positive, got {max_length}")
        self._require_fitted()
        self._sync_backbone_generation()
        count = len(histories)
        histories = [list(history) for history in histories]
        objectives = [int(objective) for objective in objectives]
        check_batch_lengths(count, objectives=objectives)
        users = broadcast_user_indices(count, user_indices)

        paths: list[list[int] | None] = [None] * count
        pending: list[int] = []
        retrieval = self._retrieval_key()
        keys = [
            (tuple(histories[i]), objectives[i], users[i], max_length, retrieval)
            for i in range(count)
        ]
        for i in range(count):
            cached = self.plan_cache.get(keys[i])
            if cached is not None:
                paths[i] = list(cached)
            else:
                pending.append(i)
        if pending:
            # Every pending path goes through the executor — with one worker
            # (or one instance) that is a direct in-thread _plan_beam call,
            # but uniformly under the generation guard, so a mid-plan
            # backbone retrain raises StaleGenerationError instead of
            # producing answers computed under mixed weights in ANY
            # configuration (the torn-batch check is not a sharding-only
            # property).
            # Capture the dispatching thread's batch sink and re-install it
            # inside the shard workers: the thread backend runs plan_shard on
            # pool threads whose thread-local sink is unset, and per-depth
            # beam spans must still reach the batch's traces.
            sink = current_sink()

            def plan_shard(_shard: int, subset) -> "list[list[int]]":
                with use_sink(sink):
                    return self._plan_beam(
                        histories, objectives, users, list(subset), max_length
                    )

            planned = self._executor.map_partitioned(
                pending,
                [keys[i] for i in pending],
                plan_shard,
                generation_guard=self._generation_guard,
            )
            for i, path in zip(pending, planned):
                self.plan_cache.put(keys[i], tuple(path))
                paths[i] = path
        return paths  # type: ignore[return-value]

    def _plan_beam(
        self,
        histories: list[list[int]],
        objectives: list[int],
        users: "list[int | None]",
        pending: list[int],
        max_length: int,
    ) -> list[list[int]]:
        """Run the lockstep beam search for the ``pending`` instance subset."""
        beams: dict[int, list[_Hypothesis]] = {
            i: [_Hypothesis(items=(), log_probability=0.0, reached=False)] for i in pending
        }
        completes: dict[int, list[_Hypothesis]] = {i: [] for i in pending}
        running = list(pending)
        session = None
        # Decoding sessions project the FULL vocabulary per advanced token —
        # exactly the cost candidate pruning removes — so pruning wins by
        # re-encoding right-aligned windows against the shortlist instead.
        use_sessions = (
            self.use_decoding_sessions
            and hasattr(self.backbone, "begin_decoding_session")
            and self.candidate_generator is None
        )
        # One candidate set per instance, computed once per plan from the
        # initial context (the set is a property of the *planning context*,
        # not of the partial path — keys must match the plan cache's).
        candidate_sets: "dict[int, np.ndarray | None]" = {}
        union: "np.ndarray | None" = None
        if self.candidate_generator is not None:
            fallbacks = 0
            candidate_total = 0
            for i in pending:
                candidates = self.candidate_generator.candidates(
                    histories[i], objectives[i], users[i]
                )
                candidate_sets[i] = candidates
                if candidates is None:
                    fallbacks += 1
                else:
                    candidate_total += int(candidates.size)
            if self._retrieval_metrics is not None:
                self._retrieval_metrics.record(
                    add={
                        "requests": len(pending),
                        "fallbacks": fallbacks,
                        "candidate_items": candidate_total,
                    }
                )
            if fallbacks == 0:
                union = np.unique(np.concatenate([candidate_sets[i] for i in pending]))
        # Per-depth expansion spans broadcast to every trace of the drained
        # micro-batch (depth work is fused across the whole shard subset, so
        # batch-level attribution is the honest granularity); None when the
        # batch is untraced.
        sink = current_sink()

        for depth in range(max_length):
            if not running:
                break
            depth_started = time.perf_counter() if sink is not None else 0.0
            # Collect the live hypotheses of every running instance (beam
            # order preserved); reached hypotheses retire to the complete set.
            parents: list[_Hypothesis] = []
            owners: list[int] = []
            sequences: list[list[int]] = []
            for i in running:
                for hypothesis in beams[i]:
                    if hypothesis.reached:
                        completes[i].append(hypothesis)
                        continue
                    parents.append(hypothesis)
                    owners.append(i)
                    sequences.append(histories[i] + list(hypothesis.items))
            if not parents:
                running = []
                break
            row_objectives = [objectives[i] for i in owners]
            row_users = [users[i] for i in owners]
            scores: np.ndarray | None = None
            if use_sessions:
                if session is None:
                    # Depth 0: parents are the empty roots, one per instance.
                    scores, session = self.backbone.begin_decoding_session(
                        sequences, row_objectives, row_users
                    )
                else:
                    # Later depths: gather each survivor's cache row and
                    # encode only its newly appended token.
                    scores = self.backbone.advance_decoding_session(
                        session,
                        [hypothesis.items[-1] for hypothesis in parents],
                        [hypothesis.parent_row for hypothesis in parents],
                    )
                scores = np.asarray(scores, dtype=np.float64).copy()
            row_candidates = (
                [candidate_sets[i] for i in owners]
                if self.candidate_generator is not None
                else None
            )
            expansions = self._expand_all(
                parents,
                sequences,
                row_objectives,
                row_users,
                scores=scores,
                row_candidates=row_candidates,
                union_candidates=union,
            )
            candidates: dict[int, list[_Hypothesis]] = {i: [] for i in running}
            for owner, children in zip(owners, expansions):
                candidates[owner].extend(children)
            still_running: list[int] = []
            for i in running:
                if not candidates[i]:
                    continue  # this instance's beam is frozen (scalar `break`)
                candidates[i].sort(key=lambda h: h.score(self.objective_bonus), reverse=True)
                beams[i] = candidates[i][: self.beam_width]
                still_running.append(i)
            if sink is not None:
                sink.batch_span(
                    "beam.depth",
                    depth_started,
                    time.perf_counter(),
                    depth=depth,
                    rows=len(parents),
                    instances=len(still_running),
                )
            running = still_running

        paths: list[list[int]] = []
        for i in pending:
            completes[i].extend(h for h in beams[i] if h.reached)
            pool = completes[i] if completes[i] else beams[i]
            if not pool:
                paths.append([])
                continue
            best = max(pool, key=lambda h: h.score(self.objective_bonus))
            paths.append(list(best.items))
        return paths

    def plan_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int | None = None,
    ) -> list[int]:
        """Plan a full influence path with beam search (batch-of-one)."""
        return self.plan_for_requests(
            [("plan_paths", history, objective, (), user_index, max_length)]
        )[0]

    # ------------------------------------------------------------------ #
    # Serving micro-batches
    # ------------------------------------------------------------------ #
    def plan_for_requests(self, requests: Sequence[tuple]) -> list:
        """Answer a heterogeneous micro-batch of serving requests.

        ``requests`` holds ``(kind, history, objective, path_so_far,
        user_index)`` tuples (an optional sixth element overrides the
        planning horizon), where ``kind`` is ``"next_step"`` — answered with
        the next planned item or ``None``, exactly like :meth:`next_step` —
        or ``"plan_paths"`` — answered with a full planned path, exactly
        like :meth:`plan_path`.  This is the entry point the serving loop
        (:mod:`repro.serve`) drains each shard queue through, and the
        routing layer under the old serving surface: :meth:`next_step` and
        :meth:`plan_path` are batch-of-one calls into it.

        All replanning work in the batch is *fused*: every ``plan_paths``
        request and every ``next_step`` serving-cache miss that shares a
        horizon joins one :meth:`plan_paths_batch` call, so the lockstep
        beam's one-forward-per-depth token-work win applies to
        asynchronously arriving traffic, not just pre-assembled batches.

        Results are identical to issuing the requests sequentially in the
        given order.  Requests that share a serving context within one batch
        are processed in arrival-ordered waves (a later duplicate sees the
        cache effects of the earlier request, never a half-applied state).
        The method is re-entrant: concurrent drain threads may call it for
        disjoint shard queues — the caches are lock-guarded, and hash
        routing guarantees two queues never carry the same serving context.
        """
        if not requests:
            return []
        self._require_fitted()
        self._sync_backbone_generation()
        # The drain thread's batch sink (None unless this micro-batch is
        # traced): indices into `requests` and into the sink's trace list
        # coincide, so per-request cache decisions attach to the right trace.
        sink = current_sink()
        # Step-cache keys carry the retrieval identity so pruned plans never
        # alias exact ones (or plans from a differently-configured/refit
        # generator); constant per call, computed once.
        retrieval = self._retrieval_key()
        normalized: list[tuple] = []
        for request in requests:
            kind, history, objective, path_so_far, user = request[:5]
            if kind not in ("next_step", "plan_paths"):
                raise ConfigurationError(
                    f"request kind must be 'next_step' or 'plan_paths', got {kind!r}"
                )
            horizon = request[5] if len(request) > 5 else None
            if kind == "next_step" and horizon is not None:
                # next_step serves from the per-context plan keyed by the
                # constructor horizon; a per-request override would silently
                # key and truncate against the wrong plan, so it is an error
                # (validated again at the ServingLoop submit boundary).
                raise ConfigurationError(
                    "next_step requests cannot override max_length; the serving "
                    f"horizon is the constructor-level max_length ({self.max_length})"
                )
            normalized.append(
                (
                    kind,
                    [int(item) for item in history],
                    int(objective),
                    [int(item) for item in (path_so_far or ())],
                    user,
                    self.max_length if horizon is None else horizon,
                )
            )
        results: list = [None] * len(normalized)
        remaining = list(range(len(normalized)))
        while remaining:
            # Arrival-ordered wave: at most one request per serving context.
            # A duplicate context defers to the next wave so it observes the
            # serving-cache entry its predecessor wrote — the sequential
            # semantics, batched.
            wave: list[int] = []
            deferred: list[int] = []
            seen_keys: set = set()
            for index in remaining:
                kind, history, objective, path_so_far, user, _ = normalized[index]
                if kind == "next_step":
                    key = (tuple(history), objective, user, self.max_length)
                    if key in seen_keys:
                        deferred.append(index)
                        continue
                    seen_keys.add(key)
                wave.append(index)
            # Pass 1: consult the serving cache in request order; collect
            # the requests that need planning work.  With a traced drain
            # above (sink installed), each consult records a per-request
            # cache.decision span with its hit/replan outcome.
            misses: list[int] = []
            for index in wave:
                kind, history, objective, path_so_far, user, _ = normalized[index]
                if kind == "plan_paths":
                    misses.append(index)
                    continue
                key = (tuple(history), objective, user, self.max_length, retrieval)
                consult_start = time.perf_counter() if sink is not None else 0.0
                plan = self._step_cache.get(key)
                if plan is not None and list(plan[: len(path_so_far)]) == path_so_far:
                    self._serving_metrics.record(add={"hits": 1})
                    if sink is not None:
                        sink.request_span(
                            index,
                            "cache.decision",
                            consult_start,
                            time.perf_counter(),
                            outcome="hit",
                        )
                    results[index] = (
                        int(plan[len(path_so_far)]) if len(plan) > len(path_so_far) else None
                    )
                else:
                    self._serving_metrics.record(add={"replans": 1})
                    if sink is not None:
                        sink.request_span(
                            index,
                            "cache.decision",
                            consult_start,
                            time.perf_counter(),
                            outcome="replan",
                        )
                    misses.append(index)
            # Pass 2: one fused plan_paths_batch per distinct effective
            # horizon (lockstep traffic shares one, so typically one call).
            groups: dict[int, list[int]] = {}
            for index in misses:
                kind, _, _, path_so_far, _, horizon = normalized[index]
                effective = (
                    horizon
                    if kind == "plan_paths"
                    else max(self.max_length - len(path_so_far), 1)
                )
                groups.setdefault(effective, []).append(index)
            for effective, indices in groups.items():
                planned = self.plan_paths_batch(
                    [normalized[i][1] + normalized[i][3] for i in indices],
                    [normalized[i][2] for i in indices],
                    [normalized[i][4] for i in indices],
                    max_length=effective,
                )
                for index, path in zip(indices, planned):
                    kind, history, objective, path_so_far, user, _ = normalized[index]
                    if kind == "plan_paths":
                        results[index] = list(path)
                        continue
                    key = (tuple(history), objective, user, self.max_length, retrieval)
                    plan = tuple(path_so_far + list(path))
                    self._step_cache.put(key, plan)
                    results[index] = (
                        int(plan[len(path_so_far)]) if len(plan) > len(path_so_far) else None
                    )
            remaining = deferred
        return results

    # ------------------------------------------------------------------ #
    # InfluentialRecommender interface
    # ------------------------------------------------------------------ #
    def generate_path(
        self,
        history: Sequence[int],
        objective: int,
        user_index: int | None = None,
        max_length: int | None = None,
    ) -> list[int]:
        return self.plan_path(history, objective, user_index=user_index, max_length=max_length)

    def generate_paths_batch(
        self,
        histories: Sequence[Sequence[int]],
        objectives: Sequence[int],
        user_indices: "Sequence[int | None] | None" = None,
        max_length: int | None = None,
    ) -> list[list[int]]:
        return self.plan_paths_batch(
            histories, objectives, user_indices=user_indices, max_length=max_length
        )

    def next_step(
        self,
        history: Sequence[int],
        objective: int,
        path_so_far: Sequence[int],
        user_index: int | None = None,
    ) -> int | None:
        """Serve the next item of the current plan, replanning on divergence.

        The per-context serving plans live in a bounded LRU keyed by
        ``(tuple(history), objective, user_index, max_length)``, so many
        interleaved serving contexts (lockstep stepwise evaluation, multiple
        concurrent users) each keep their own evolving plan instead of
        thrashing a single replan slot.  A replan from a diverged context
        goes through :meth:`plan_paths_batch` and therefore also consults
        the finished-plan cache.  The replanning horizon is the
        constructor-level :attr:`max_length` (previously a hardcoded 20).
        Implemented as a batch-of-one :meth:`plan_for_requests` call — the
        serving loop's micro-batched drains answer many of these with one
        fused planning pass, identically.
        """
        return self.plan_for_requests(
            [("next_step", history, objective, path_so_far, user_index)]
        )[0]
